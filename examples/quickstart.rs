//! Quickstart: compile a PlugC plugin to WebAssembly, sandbox it, and use
//! it to schedule a slice on a simulated 5G gNB — the whole WA-RAN
//! pipeline in one file.
//!
//! Run with: `cargo run --release --example quickstart`

use wa_ran::core::{ScenarioBuilder, SchedKind, SliceSpec};
use wa_ran::host::plugin::{Plugin, SandboxPolicy};
use wa_ran::wasm::instance::Linker;

fn main() {
    // ------------------------------------------------------------------
    // 1. Author a plugin in PlugC and compile it to a real .wasm module.
    // ------------------------------------------------------------------
    let source = r#"
        // An "every other UE" toy scheduler: serves UEs with even index.
        export fn schedule(req: i32, len: i32) -> i64 {
            var n: i32 = load_u8(req + 4) | (load_u8(req + 5) << 8);
            var prbs: i32 = load_i32(req + 16);
            var out: i32 = wrn_alloc(8 + n * 8);
            store_u8(out, 0x52); store_u8(out + 1, 0x57);
            store_u8(out + 2, 1); store_u8(out + 3, 0);
            var written: i32 = 0;
            var i: i32 = 0;
            var share: i32 = prbs;
            if (n > 1) { share = prbs / ((n + 1) / 2); }
            while (i < n) {
                if (i % 2 == 0) {
                    var rec: i32 = req + 24 + i * 32;
                    var slot: i32 = out + 8 + written * 8;
                    store_i32(slot, load_i32(rec));
                    store_u8(slot + 4, share & 255);
                    store_u8(slot + 5, (share >> 8) & 255);
                    store_u8(slot + 6, written & 255);
                    store_u8(slot + 7, 0);
                    written = written + 1;
                }
                i = i + 1;
            }
            store_u8(out + 4, written & 255); store_u8(out + 5, (written >> 8) & 255);
            store_u8(out + 6, 0); store_u8(out + 7, 0);
            return pack(out, 8 + written * 8);
        }
    "#;
    let wasm = wa_ran::plugc::compile(source).expect("PlugC compiles");
    println!("compiled PlugC → {} bytes of WebAssembly", wasm.len());

    // It is a genuine Wasm binary: decode + validate it like any runtime.
    let module = wa_ran::wasm::load_module(&wasm).expect("valid .wasm");
    println!(
        "module exports: {:?}",
        module
            .exports
            .iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // 2. Sandbox it and call it directly through the byte ABI.
    // ------------------------------------------------------------------
    let mut plugin = Plugin::new(
        &wasm,
        &Linker::<()>::new(),
        (),
        SandboxPolicy::slot_budget(),
    )
    .expect("instantiates");
    let req = wa_ran::abi::sched::SchedRequest {
        slot: 0,
        prbs_granted: 52,
        slice_id: 0,
        ues: (0..4)
            .map(|i| wa_ran::abi::sched::UeInfo {
                ue_id: 70 + i,
                cqi: 12,
                mcs: 22,
                flags: 0,
                buffer_bytes: 100_000,
                avg_tput_bps: 1e6,
                prb_capacity_bits: 500.0,
            })
            .collect(),
    };
    let resp = plugin.call_sched(&req).expect("schedules");
    println!(
        "direct call: plugin allocated PRBs to UEs {:?} in {:?}",
        resp.allocs.iter().map(|a| a.ue_id).collect::<Vec<_>>(),
        plugin.last_call_duration().expect("measured"),
    );

    // ------------------------------------------------------------------
    // 3. Run a full gNB scenario with a standard plugin from the library.
    // ------------------------------------------------------------------
    let mut scenario = ScenarioBuilder::new()
        .slice(
            SliceSpec::new("mvno-1", SchedKind::ProportionalFair)
                .target_mbps(12.0)
                .ues(3),
        )
        .seconds(2.0)
        .build()
        .expect("scenario builds");
    let report = scenario.run().expect("runs");
    let slice = report.slice("mvno-1").expect("slice exists");
    println!(
        "scenario: slice `{}` achieved {:.2} Mb/s against a 12 Mb/s target \
         ({} slots, {} faults)",
        slice.name,
        slice.mean_rate_mbps(),
        report.slots,
        slice.scheduler_faults,
    );
    let stats = scenario.plugin_stats("mvno-1").expect("stats");
    println!(
        "plugin exec time: p50 {:.1} µs, p99 {:.1} µs over {} calls (slot budget: 1000 µs)",
        stats.p50_us(),
        stats.p99_us(),
        stats.count(),
    );
}
