//! MVNO slicing: the paper's §4.A use case end to end.
//!
//! Three MVNOs share one gNB. Each brings its own scheduling policy as a
//! Wasm plugin (eMBB wants PF, IoT is happy with RR, a budget carrier
//! squeezes throughput with MT), each with its own target rate and its own
//! traffic mix. A fourth best-effort slice soaks up leftover capacity.
//!
//! Run with: `cargo run --release --example mvno_slicing`

use wa_ran::core::{ChannelSpec, ScenarioBuilder, SchedKind, SliceSpec, TrafficSpec};

fn main() {
    let mut scenario = ScenarioBuilder::new()
        // An eMBB MVNO: mixed channels, saturating traffic, PF for balance.
        .slice(
            SliceSpec::new("embb-carrier", SchedKind::ProportionalFair)
                .target_mbps(15.0)
                .ue(ChannelSpec::FadingGood, TrafficSpec::FullBuffer)
                .ue(ChannelSpec::Distance(120.0), TrafficSpec::FullBuffer)
                .ue(ChannelSpec::Distance(250.0), TrafficSpec::FullBuffer),
        )
        // An IoT MVNO: many small bursty devices, round robin.
        .slice(
            SliceSpec::new("iot-carrier", SchedKind::RoundRobin)
                .target_mbps(3.0)
                .ue(
                    ChannelSpec::Static(8),
                    TrafficSpec::Poisson {
                        pps: 200.0,
                        bytes: 600,
                    },
                )
                .ue(
                    ChannelSpec::Static(6),
                    TrafficSpec::Poisson {
                        pps: 150.0,
                        bytes: 600,
                    },
                )
                .ue(
                    ChannelSpec::Static(10),
                    TrafficSpec::Poisson {
                        pps: 250.0,
                        bytes: 600,
                    },
                ),
        )
        // A budget MVNO chasing peak rates with MT.
        .slice(
            SliceSpec::new("budget-carrier", SchedKind::MaxThroughput)
                .target_mbps(8.0)
                .ue(ChannelSpec::FadingGood, TrafficSpec::FullBuffer)
                .ue(ChannelSpec::Distance(200.0), TrafficSpec::FullBuffer),
        )
        // Best effort mops up whatever is left.
        .slice(
            SliceSpec::new("best-effort", SchedKind::RoundRobin)
                .ue(ChannelSpec::Static(12), TrafficSpec::FullBuffer),
        )
        .seconds(10.0)
        .seed(11)
        .build()
        .expect("scenario builds");

    println!("simulating 10 s with four slices (all schedulers are Wasm plugins)…\n");
    let report = scenario.run().expect("runs");

    println!(
        "{:<16} {:>9} {:>10} {:>7} {:>8}",
        "slice", "target", "achieved", "faults", "p99[µs]"
    );
    for slice in &report.slices {
        let target = match slice.name.as_str() {
            "embb-carrier" => "15.0",
            "iot-carrier" => "3.0",
            "budget-carrier" => "8.0",
            _ => "-",
        };
        let p99 = scenario
            .plugin_stats(&slice.name)
            .map(|s| format!("{:.1}", s.p99_us()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<16} {:>9} {:>10.2} {:>7} {:>8}",
            slice.name,
            target,
            slice.mean_rate_mbps(),
            slice.scheduler_faults,
            p99
        );
        for ue in &slice.ues {
            println!("    ue {:<4} {:>25.2} Mb/s", ue.ue_id, ue.mean_rate_mbps);
        }
    }

    let util: f64 = report.utilization.iter().sum::<f64>() / report.utilization.len().max(1) as f64;
    println!("\nmean PRB utilization: {:.0}%", util * 100.0);
    println!(
        "note: the IoT slice's achieved rate tracks its offered Poisson load, \
         not its 3 Mb/s cap — slicing guarantees capacity, it does not invent traffic."
    );
}
