//! The §3.B interface-mismatch demo: two vendors disagree on the bit width
//! of a power-control field (8 vs 12 bits); a sandboxed Wasm plugin at the
//! boundary re-packs records so they interoperate — no firmware changes on
//! either side.
//!
//! Run with: `cargo run --release --example interface_adapter`

use wa_ran::abi::bitpack::RecordSpec;
use wa_ran::ric::adapter::{build_widen_plugin, InterfaceAdapter};

fn main() {
    // Vendor A's radio emits 2-byte records: power in 8 bits, antenna in 4.
    let vendor_a = RecordSpec::new(&[("power", 8), ("antenna", 4)]);
    // Vendor B's controller expects power in 12 bits.
    let vendor_b = RecordSpec::new(&[("power", 12), ("antenna", 4)]);

    let commands: [(u64, u64); 4] = [(30, 0), (128, 3), (200, 7), (255, 15)];
    let mut wire_a = Vec::new();
    for (power, antenna) in commands {
        wire_a.extend_from_slice(&vendor_a.encode(&[power, antenna]).expect("fits"));
    }
    println!(
        "vendor A wire ({} records): {:02x?}",
        commands.len(),
        wire_a
    );

    // Without adaptation, vendor B misreads every field:
    let misread = vendor_b.decode(&wire_a[..2]).expect("decodes structurally");
    println!(
        "vendor B reading vendor A bytes directly: power={} antenna={}  ← wrong!",
        misread[0], misread[1]
    );

    // The SI deploys the adapter as a sandboxed Wasm plugin.
    let mut plugin = build_widen_plugin().expect("adapter plugin builds");
    let wire_b = plugin.call("adapt", &wire_a).expect("adapts");
    println!("adapter plugin output: {:02x?}", wire_b);

    println!("\nvendor B after adaptation:");
    let out_len = 2; // 16 bits per vendor-B record
    for (chunk, (power, antenna)) in wire_b.chunks_exact(out_len).zip(commands) {
        let decoded = vendor_b.decode(chunk).expect("decodes");
        let ok = decoded == vec![power, antenna];
        println!(
            "  power={:>3} antenna={:>2}  (expected {:>3}/{:>2})  {}",
            decoded[0],
            decoded[1],
            power,
            antenna,
            if ok { "✓" } else { "✗" }
        );
    }

    // The native adapter agrees bit-for-bit with the sandboxed one.
    let native = InterfaceAdapter::power_example();
    assert_eq!(native.adapt_stream(&wire_a).expect("adapts"), wire_b);
    println!("\nnative and sandboxed adapters agree bit-for-bit.");
    println!(
        "the plugin ran in {:?} for {} records — trivially inside any interface budget.",
        plugin.last_call_duration().expect("measured"),
        commands.len()
    );
}
