//! Live swap + fault containment: §5.C and §5.D in one run.
//!
//! An MVNO's scheduler is hot-swapped while the gNB runs: first between
//! healthy policies (MT → PF), then to a *buggy* plugin that dereferences
//! a null pointer every slot — the gNB keeps serving via its fallback and
//! the host quarantines the plugin — and finally back to a healthy one.
//!
//! Run with: `cargo run --release --example live_swap`

use wa_ran::core::plugins;
use wa_ran::core::{ChannelSpec, ScenarioBuilder, SchedKind, SliceSpec, TrafficSpec};

fn main() {
    let mut scenario = ScenarioBuilder::new()
        .slice(
            SliceSpec::new("mvno", SchedKind::MaxThroughput)
                .ue(ChannelSpec::FixedMcs(20), TrafficSpec::CbrMbps(20.0))
                .ue(ChannelSpec::FixedMcs(28), TrafficSpec::CbrMbps(20.0)),
        )
        .seconds(8.0)
        .build()
        .expect("scenario builds");
    let ues = scenario.slice_ues("mvno").to_vec();

    let phase = |scenario: &mut wa_ran::core::Scenario, label: &str| {
        scenario.run_seconds(2.0);
        let report = scenario.report();
        let slice = report.slice("mvno").expect("slice");
        let rates: Vec<String> = ues
            .iter()
            .map(|ue| {
                let series = &report.ue(*ue).expect("ue").series_mbps;
                let last = &series[series.len().saturating_sub(5)..];
                format!("{:.1}", last.iter().sum::<f64>() / last.len() as f64)
            })
            .collect();
        println!(
            "{label:<26} ue rates (recent) = {rates:?} Mb/s, lifetime faults = {}",
            slice.scheduler_faults
        );
    };

    println!("phase 1: MT plugin (weak UE starved)…");
    phase(&mut scenario, "after MT");

    scenario
        .swap_plugin("mvno", SchedKind::ProportionalFair)
        .expect("swap");
    println!("phase 2: hot-swapped to PF mid-run (no gNB restart, no UE detach)…");
    phase(&mut scenario, "after PF swap");

    let bad = plugins::compile_faulty(plugins::faulty::NULL_DEREF);
    scenario.swap_plugin_bytes("mvno", &bad).expect("swap");
    println!("phase 3: an MVNO pushed a buggy plugin (null deref each slot)…");
    phase(&mut scenario, "while plugin is faulty");
    let health = scenario.plugin_host().health("mvno").expect("health");
    println!(
        "    host fault accounting: {} total faults, quarantined = {}",
        health.total_faults,
        matches!(
            scenario.plugin_host().state("mvno"),
            Some(wa_ran::host::SlotState::Quarantined)
        ),
    );

    scenario
        .swap_plugin("mvno", SchedKind::RoundRobin)
        .expect("swap");
    println!("phase 4: operator pushed a fixed plugin (quarantine cleared by swap)…");
    phase(&mut scenario, "after RR fix");

    println!(
        "\ntakeaway: the gNB never stopped — scheduler faults were contained to \
         the sandbox, absorbed by the native fallback, and fixed by a live swap."
    );
}
