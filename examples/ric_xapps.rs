//! Near-RT RIC with xApps: the paper's §4.B use case end to end.
//!
//! A gNB and a near-RT RIC exchange KPI indications and control actions
//! over plugin-wrapped communication (TLV on both sides here). Two xApps
//! run in the RIC: traffic steering hands a cell-edge UE over to a better
//! cell, and slice SLA assurance raises a slice's enforced target when it
//! underdelivers.
//!
//! Run with: `cargo run --release --example ric_xapps`

use wa_ran::core::{
    ChannelSpec, HandoverModel, RicLoop, ScenarioBuilder, SchedKind, SliceSpec, TrafficSpec,
};
use wa_ran::ric::comm::TlvCodec;
use wa_ran::ric::ric::{NearRtRic, SliceSlaAssurance, TrafficSteering};

fn main() {
    let mut scenario = ScenarioBuilder::new()
        .slice(
            SliceSpec::new("gold", SchedKind::ProportionalFair)
                .target_mbps(10.0)
                .ue(ChannelSpec::FadingGood, TrafficSpec::FullBuffer)
                .ue(ChannelSpec::Distance(900.0), TrafficSpec::FullBuffer),
        )
        .slice(SliceSpec::new("bronze", SchedKind::RoundRobin).ues(2))
        .seconds(6.0)
        .build()
        .expect("scenario builds");

    let mut ric = NearRtRic::new();
    ric.add_xapp(Box::new(TrafficSteering::new(5, 3, 1)));
    ric.add_xapp(Box::new(SliceSlaAssurance::new(&[(0, 12e6)])));
    let mut ric_loop = RicLoop::new(Box::new(TlvCodec), Box::new(TlvCodec), ric, 100)
        .with_handover_model(HandoverModel::ToGoodCell);

    let edge_ue = scenario.slice_ues("gold")[1];
    println!("running 6 s with a 100-slot (100 ms) E2 reporting period…\n");
    ric_loop.run_slots(&mut scenario, 6000);

    let report = scenario.report();
    println!(
        "E2 agent: {} indications sent, {} actions received",
        ric_loop.agent().indications_sent,
        ric_loop.agent().actions_received
    );
    println!("RIC: xApps deployed = {:?}", ric_loop.ric().xapp_names());
    println!(
        "applied: {} handovers, {} slice-target updates\n",
        ric_loop.applied_handovers, ric_loop.applied_slice_targets
    );

    let series = &report.ue(edge_ue).expect("ue").series_mbps;
    let early = series[0];
    let late: f64 = series[series.len() - 5..].iter().sum::<f64>() / 5.0;
    println!(
        "traffic steering: cell-edge UE {} went from {:.2} Mb/s (first 100 ms) \
         to {:.2} Mb/s (last 500 ms) after its handover",
        edge_ue, early, late
    );

    let gold = report.slice("gold").expect("slice");
    println!(
        "SLA assurance: slice `gold` lifetime {:.2} Mb/s, recent {:.2} Mb/s \
         (SLA 12 Mb/s; initial enforced target was 10 Mb/s until the xApp raised it)",
        gold.mean_rate_mbps(),
        gold.recent_rate_mbps(10),
    );
}
