#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Multi-cell + RIC determinism: per-cell digests of the attached
# deployment must not depend on the worker count.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Static analysis: translation validation (register lowering proven
# equivalent to the flat IR) plus resource-bound reports over every
# builtin example/fig5 plugin. Nonzero exit = a lowering failed its proof.
cargo run -q --release -p waran-bench --bin analyze -- --builtin > "$tmpdir/analyze.txt"
echo "static analyzer validated every builtin plugin lowering"
cargo run -q --release -p waran-bench --bin bench_pr4 -- digests 2 > "$tmpdir/digests_2w.txt"
cargo run -q --release -p waran-bench --bin bench_pr4 -- digests 8 > "$tmpdir/digests_8w.txt"
diff "$tmpdir/digests_2w.txt" "$tmpdir/digests_8w.txt"
echo "RIC-attached digests identical across 2 and 8 workers"

# Mobility determinism: the lockstep exchange engine must keep per-cell
# digests worker-count independent while UEs migrate between cells.
cargo run -q --release -p waran-bench --bin bench_pr5 -- digests 2 > "$tmpdir/mobility_2w.txt"
cargo run -q --release -p waran-bench --bin bench_pr5 -- digests 8 > "$tmpdir/mobility_8w.txt"
diff "$tmpdir/mobility_2w.txt" "$tmpdir/mobility_8w.txt"
echo "Mobility-enabled digests identical across 2 and 8 workers"

# Register-tier determinism: the register-form executor must produce the
# same per-cell digests as the flat tier, at any worker count.
cargo run -q --release -p waran-bench --bin bench_pr6 -- digests 2 compiled > "$tmpdir/reg_flat_2w.txt"
cargo run -q --release -p waran-bench --bin bench_pr6 -- digests 2 reg > "$tmpdir/reg_2w.txt"
cargo run -q --release -p waran-bench --bin bench_pr6 -- digests 8 reg > "$tmpdir/reg_8w.txt"
diff "$tmpdir/reg_flat_2w.txt" "$tmpdir/reg_2w.txt"
diff "$tmpdir/reg_2w.txt" "$tmpdir/reg_8w.txt"
echo "Register-tier digests identical to the flat tier across 2 and 8 workers"

# Snapshot-instantiation determinism: stamping plugins out of cached
# templates must leave per-cell digests identical to cold segment init,
# at any worker count.
cargo run -q --release -p waran-bench --bin bench_pr7 -- digests 2 on > "$tmpdir/snap_2w_on.txt"
cargo run -q --release -p waran-bench --bin bench_pr7 -- digests 8 on > "$tmpdir/snap_8w_on.txt"
cargo run -q --release -p waran-bench --bin bench_pr7 -- digests 8 off > "$tmpdir/snap_8w_off.txt"
diff "$tmpdir/snap_2w_on.txt" "$tmpdir/snap_8w_on.txt"
diff "$tmpdir/snap_8w_on.txt" "$tmpdir/snap_8w_off.txt"
echo "Snapshot-instantiation digests identical across 2 and 8 workers and snapshot on/off"

# Governance determinism: with strike accounting and auto-rollback
# active, a hostile mid-run push must strike out and roll back to the
# retained last-good module identically on every cell — the per-cell
# digests (governance counters folded in) must not depend on the worker
# count. bench_pr9 also asserts the rollback invariants internally.
cargo run -q --release -p waran-bench --bin bench_pr9 -- digests 2 > "$tmpdir/gov_2w.txt"
cargo run -q --release -p waran-bench --bin bench_pr9 -- digests 8 > "$tmpdir/gov_8w.txt"
diff "$tmpdir/gov_2w.txt" "$tmpdir/gov_8w.txt"
echo "Governance-enabled digests identical across 2 and 8 workers"

# Massive-plane determinism: the million-UE two-tier deployment (500
# cells x 2000 background UEs, promotion/demotion churn) must keep
# per-cell digests — massive-plane counters folded in — independent of
# the worker count. bench_pr10 also asserts the population-ledger and
# byte-conservation invariants internally.
cargo run -q --release -p waran-bench --bin bench_pr10 -- digests 2 > "$tmpdir/massive_2w.txt"
cargo run -q --release -p waran-bench --bin bench_pr10 -- digests 8 > "$tmpdir/massive_8w.txt"
diff "$tmpdir/massive_2w.txt" "$tmpdir/massive_8w.txt"
echo "Massive-plane digests identical across 2 and 8 workers"

# Perf regression gate: compare the live register-tier deployment
# throughput — and, when the baseline records it, snapshot instantiation
# latency — against the newest committed benchmark snapshot.
newest="$(ls -t BENCH_*.json 2>/dev/null | head -1 || true)"
if [ -n "$newest" ]; then
    cargo run -q --release -p waran-bench --bin bench_pr6 -- gate "$newest"
    cargo run -q --release -p waran-bench --bin bench_pr7 -- gate "$newest"
    cargo run -q --release -p waran-bench --bin bench_pr9 -- gate "$newest"
    cargo run -q --release -p waran-bench --bin bench_pr10 -- gate "$newest"
else
    echo "no BENCH_*.json baseline found — skipping the perf regression gate"
fi
