#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Multi-cell + RIC determinism: per-cell digests of the attached
# deployment must not depend on the worker count.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q --release -p waran-bench --bin bench_pr4 -- digests 2 > "$tmpdir/digests_2w.txt"
cargo run -q --release -p waran-bench --bin bench_pr4 -- digests 8 > "$tmpdir/digests_8w.txt"
diff "$tmpdir/digests_2w.txt" "$tmpdir/digests_8w.txt"
echo "RIC-attached digests identical across 2 and 8 workers"

# Mobility determinism: the lockstep exchange engine must keep per-cell
# digests worker-count independent while UEs migrate between cells.
cargo run -q --release -p waran-bench --bin bench_pr5 -- digests 2 > "$tmpdir/mobility_2w.txt"
cargo run -q --release -p waran-bench --bin bench_pr5 -- digests 8 > "$tmpdir/mobility_8w.txt"
diff "$tmpdir/mobility_2w.txt" "$tmpdir/mobility_8w.txt"
echo "Mobility-enabled digests identical across 2 and 8 workers"
