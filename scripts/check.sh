#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
