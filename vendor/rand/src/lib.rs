//! Minimal offline shim for the `rand` 0.8 API surface this workspace
//! uses: `RngCore` (object-safe, used as `&mut dyn RngCore`), the
//! `Rng::gen_range` blanket extension, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`. The stream is SplitMix64 — deterministic per seed,
//! which is the only property the simulator relies on (digest checks are
//! worker-count-relative within a single run, never pinned to a stream).

use std::ops::{Range, RangeInclusive};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Core randomness source; object safe.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seeding entry point; only `seed_from_u64` is exposed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 sample range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty sample range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension; blanket-implemented so it works through
/// `&mut dyn RngCore` exactly like rand 0.8.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic stand-in for rand's `StdRng` (stream differs from the
    /// upstream ChaCha12 stream; nothing in this workspace pins it).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut s = state ^ 0x5851_f42d_4c95_7f2d;
            let _ = splitmix64(&mut s);
            Self { state: s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let dynrng: &mut dyn RngCore = &mut rng;
        for _ in 0..1000 {
            let x = dynrng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let n = dynrng.gen_range(3u32..=9);
            assert!((3..=9).contains(&n));
        }
        // Full-width inclusive range must not overflow.
        let _ = dynrng.gen_range(0u64..=u64::MAX);
    }
}
