//! Minimal offline shim for the `criterion` 0.5 API surface this
//! workspace uses: `Criterion::benchmark_group`, `BenchmarkGroup`
//! (`bench_function` / `bench_with_input` / `sample_size` / `finish`),
//! `Bencher::iter`, `BenchmarkId::new`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark is timed with a
//! calibrated batch loop and the per-iteration median of a handful of
//! samples is printed. Good enough to eyeball relative numbers; the
//! repo's recorded figures come from the `bench_pr*` binaries, which do
//! their own timing.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(&format!("{id}"), self.sample_size, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: format!("{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Calibrate the batch size so one sample takes roughly 5 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("bench: {label:<56} {:>12.3} ns/iter", median * 1e9);
}

/// Mirrors criterion's flat `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
