//! Minimal offline shim for the `proptest` 1.x API surface this
//! workspace uses.
//!
//! It keeps the property-based *interface* — `proptest!` test functions
//! with `arg in strategy` bindings, `Strategy`/`BoxedStrategy`,
//! `any::<T>()`, range and tuple strategies, `Just`, `prop_oneof!`,
//! `prop_map`, `prop_recursive`, `collection::vec`, `option::of`,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig::with_cases` — but
//! swaps the engine for plain deterministic random sampling (SplitMix64
//! seeded from the test's module path and name). No shrinking, no
//! persisted regressions; a failing case panics with the rendered
//! assertion message. Case counts match upstream defaults (256, or the
//! `proptest_config` override).

pub mod test_runner {
    /// Run-time configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test's fully qualified name (FNV-1a), so every
        /// property gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform index in `0..bound` (`bound` must be non-zero).
        pub fn index(&mut self, bound: usize) -> usize {
            debug_assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform float in `[0, 1)` with 53 random mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`. Object safe so it can
    /// live behind [`BoxedStrategy`].
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build a recursive strategy by applying `recurse` `depth`
        /// times, bottoming out at `self`. The `_desired_size` and
        /// `_expected_branch_size` hints are accepted for signature
        /// compatibility but unused; termination comes from the finite
        /// composition depth.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat).boxed();
            }
            strat
        }
    }

    /// Reference-counted type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    /// String-pattern strategy: upstream proptest treats a `&str` as a
    /// full regex; this shim honours the one shape the workspace uses —
    /// `\PC{lo,hi}` (printable chars, bounded repetition) — and treats
    /// any other pattern as a literal. Generated text mixes ASCII with
    /// occasional multi-byte scalars so UTF-8 handling gets exercised.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            const WIDE: [char; 8] = ['é', 'Δ', '中', '¬', '٭', 'ß', '→', '🦀'];
            fn split_repetition(pat: &str) -> Option<(&str, usize, usize)> {
                let (body, rep) = pat.strip_suffix('}')?.split_at(pat.rfind('{')?);
                let (lo, hi) = rep[1..].split_once(',')?;
                Some((body, lo.parse().ok()?, hi.parse().ok()?))
            }
            let (body, lo, hi) = split_repetition(self).unwrap_or((self, 1, 1));
            if body != "\\PC" {
                return body.repeat(lo + rng.index(hi - lo + 1));
            }
            let len = lo + rng.index(hi - lo + 1);
            (0..len)
                .map(|_| match rng.index(8) {
                    0 => WIDE[rng.index(WIDE.len())],
                    _ => (0x20 + rng.index(0x5f) as u8) as char,
                })
                .collect()
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix finite magnitudes with the occasional special value,
            // mirroring upstream's default float coverage.
            match rng.next_u64() % 16 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                _ => {
                    let mag = (rng.next_u64() >> 11) as f64;
                    let scale = 2f64.powi((rng.next_u64() % 129) as i32 - 64);
                    let v = mag * scale;
                    if rng.next_u64() & 1 == 1 {
                        -v
                    } else {
                        v
                    }
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-min / exclusive-max element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + rng.index(span.max(1));
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // Some three times out of four, like upstream's default.
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// `proptest! { ... }`: turns `fn name(arg in strategy, ...) { body }`
/// items into `#[test]`-able functions that sample each strategy `cases`
/// times. `prop_assert*` failures short-circuit the case via an `Err`
/// return and panic with the rendered message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for proptest_case in 0..config.cases {
                let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);)*
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}",
                        proptest_case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "{}: `{:?}` == `{:?}`",
                ::std::format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Uniform choice between strategies that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..=9, b in -50i64..50, x in 0.25f64..0.75) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!((-50..50).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (any::<u8>(), 1u32..=32),
            bytes in crate::collection::vec(any::<u8>(), 0..16),
            maybe in crate::option::of(any::<u16>()),
        ) {
            prop_assert!(pair.1 >= 1 && pair.1 <= 32);
            prop_assert!(bytes.len() < 16);
            if let Some(v) = maybe {
                prop_assert_eq!(u32::from(v), v as u32);
            }
        }

        #[test]
        fn oneof_and_map_sample(v in prop_oneof![
            Just(0i64),
            any::<i64>().prop_map(|x| x.wrapping_abs()),
        ]) {
            prop_assert!(v == 0 || v == v.wrapping_abs());
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = any::<i64>().prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(4, 32, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::from_name("recursive");
        for _ in 0..200 {
            let t = tree.sample(&mut rng);
            assert!(depth(&t) <= 5);
        }
    }
}
