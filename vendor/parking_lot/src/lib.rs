//! Minimal offline shim for the `parking_lot` API surface this workspace
//! uses: `Mutex::new`/`lock` and `RwLock::new`/`read`/`write`, without
//! poisoning in the API. Backed by `std::sync`; a poisoned std lock is
//! unwrapped into the inner guard, matching parking_lot's "no poisoning"
//! contract closely enough for in-process use.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
