//! # WA-RAN
//!
//! A Rust reproduction of *"Towards Seamless 5G Open-RAN Integration with
//! WebAssembly"* (HotNets '24): 5G RAN components hosted as WebAssembly
//! plugins — MVNO intra-slice schedulers inside a gNB MAC and near-RT RIC
//! communication / xApp plugins — on top of a from-scratch WebAssembly
//! virtual machine.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`wasm`] — the WebAssembly substrate: binary decoder, validator,
//!   interpreter with sandboxed linear memory, fuel metering, module
//!   builder/encoder, and a WAT-subset assembler.
//! - [`plugc`] — PlugC, a small C-like language compiled to Wasm, used to
//!   author plugins as source text.
//! - [`abi`] — the host↔plugin data plane: byte-buffer ABI, scheduler
//!   record layouts, and wire codecs (TLV / protobuf-wire / bit-packed /
//!   JSON).
//! - [`host`] — the plugin hosting runtime: sandbox policies, hot swap,
//!   fault handling, execution-time statistics.
//! - [`ransim`] — the slot-accurate 5G gNB MAC simulator with two-level
//!   (inter-slice / intra-slice) scheduling.
//! - [`ric`] — the near-RT RIC and E2-node pair with communication plugins
//!   and xApps.
//! - [`core`] — WA-RAN assembled: plugin-backed gNB, live swap, standard
//!   plugin library, scenario drivers.
//!
//! ## Quickstart
//!
//! ```
//! use wa_ran::core::{ScenarioBuilder, SliceSpec, SchedKind};
//!
//! let mut scenario = ScenarioBuilder::new()
//!     .slice(SliceSpec::new("mvno-1", SchedKind::RoundRobin).target_mbps(12.0).ues(3))
//!     .seconds(1.0)
//!     .build()
//!     .expect("scenario builds");
//! let report = scenario.run().expect("runs to completion");
//! assert!(report.slice("mvno-1").unwrap().mean_rate_mbps() > 0.0);
//! ```

pub use waran_abi as abi;
pub use waran_core as core;
pub use waran_host as host;
pub use waran_plugc as plugc;
pub use waran_ransim as ransim;
pub use waran_ric as ric;
pub use waran_wasm as wasm;
