//! Cross-crate integration tests: the full WA-RAN pipeline
//! (PlugC → Wasm → sandbox → gNB → RIC) exercised through the umbrella
//! crate's public API.

use wa_ran::core::{plugins, ChannelSpec, ScenarioBuilder, SchedKind, SliceSpec, TrafficSpec};
use wa_ran::host::plugin::{Plugin, SandboxPolicy};
use wa_ran::wasm::instance::Linker;

#[test]
fn paper_fig5a_shape_holds_in_miniature() {
    // A 6-second cut of the Fig. 5a experiment: three Wasm-scheduled MVNOs
    // with targets 3/12/15 Mb/s co-exist and track their targets.
    let mut scenario = ScenarioBuilder::new()
        .slice(
            SliceSpec::new("mt", SchedKind::MaxThroughput)
                .target_mbps(3.0)
                .ues(2),
        )
        .slice(
            SliceSpec::new("rr", SchedKind::RoundRobin)
                .target_mbps(12.0)
                .ues(3),
        )
        .slice(
            SliceSpec::new("pf", SchedKind::ProportionalFair)
                .target_mbps(15.0)
                .ues(3),
        )
        .seconds(6.0)
        .seed(2)
        .build()
        .expect("scenario builds");
    let report = scenario.run().expect("runs");
    for (name, target) in [("mt", 3.0), ("rr", 12.0), ("pf", 15.0)] {
        let slice = report.slice(name).expect("slice exists");
        assert!(
            (slice.mean_rate_mbps() - target).abs() < target * 0.12 + 0.3,
            "{name}: {} vs target {target}",
            slice.mean_rate_mbps()
        );
        assert_eq!(slice.scheduler_faults, 0, "{name} must not fault");
    }
}

#[test]
fn paper_fig5b_shape_holds_in_miniature() {
    // MT starves the MCS-20 UE; a live swap to PF revives it; RR equalizes.
    let mut scenario = ScenarioBuilder::new()
        .slice(
            SliceSpec::new("mvno", SchedKind::MaxThroughput)
                .ue(ChannelSpec::FixedMcs(20), TrafficSpec::CbrMbps(22.0))
                .ue(ChannelSpec::FixedMcs(24), TrafficSpec::CbrMbps(22.0))
                .ue(ChannelSpec::FixedMcs(28), TrafficSpec::CbrMbps(22.0)),
        )
        .seconds(6.0)
        .pf_time_constant(2000.0)
        .build()
        .expect("scenario builds");
    let ues = scenario.slice_ues("mvno").to_vec();

    scenario.run_seconds(2.0);
    let mid = scenario.report();
    let weak_mt = mid.ue(ues[0]).expect("ue").mean_rate_mbps;
    let best_mt = mid.ue(ues[2]).expect("ue").mean_rate_mbps;
    assert!(weak_mt < 1.0, "MT starves MCS-20: {weak_mt}");
    assert!(best_mt > 18.0, "MT saturates MCS-28: {best_mt}");

    scenario
        .swap_plugin("mvno", SchedKind::ProportionalFair)
        .expect("swap");
    scenario.run_seconds(2.0);
    scenario
        .swap_plugin("mvno", SchedKind::RoundRobin)
        .expect("swap");
    scenario.run_seconds(2.0);

    let report = scenario.report();
    // Last 10 windows = RR steady state: everyone served, modest spread.
    let recent = |ue: u32| {
        let s = &report.ue(ue).expect("ue").series_mbps;
        s[s.len() - 10..].iter().sum::<f64>() / 10.0
    };
    let (a, b, c) = (recent(ues[0]), recent(ues[1]), recent(ues[2]));
    assert!(
        a > 3.0 && b > 3.0 && c > 3.0,
        "RR serves everyone: {a}/{b}/{c}"
    );
    assert_eq!(report.slice("mvno").expect("slice").scheduler_faults, 0);
}

#[test]
fn paper_5d_safety_table_holds() {
    // All three unsafe behaviours trap; the host object stays usable.
    let req = wa_ran::abi::sched::SchedRequest {
        slot: 0,
        prbs_granted: 52,
        slice_id: 0,
        ues: vec![wa_ran::abi::sched::UeInfo {
            ue_id: 70,
            cqi: 10,
            mcs: 15,
            flags: 0,
            buffer_bytes: 10_000,
            avg_tput_bps: 1e6,
            prb_capacity_bits: 400.0,
        }],
    };
    for (name, src) in [
        ("null-deref", plugins::faulty::NULL_DEREF),
        ("oob", plugins::faulty::OOB_ACCESS),
        ("double-free", plugins::faulty::DOUBLE_FREE),
    ] {
        let wasm = plugins::compile_faulty(src);
        let mut plugin = Plugin::new(
            &wasm,
            &Linker::<()>::new(),
            (),
            SandboxPolicy::slot_budget(),
        )
        .expect("instantiates");
        let result = plugin.call_sched(&req);
        assert!(result.is_err(), "{name} must be caught");
        // The same process continues scheduling with a healthy plugin.
        let mut healthy = Plugin::new(
            plugins::rr_wasm(),
            &Linker::<()>::new(),
            (),
            SandboxPolicy::slot_budget(),
        )
        .expect("instantiates");
        assert!(healthy.call_sched(&req).is_ok(), "host survives {name}");
    }
}

#[test]
fn custom_plugc_plugin_runs_in_scenario() {
    // An MVNO ships a bespoke policy: strict priority by UE id.
    let src = r#"
        export fn schedule(req: i32, len: i32) -> i64 {
            var n: i32 = load_u8(req + 4) | (load_u8(req + 5) << 8);
            var prbs: i32 = load_i32(req + 16);
            var out: i32 = wrn_alloc(8 + n * 8);
            store_u8(out, 0x52); store_u8(out + 1, 0x57);
            store_u8(out + 2, 1); store_u8(out + 3, 0);
            store_u8(out + 4, n & 255); store_u8(out + 5, (n >> 8) & 255);
            store_u8(out + 6, 0); store_u8(out + 7, 0);
            var i: i32 = 0;
            var remaining: i32 = prbs;
            while (i < n) {
                var rec: i32 = req + 24 + i * 32;
                var cap: f64 = load_f64(rec + 24);
                var need: i32 = ceil((load_i32(rec + 8) as f64) * 8.0 / max(cap, 1.0)) as i32;
                var give: i32 = need;
                if (remaining < give) { give = remaining; }
                var slot: i32 = out + 8 + i * 8;
                store_i32(slot, load_i32(rec));
                store_u8(slot + 4, give & 255);
                store_u8(slot + 5, (give >> 8) & 255);
                store_u8(slot + 6, i & 255);
                store_u8(slot + 7, 0);
                remaining = remaining - give;
                i = i + 1;
            }
            return pack(out, 8 + n * 8);
        }
    "#;
    let wasm = wa_ran::plugc::compile(src).expect("compiles");
    let mut scenario = ScenarioBuilder::new()
        .slice(SliceSpec::new("custom", SchedKind::RoundRobin).ues(3))
        .seconds(1.0)
        .build()
        .expect("builds");
    scenario
        .swap_plugin_bytes("custom", &wasm)
        .expect("installs");
    let report = scenario.run().expect("runs");
    let slice = report.slice("custom").expect("slice");
    assert_eq!(slice.scheduler_faults, 0);
    // Strict priority: first UE gets (almost) everything.
    assert!(slice.ues[0].mean_rate_mbps > 10.0 * slice.ues[1].mean_rate_mbps.max(0.01));
}

#[test]
fn wasm_module_bytes_are_portable() {
    // A plugin compiled once runs identically in two independent hosts —
    // the paper's platform-agnosticism claim at the bytecode level.
    let wasm = plugins::pf_wasm();
    let req = wa_ran::abi::sched::SchedRequest {
        slot: 9,
        prbs_granted: 20,
        slice_id: 1,
        ues: (0..5)
            .map(|i| wa_ran::abi::sched::UeInfo {
                ue_id: i,
                cqi: 10,
                mcs: 15,
                flags: 0,
                buffer_bytes: 40_000,
                avg_tput_bps: 1e6 * (i as f64 + 1.0),
                prb_capacity_bits: 450.0,
            })
            .collect(),
    };
    let mut a = Plugin::new(wasm, &Linker::<()>::new(), (), SandboxPolicy::default()).unwrap();
    let mut b = Plugin::new(wasm, &Linker::<()>::new(), (), SandboxPolicy::unmetered()).unwrap();
    assert_eq!(a.call_sched(&req).unwrap(), b.call_sched(&req).unwrap());
}

#[test]
fn fuel_determinism_across_instances() {
    // Identical inputs burn identical fuel in fresh instances —
    // WA-RAN's deterministic-metering property.
    let consumed = || {
        let mut p = Plugin::new(
            plugins::mt_wasm(),
            &Linker::<()>::new(),
            (),
            SandboxPolicy::default(),
        )
        .unwrap();
        let req = wa_ran::abi::sched::SchedRequest {
            slot: 0,
            prbs_granted: 30,
            slice_id: 0,
            ues: (0..8)
                .map(|i| wa_ran::abi::sched::UeInfo {
                    ue_id: i,
                    cqi: 9,
                    mcs: 14,
                    flags: 0,
                    buffer_bytes: 20_000,
                    avg_tput_bps: 2e6,
                    prb_capacity_bits: 380.0,
                })
                .collect(),
        };
        p.call_sched(&req).unwrap();
        p.instance().stats().instrs
    };
    assert_eq!(consumed(), consumed());
}
