//! Cross-crate integration tests for the RIC side: plugin-wrapped
//! communication, Wasm xApps with host functions, and the vendor-mismatch
//! adapter in the message path.

use wa_ran::host::plugin::SandboxPolicy;
use wa_ran::ric::comm::{CommCodec, JsonCodec, PbCodec, TlvCodec, WasmCommPlugin};
use wa_ran::ric::e2::{ControlAction, Indication, KpiReport};
use wa_ran::ric::ric::{NearRtRic, WasmXApp};

fn kpi(ue: u32, slice: u32, cqi: u8, tput: f64) -> KpiReport {
    KpiReport {
        ue_id: ue,
        slice_id: slice,
        cqi,
        mcs: cqi * 2,
        buffer_bytes: 5_000,
        tput_bps: tput,
    }
}

#[test]
fn wasm_xapp_emits_control_actions() {
    // A PlugC xApp: hand over any UE reporting CQI < 5.
    let src = r#"
        export fn on_indication(ptr: i32, len: i32) -> i64 {
            var n: i32 = load_i32(ptr + 8);
            var out: i32 = wrn_alloc(n * 16);
            var written: i32 = 0;
            var i: i32 = 0;
            while (i < n) {
                var rec: i32 = ptr + 16 + i * 24;
                var cqi: i32 = load_u8(rec + 8);
                if (cqi < 5) {
                    var act: i32 = out + written * 16;
                    store_u8(act, 2);              // HANDOVER tag
                    store_u8(act + 1, 0); store_u8(act + 2, 0); store_u8(act + 3, 0);
                    store_i32(act + 4, load_i32(rec));  // ue_id
                    store_i32(act + 8, 7);              // target cell
                    store_i32(act + 12, 0);
                    written = written + 1;
                }
                i = i + 1;
            }
            return pack(out, written * 16);
        }
    "#;
    let wasm = wa_ran::plugc::compile(src).expect("xapp compiles");
    let xapp = WasmXApp::new("steer", &wasm, SandboxPolicy::default()).expect("loads");

    let mut ric = NearRtRic::new();
    ric.add_xapp(Box::new(xapp));

    let actions = ric.handle_indication(&Indication {
        slot: 5,
        reports: vec![
            kpi(70, 0, 12, 8e6),
            kpi(71, 0, 3, 0.2e6),
            kpi(72, 0, 4, 0.3e6),
        ],
    });
    assert_eq!(
        actions,
        vec![
            ControlAction::Handover {
                ue_id: 71,
                target_cell: 7
            },
            ControlAction::Handover {
                ue_id: 72,
                target_cell: 7
            },
        ]
    );
}

#[test]
fn wasm_xapps_message_each_other_via_host_functions() {
    // Sender xApp: posts a one-byte message to "sink" on each indication.
    let sender_src = r#"
        extern fn xapp_send(dst: i32, dst_len: i32, msg: i32, msg_len: i32);
        export fn on_indication(ptr: i32, len: i32) -> i64 {
            store_u8(0, 115); store_u8(1, 105); store_u8(2, 110); store_u8(3, 107); // "sink"
            store_u8(16, 42);
            xapp_send(0, 4, 16, 1);
            return pack(0, 0);
        }
    "#;
    // Sink xApp: counts received bytes; emits one CQI-table action per
    // message so the test can observe deliveries.
    let sink_src = r#"
        extern fn xapp_recv(buf: i32, cap: i32) -> i32;
        export fn on_indication(ptr: i32, len: i32) -> i64 {
            var out: i32 = wrn_alloc(64 * 16);
            var written: i32 = 0;
            while (1) {
                var n: i32 = xapp_recv(128, 64);
                if (n < 0) { break; }
                var act: i32 = out + written * 16;
                store_u8(act, 3);          // SET_CQI_TABLE tag
                store_u8(act + 1, 0); store_u8(act + 2, 0); store_u8(act + 3, 0);
                store_i32(act + 4, 99);    // ue
                store_u8(act + 8, load_u8(128));
                written = written + 1;
            }
            return pack(out, written * 16);
        }
    "#;
    let sender = WasmXApp::new(
        "sender",
        &wa_ran::plugc::compile(sender_src).expect("compiles"),
        SandboxPolicy::default(),
    )
    .expect("loads");
    let sink = WasmXApp::new(
        "sink",
        &wa_ran::plugc::compile(sink_src).expect("compiles"),
        SandboxPolicy::default(),
    )
    .expect("loads");

    let mut ric = NearRtRic::new();
    ric.add_xapp(Box::new(sender));
    ric.add_xapp(Box::new(sink));

    let ind = Indication {
        slot: 0,
        reports: vec![],
    };
    // Indication 1: sender posts; sink's mailbox is still empty this round.
    let a1 = ric.handle_indication(&ind);
    assert!(a1.is_empty());
    // Indication 2: sink drains the message and reacts.
    let a2 = ric.handle_indication(&ind);
    assert_eq!(
        a2,
        vec![ControlAction::SetCqiTable {
            ue_id: 99,
            table: 42
        }]
    );
}

#[test]
fn wasm_comm_plugin_passthrough_wire() {
    // A comm plugin whose wire format IS the xApp ABI layout (identity
    // transform) — the minimal vendor codec.
    let src = r#"
        export fn encode_indication(ptr: i32, len: i32) -> i64 { return pack(ptr, len); }
        export fn decode_indication(ptr: i32, len: i32) -> i64 { return pack(ptr, len); }
        export fn encode_actions(ptr: i32, len: i32) -> i64 { return pack(ptr, len); }
        export fn decode_actions(ptr: i32, len: i32) -> i64 { return pack(ptr, len); }
    "#;
    let wasm = wa_ran::plugc::compile(src).expect("compiles");
    let plugin = wa_ran::host::plugin::Plugin::new(
        &wasm,
        &wa_ran::wasm::instance::Linker::new(),
        (),
        SandboxPolicy::default(),
    )
    .expect("loads");
    let codec = WasmCommPlugin::new(plugin, "identity");

    let ind = Indication {
        slot: 77,
        reports: vec![kpi(1, 0, 9, 3e6), kpi(2, 1, 11, 5e6)],
    };
    let bytes = codec.encode_indication(&ind);
    assert_eq!(codec.decode_indication(&bytes).expect("roundtrips"), ind);

    let actions = vec![ControlAction::Handover {
        ue_id: 1,
        target_cell: 2,
    }];
    let bytes = codec.encode_actions(&actions);
    assert_eq!(
        codec.decode_actions(&bytes).expect("roundtrips"),
        (actions, 0)
    );
}

#[test]
fn semantic_interop_across_all_codecs() {
    // Any codec pair interoperates through the semantic model — encode
    // with X, decode with X, re-encode with Y, decode with Y.
    let ind = Indication {
        slot: 424242,
        reports: vec![kpi(70, 0, 15, 21.5e6), kpi(71, 2, 1, 0.01e6)],
    };
    let codecs: [&dyn CommCodec; 3] = [&TlvCodec, &PbCodec, &JsonCodec];
    for a in codecs {
        for b in codecs {
            let wire_a = a.encode_indication(&ind);
            let sem = a.decode_indication(&wire_a).expect("a decodes");
            let wire_b = b.encode_indication(&sem);
            let back = b.decode_indication(&wire_b).expect("b decodes");
            assert_eq!(back, ind, "{} -> {}", a.name(), b.name());
        }
    }
}
