//! Lowering of validated function bodies into a flat, execution-ready IR.
//!
//! The decoded [`Instr`] tree stays the source of truth for `disasm`,
//! `encode` and the reference interpreter; this pass consumes it and
//! produces a [`CompiledFunc`] the hot interpreter loop runs instead:
//!
//! * **Side-table branches** — every `br`/`br_if`/`br_table`/`else` and
//!   block `end` is resolved at compile time into an absolute op PC plus a
//!   precomputed unwind descriptor ([`BranchTarget`]: frame-relative stack
//!   height + result arity). The runtime label stack disappears entirely.
//! * **Basic-block metering** — fuel, the wall-clock deadline and the
//!   value-stack bound are charged once per basic block by a leading
//!   [`Op::Meter`] whose `cost` is the number of *source* instructions in
//!   the block, computed here. Fuel totals are identical to per-instruction
//!   metering on every complete execution; see the notes on `Meter` below
//!   for the granularity change on mid-block traps.
//! * **Superinstruction fusion** — the operand patterns PlugC's code
//!   generator emits hottest (`local.get local.get binop`,
//!   `const`/`local.get` operands, `compare (i32.eqz) br_if`,
//!   `local.get load`) collapse into single ops, within one basic block
//!   only so branch targets stay valid.
//! * **Branch-table interning** — `br_table` targets live in the
//!   per-function [`CompiledFunc::branches`] side array (indexed `u32`),
//!   not behind a per-instruction `Box<[u32]>`.
//!
//! Compilation requires a *validated* body: the lowering trusts the
//! type/stack discipline the validator establishes (as the reference
//! interpreter already does) and panics on malformed input.

use std::sync::OnceLock;

use crate::instr::Instr;
use crate::interp::Value;
use crate::module::Module;
use crate::types::{BlockType, ValType};

/// Fused i32 binary operator (non-trapping arithmetic and comparisons;
/// `div`/`rem` keep their own trapping ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum I32Op {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Rotl,
    Rotr,
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

impl I32Op {
    /// The fused operator for a decoded instruction, when one exists.
    fn from_instr(i: &Instr) -> Option<I32Op> {
        Some(match i {
            Instr::I32Add => I32Op::Add,
            Instr::I32Sub => I32Op::Sub,
            Instr::I32Mul => I32Op::Mul,
            Instr::I32And => I32Op::And,
            Instr::I32Or => I32Op::Or,
            Instr::I32Xor => I32Op::Xor,
            Instr::I32Shl => I32Op::Shl,
            Instr::I32ShrS => I32Op::ShrS,
            Instr::I32ShrU => I32Op::ShrU,
            Instr::I32Rotl => I32Op::Rotl,
            Instr::I32Rotr => I32Op::Rotr,
            Instr::I32Eq => I32Op::Eq,
            Instr::I32Ne => I32Op::Ne,
            Instr::I32LtS => I32Op::LtS,
            Instr::I32LtU => I32Op::LtU,
            Instr::I32GtS => I32Op::GtS,
            Instr::I32GtU => I32Op::GtU,
            Instr::I32LeS => I32Op::LeS,
            Instr::I32LeU => I32Op::LeU,
            Instr::I32GeS => I32Op::GeS,
            Instr::I32GeU => I32Op::GeU,
            _ => return None,
        })
    }

    pub(crate) fn commutative(self) -> bool {
        matches!(
            self,
            I32Op::Add | I32Op::Mul | I32Op::And | I32Op::Or | I32Op::Xor | I32Op::Eq | I32Op::Ne
        )
    }

    /// Logical negation, defined for comparisons only (integer comparisons
    /// are a total order, so `!(a < b) == a >= b` always holds — unlike
    /// floats, which is why float compares never fuse with `i32.eqz`).
    pub(crate) fn negate(self) -> Option<I32Op> {
        Some(match self {
            I32Op::Eq => I32Op::Ne,
            I32Op::Ne => I32Op::Eq,
            I32Op::LtS => I32Op::GeS,
            I32Op::LtU => I32Op::GeU,
            I32Op::GtS => I32Op::LeS,
            I32Op::GtU => I32Op::LeU,
            I32Op::LeS => I32Op::GtS,
            I32Op::LeU => I32Op::GtU,
            I32Op::GeS => I32Op::LtS,
            I32Op::GeU => I32Op::LtU,
            _ => return None,
        })
    }

    /// Evaluate the operator. Comparisons produce 0/1.
    #[inline(always)]
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            I32Op::Add => a.wrapping_add(b),
            I32Op::Sub => a.wrapping_sub(b),
            I32Op::Mul => a.wrapping_mul(b),
            I32Op::And => a & b,
            I32Op::Or => a | b,
            I32Op::Xor => a ^ b,
            I32Op::Shl => a.wrapping_shl(b as u32),
            I32Op::ShrS => a.wrapping_shr(b as u32),
            I32Op::ShrU => ((a as u32).wrapping_shr(b as u32)) as i32,
            I32Op::Rotl => a.rotate_left(b as u32 & 31),
            I32Op::Rotr => a.rotate_right(b as u32 & 31),
            I32Op::Eq => (a == b) as i32,
            I32Op::Ne => (a != b) as i32,
            I32Op::LtS => (a < b) as i32,
            I32Op::LtU => ((a as u32) < (b as u32)) as i32,
            I32Op::GtS => (a > b) as i32,
            I32Op::GtU => ((a as u32) > (b as u32)) as i32,
            I32Op::LeS => (a <= b) as i32,
            I32Op::LeU => ((a as u32) <= (b as u32)) as i32,
            I32Op::GeS => (a >= b) as i32,
            I32Op::GeU => ((a as u32) >= (b as u32)) as i32,
        }
    }
}

/// A resolved branch destination: absolute op PC plus the unwind
/// descriptor. Taking the branch moves the top `arity` values down to
/// frame-relative `height`, truncates the stack there, and jumps to `pc`
/// (always the `Meter` leading the target basic block, except for
/// function-level targets which point at a `Return`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchTarget {
    /// Destination op index.
    pub pc: u32,
    /// Operand-stack height (relative to the frame base) the target block
    /// starts at, *excluding* the carried values.
    pub height: u32,
    /// Result values the branch carries.
    pub arity: u8,
}

/// One flat-IR operation. Branch-carrying ops index
/// [`CompiledFunc::branches`]; locals in fused ops are `u16` (fusion is
/// skipped for the rare function with more locals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Basic-block header: charge `cost` fuel (the number of source
    /// instructions in the block), poll the deadline, and verify the value
    /// stack can grow by `peak` without exceeding the limit.
    Meter {
        cost: u32,
        peak: u32,
    },
    Unreachable,
    Br(u32),
    /// Branch when top-of-stack != 0.
    BrIf(u32),
    /// Branch when top-of-stack == 0.
    BrIfZ(u32),
    /// Pop b, a; branch when `op(a, b)` holds (fused compare+br_if).
    BrIfCmp {
        op: I32Op,
        br: u32,
    },
    /// Branch when `op(locals[a], locals[b])` holds; touches no stack.
    BrIfLL {
        op: I32Op,
        a: u16,
        b: u16,
        br: u32,
    },
    /// Pop selector; take `branches[start + min(sel, n)]` (`start + n` is
    /// the default target).
    BrTable {
        start: u32,
        n: u32,
    },
    Return,
    /// Call a module-local function (index into `Module::funcs`).
    CallWasm(u32),
    /// Call an imported host function; `ret` encodes the result type
    /// (0 = none, 1..4 = I32/I64/F32/F64) so no type lookup happens at
    /// run time.
    CallHost {
        f: u32,
        argc: u16,
        ret: u8,
    },
    CallIndirect(u32),
    Drop,
    Select,

    LocalGet(u32),
    /// Push locals[a] then locals[b] (fused adjacent local.get pair).
    LocalGet2 {
        a: u16,
        b: u16,
    },
    LocalSet(u32),
    LocalTee(u32),
    /// `locals[dst] = k` (fused const + local.set); touches no stack.
    LocalSetC {
        dst: u16,
        k: i32,
    },
    /// `locals[dst] = locals[src]` (fused local.get + local.set).
    LocalCopy {
        src: u16,
        dst: u16,
    },
    GlobalGet(u32),
    GlobalSet(u32),

    /// Pop b, a; push `op(a, b)` — the generic form of every non-trapping
    /// i32 binop/compare.
    I32Bin(I32Op),
    /// Push `op(locals[a], locals[b])` (fused local.get×2 + binop).
    I32BinLL {
        op: I32Op,
        a: u16,
        b: u16,
    },
    /// Pop a; push `op(a, locals[b])`.
    I32BinSL {
        op: I32Op,
        b: u16,
    },
    /// Pop a; push `op(a, k)` (fused const + binop).
    I32BinSC {
        op: I32Op,
        k: i32,
    },
    /// Push `op(locals[a], k)`.
    I32BinLC {
        op: I32Op,
        a: u16,
        k: i32,
    },
    /// `locals[dst] = op(locals[a], locals[b])` — a three-address
    /// register op (binop + local.set write-back); touches no stack.
    I32BinLLSet {
        op: I32Op,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `locals[dst] = op(locals[a], k)` — the canonical loop increment
    /// `i = i + 1` is exactly one of these.
    I32BinLCSet {
        op: I32Op,
        a: u16,
        k: i32,
        dst: u16,
    },
    /// Pop a; `locals[dst] = op(a, locals[b])`.
    I32BinSLSet {
        op: I32Op,
        b: u16,
        dst: u16,
    },
    /// Pop a; `locals[dst] = op(a, k)`.
    I32BinSCSet {
        op: I32Op,
        k: i32,
        dst: u16,
    },

    /// Fused local.get + load (address comes straight from the local; the
    /// static offset keeps the original u64 bounds-check semantics).
    I32LoadL {
        l: u16,
        off: u32,
    },
    I64LoadL {
        l: u16,
        off: u32,
    },
    F64LoadL {
        l: u16,
        off: u32,
    },
    I32Load8UL {
        l: u16,
        off: u32,
    },
    /// Pop addr; `locals[dst] = load(addr + off)` (load + local.set).
    I32LoadSet {
        off: u32,
        dst: u16,
    },
    /// `locals[dst] = load(locals[l] + off)` — a full register-to-register
    /// load; touches no stack.
    I32LoadLSet {
        l: u16,
        off: u32,
        dst: u16,
    },

    I32Load(u32),
    I64Load(u32),
    F32Load(u32),
    F64Load(u32),
    I32Load8S(u32),
    I32Load8U(u32),
    I32Load16S(u32),
    I32Load16U(u32),
    I64Load8S(u32),
    I64Load8U(u32),
    I64Load16S(u32),
    I64Load16U(u32),
    I64Load32S(u32),
    I64Load32U(u32),
    I32Store(u32),
    I64Store(u32),
    F32Store(u32),
    F64Store(u32),
    I32Store8(u32),
    I32Store16(u32),
    I64Store8(u32),
    I64Store16(u32),
    I64Store32(u32),
    MemorySize,
    MemoryGrow,
    MemoryCopy,
    MemoryFill,

    I32Const(i32),
    I64Const(i64),
    F32Const(f32),
    F64Const(f64),

    I32Eqz,
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,

    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,
    I32TruncSatF32S,
    I32TruncSatF32U,
    I32TruncSatF64S,
    I32TruncSatF64U,
    I64TruncSatF32S,
    I64TruncSatF32U,
    I64TruncSatF64S,
    I64TruncSatF64U,
}

/// A function body lowered to the flat IR, ready to execute.
#[derive(Debug, Clone)]
pub struct CompiledFunc {
    /// Flat op sequence.
    pub ops: Box<[Op]>,
    /// Interned branch targets (including all `br_table` entries).
    pub branches: Box<[BranchTarget]>,
    /// Zero values for the declared (non-parameter) locals, memcpy'd into
    /// the locals arena on frame entry.
    pub locals_init: Box<[Value]>,
    /// Parameter count.
    pub argc: u32,
    /// Result count (0 or 1 in the MVP).
    pub ret_arity: u32,
}

/// Per-function compile cache slot, stored on
/// [`FuncBody`](crate::module::FuncBody). Wraps `OnceLock` so `FuncBody`
/// keeps its derived `Clone`/`PartialEq`/`Debug`; the cache is identity-
/// irrelevant to module equality.
pub struct CompiledCell(OnceLock<CompiledFunc>);

impl CompiledCell {
    /// Empty (not-yet-compiled) cell.
    pub const fn new() -> Self {
        CompiledCell(OnceLock::new())
    }

    /// The compiled body, compiling on first use. `local_idx` indexes
    /// `module.funcs` and must be the body this cell lives on.
    pub fn get_or_compile(&self, module: &Module, local_idx: u32) -> &CompiledFunc {
        self.0.get_or_init(|| compile_func(module, local_idx))
    }
}

impl Default for CompiledCell {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for CompiledCell {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(cf) = self.0.get() {
            let _ = cell.set(cf.clone());
        }
        CompiledCell(cell)
    }
}

impl PartialEq for CompiledCell {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for CompiledCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledCell({})",
            if self.0.get().is_some() {
                "compiled"
            } else {
                "pending"
            }
        )
    }
}

/// Control-frame kind tracked during lowering.
enum CtrlKind {
    /// The implicit function-level frame (branches to it return).
    Func,
    /// `block` — and `if` frames once their else edge is resolved.
    Block,
    /// `loop` with its resolved back-edge target (the header `Meter`).
    Loop { header: u32 },
    /// `if` whose false edge (branch index) still needs a destination.
    If { else_br: u32 },
}

struct Ctrl {
    kind: CtrlKind,
    /// Frame-relative operand height at entry (after the `if` condition).
    height: u32,
    arity: u8,
    /// Branch indices to patch to this frame's end leader.
    fixups: Vec<u32>,
}

struct FnCompiler<'m> {
    module: &'m Module,
    n_imports: u32,
    ops: Vec<Op>,
    branches: Vec<BranchTarget>,
    ctrls: Vec<Ctrl>,
    /// Static operand height, frame-relative. Exact for reachable code.
    height: usize,
    reachable: bool,
    /// Whether a metered block is currently open.
    open: bool,
    meter_pc: usize,
    block_cost: u32,
    block_entry: usize,
    block_max: usize,
    /// Fusion may only rewrite ops at indices >= this (current block).
    fuse_floor: usize,
    /// Branch indices targeting the function level, patched to the final
    /// return trampoline.
    fn_level: Vec<u32>,
    ret_arity: u32,
    /// Added to every local index while lowering an inlined callee body
    /// (the callee's locals live in fresh caller slots).
    local_offset: u32,
    /// Next free local slot for inlined callees.
    next_local: u32,
    /// Callee indices currently being inlined (recursion/depth guard).
    inline_stack: Vec<u32>,
    /// Zero values for the inline slots, appended to `locals_init`.
    extra_locals: Vec<Value>,
}

/// Lower one validated function body (index into `Module::funcs`) to the
/// flat IR. Prefer [`Module::compiled_func`], which caches the result.
pub fn compile_func(module: &Module, local_idx: u32) -> CompiledFunc {
    let body = &module.funcs[local_idx as usize];
    let ty = &module.types[body.type_idx as usize];
    let ret_arity = ty.results.len() as u32;
    let mut c = FnCompiler {
        module,
        n_imports: module.num_imported_funcs(),
        ops: Vec::with_capacity(body.code.len() + 8),
        branches: Vec::new(),
        ctrls: vec![Ctrl {
            kind: CtrlKind::Func,
            height: 0,
            arity: ret_arity as u8,
            fixups: Vec::new(),
        }],
        height: 0,
        reachable: true,
        open: false,
        meter_pc: 0,
        block_cost: 0,
        block_entry: 0,
        block_max: 0,
        fuse_floor: 0,
        fn_level: Vec::new(),
        ret_arity,
        local_offset: 0,
        next_local: (ty.params.len() + body.locals.len()) as u32,
        inline_stack: Vec::new(),
        extra_locals: Vec::new(),
    };
    for instr in &body.code {
        c.lower(instr);
    }
    debug_assert!(c.ctrls.is_empty(), "validated: balanced control frames");
    // Conditional branches to the function level land on a shared return
    // trampoline (unmetered: the branch already paid for itself, matching
    // the reference interpreter, which never executes an End on this path).
    if !c.fn_level.is_empty() {
        let tramp = c.ops.len() as u32;
        c.ops.push(Op::Return);
        for bi in &c.fn_level {
            c.branches[*bi as usize].pc = tramp;
        }
    }
    let locals_init = body
        .locals
        .iter()
        .map(|t| Value::zero(*t))
        .chain(c.extra_locals)
        .collect();
    CompiledFunc {
        ops: c.ops.into_boxed_slice(),
        branches: c.branches.into_boxed_slice(),
        locals_init,
        argc: ty.params.len() as u32,
        ret_arity,
    }
}

/// True for instructions an inlined callee body may contain: straight-line
/// data flow only — no control flow. Nested direct calls are allowed; they
/// are lowered recursively (inlined again where possible, emitted as real
/// calls otherwise), bounded by [`INLINE_MAX_DEPTH`].
fn is_straight_line(instr: &Instr) -> bool {
    !matches!(
        instr,
        Instr::Block { .. }
            | Instr::Loop { .. }
            | Instr::If { .. }
            | Instr::Else { .. }
            | Instr::End
            | Instr::Br { .. }
            | Instr::BrIf { .. }
            | Instr::BrTable { .. }
            | Instr::Return
            | Instr::CallIndirect { .. }
            | Instr::Unreachable
    )
}

/// Inline at most this many source instructions per callee body.
const INLINE_MAX_INSTRS: usize = 64;

/// Maximum nesting of inlined callee bodies (a callee's own calls may
/// inline one more level; deeper or recursive chains become real calls).
const INLINE_MAX_DEPTH: usize = 2;

impl<'m> FnCompiler<'m> {
    /// Finalize the open block's `Meter` (cost + static peak growth).
    fn seal(&mut self) {
        if self.open {
            let peak = (self.block_max - self.block_entry) as u32;
            if let Op::Meter { cost, peak: p } = &mut self.ops[self.meter_pc] {
                *cost = self.block_cost;
                *p = peak;
            }
            self.open = false;
        }
    }

    /// The current block leader's PC, opening a fresh block when none is.
    fn leader(&mut self) -> u32 {
        if !self.open {
            self.meter_pc = self.ops.len();
            self.ops.push(Op::Meter { cost: 0, peak: 0 });
            self.block_cost = 0;
            self.block_entry = self.height;
            self.block_max = self.height;
            self.fuse_floor = self.ops.len();
            self.open = true;
        }
        self.meter_pc as u32
    }

    /// Charge `n` source instructions to the current block.
    fn count(&mut self, n: u32) {
        self.leader();
        self.block_cost += n;
    }

    fn emit(&mut self, op: Op) {
        self.leader();
        self.ops.push(op);
    }

    /// Apply a source instruction's stack effect to the static height.
    fn bump(&mut self, pops: usize, pushes: usize) {
        self.height = self
            .height
            .checked_sub(pops)
            .expect("validated: operand stack underflow")
            + pushes;
        if self.height > self.block_max {
            self.block_max = self.height;
        }
    }

    fn new_branch(&mut self, height: u32, arity: u8) -> u32 {
        self.branches.push(BranchTarget {
            pc: u32::MAX,
            height,
            arity,
        });
        (self.branches.len() - 1) as u32
    }

    /// Resolve a relative branch depth to a branch-table index. Loop
    /// targets resolve immediately; forward targets are fixed up at `end`;
    /// function-level targets go to the return trampoline.
    fn branch_index(&mut self, depth: u32) -> u32 {
        let ci = self.ctrls.len() - 1 - depth as usize;
        if ci == 0 {
            let b = self.new_branch(0, self.ret_arity as u8);
            self.fn_level.push(b);
            return b;
        }
        let (height, arity) = (self.ctrls[ci].height, self.ctrls[ci].arity);
        match self.ctrls[ci].kind {
            CtrlKind::Loop { header } => {
                self.branches.push(BranchTarget {
                    pc: header,
                    height,
                    arity: 0,
                });
                (self.branches.len() - 1) as u32
            }
            _ => {
                let b = self.new_branch(height, arity);
                self.ctrls[ci].fixups.push(b);
                b
            }
        }
    }

    /// The trailing op of the current block, if any (fusion window).
    fn tail(&self) -> Option<Op> {
        if self.ops.len() > self.fuse_floor {
            self.ops.last().copied()
        } else {
            None
        }
    }

    /// The two trailing ops of the current block, if present.
    fn tail2(&self) -> Option<(Op, Op)> {
        let n = self.ops.len();
        if n >= self.fuse_floor + 2 {
            Some((self.ops[n - 2], self.ops[n - 1]))
        } else {
            None
        }
    }

    fn pop_tail(&mut self, n: usize) {
        self.ops.truncate(self.ops.len() - n);
    }

    /// Plain op: count, emit, apply stack effect.
    fn simple(&mut self, op: Op, pops: usize, pushes: usize) {
        self.count(1);
        self.emit(op);
        self.bump(pops, pushes);
    }

    fn lower(&mut self, instr: &Instr) {
        if !self.reachable {
            // Skip dead code, but keep the control-frame bookkeeping so
            // `else`/`end` can restore reachability.
            match instr {
                Instr::Block { ty, .. } | Instr::Loop { ty } | Instr::If { ty, .. } => {
                    self.ctrls.push(Ctrl {
                        kind: CtrlKind::Block,
                        height: self.height as u32,
                        arity: ty.arity() as u8,
                        fixups: Vec::new(),
                    });
                }
                Instr::Else { .. } => self.lower_else(),
                Instr::End => self.lower_end(),
                _ => {}
            }
            return;
        }
        match instr {
            Instr::Unreachable => {
                self.count(1);
                self.emit(Op::Unreachable);
                self.seal();
                self.reachable = false;
            }
            Instr::Nop => self.count(1),
            Instr::Block { ty, .. } => {
                self.count(1);
                self.ctrls.push(Ctrl {
                    kind: CtrlKind::Block,
                    height: self.height as u32,
                    arity: ty.arity() as u8,
                    fixups: Vec::new(),
                });
            }
            Instr::Loop { ty } => {
                // The loop header must start a fresh block even when the
                // current one is empty: its Meter is the back-edge target
                // and is re-charged every iteration (the reference
                // interpreter re-executes the Loop instruction too).
                self.seal();
                let header = self.leader();
                self.count(1);
                self.ctrls.push(Ctrl {
                    kind: CtrlKind::Loop { header },
                    height: self.height as u32,
                    arity: ty.arity() as u8,
                    fixups: Vec::new(),
                });
            }
            Instr::If { ty, .. } => self.lower_if(*ty),
            Instr::Else { .. } => self.lower_else(),
            Instr::End => self.lower_end(),
            Instr::Br { depth } => {
                self.count(1);
                let ci = self.ctrls.len() - 1 - *depth as usize;
                if ci == 0 {
                    // Branch to the function label: a return (same fuel as
                    // the reference path, which never runs the final End).
                    self.emit(Op::Return);
                } else {
                    let b = self.branch_index(*depth);
                    self.emit(Op::Br(b));
                }
                self.seal();
                self.reachable = false;
            }
            Instr::BrIf { depth } => self.lower_br_if(*depth),
            Instr::BrTable { targets, default } => {
                self.count(1);
                self.bump(1, 0); // selector
                let start = self.branches.len() as u32;
                for d in targets.iter() {
                    let _ = self.branch_index(*d);
                }
                let _ = self.branch_index(*default);
                self.emit(Op::BrTable {
                    start,
                    n: targets.len() as u32,
                });
                self.seal();
                self.reachable = false;
            }
            Instr::Return => {
                self.count(1);
                self.emit(Op::Return);
                self.seal();
                self.reachable = false;
            }
            Instr::Call { func } => {
                if *func >= self.n_imports && self.try_inline(*func - self.n_imports) {
                    return;
                }
                self.count(1);
                let ty = self
                    .module
                    .func_type(*func)
                    .expect("validated: call target");
                let (argc, retc) = (ty.params.len(), ty.results.len());
                if *func < self.n_imports {
                    let ret = match ty.results.first() {
                        None => 0,
                        Some(ValType::I32) => 1,
                        Some(ValType::I64) => 2,
                        Some(ValType::F32) => 3,
                        Some(ValType::F64) => 4,
                    };
                    self.emit(Op::CallHost {
                        f: *func,
                        argc: argc as u16,
                        ret,
                    });
                } else {
                    self.emit(Op::CallWasm(*func - self.n_imports));
                }
                self.bump(argc, retc);
            }
            Instr::CallIndirect { type_idx } => {
                self.count(1);
                let ty = &self.module.types[*type_idx as usize];
                self.emit(Op::CallIndirect(*type_idx));
                self.bump(ty.params.len() + 1, ty.results.len());
            }
            Instr::Drop => self.simple(Op::Drop, 1, 0),
            Instr::Select => self.simple(Op::Select, 3, 1),
            Instr::LocalGet(i) => {
                let i = self.local_offset + *i;
                self.count(1);
                if let (Some(Op::LocalGet(a)), true) = (self.tail(), i <= u16::MAX as u32) {
                    if a <= u16::MAX as u32 {
                        self.pop_tail(1);
                        self.emit(Op::LocalGet2 {
                            a: a as u16,
                            b: i as u16,
                        });
                        self.bump(0, 1);
                        return;
                    }
                }
                self.emit(Op::LocalGet(i));
                self.bump(0, 1);
            }
            Instr::LocalSet(i) => {
                self.count(1);
                self.emit_local_set(self.local_offset + *i);
            }
            Instr::LocalTee(i) => self.simple(Op::LocalTee(self.local_offset + *i), 1, 1),
            Instr::GlobalGet(i) => self.simple(Op::GlobalGet(*i), 0, 1),
            Instr::GlobalSet(i) => self.simple(Op::GlobalSet(*i), 1, 0),

            Instr::I32Load(m) => {
                self.lower_load(m.offset, Op::I32Load(m.offset), Some(LoadKind::I32))
            }
            Instr::I64Load(m) => {
                self.lower_load(m.offset, Op::I64Load(m.offset), Some(LoadKind::I64))
            }
            Instr::F32Load(m) => self.lower_load(m.offset, Op::F32Load(m.offset), None),
            Instr::F64Load(m) => {
                self.lower_load(m.offset, Op::F64Load(m.offset), Some(LoadKind::F64))
            }
            Instr::I32Load8S(m) => self.simple(Op::I32Load8S(m.offset), 1, 1),
            Instr::I32Load8U(m) => {
                self.lower_load(m.offset, Op::I32Load8U(m.offset), Some(LoadKind::I32U8))
            }
            Instr::I32Load16S(m) => self.simple(Op::I32Load16S(m.offset), 1, 1),
            Instr::I32Load16U(m) => self.simple(Op::I32Load16U(m.offset), 1, 1),
            Instr::I64Load8S(m) => self.simple(Op::I64Load8S(m.offset), 1, 1),
            Instr::I64Load8U(m) => self.simple(Op::I64Load8U(m.offset), 1, 1),
            Instr::I64Load16S(m) => self.simple(Op::I64Load16S(m.offset), 1, 1),
            Instr::I64Load16U(m) => self.simple(Op::I64Load16U(m.offset), 1, 1),
            Instr::I64Load32S(m) => self.simple(Op::I64Load32S(m.offset), 1, 1),
            Instr::I64Load32U(m) => self.simple(Op::I64Load32U(m.offset), 1, 1),
            Instr::I32Store(m) => self.simple(Op::I32Store(m.offset), 2, 0),
            Instr::I64Store(m) => self.simple(Op::I64Store(m.offset), 2, 0),
            Instr::F32Store(m) => self.simple(Op::F32Store(m.offset), 2, 0),
            Instr::F64Store(m) => self.simple(Op::F64Store(m.offset), 2, 0),
            Instr::I32Store8(m) => self.simple(Op::I32Store8(m.offset), 2, 0),
            Instr::I32Store16(m) => self.simple(Op::I32Store16(m.offset), 2, 0),
            Instr::I64Store8(m) => self.simple(Op::I64Store8(m.offset), 2, 0),
            Instr::I64Store16(m) => self.simple(Op::I64Store16(m.offset), 2, 0),
            Instr::I64Store32(m) => self.simple(Op::I64Store32(m.offset), 2, 0),
            Instr::MemorySize => self.simple(Op::MemorySize, 0, 1),
            Instr::MemoryGrow => self.simple(Op::MemoryGrow, 1, 1),
            Instr::MemoryCopy => self.simple(Op::MemoryCopy, 3, 0),
            Instr::MemoryFill => self.simple(Op::MemoryFill, 3, 0),

            Instr::I32Const(v) => self.simple(Op::I32Const(*v), 0, 1),
            Instr::I64Const(v) => self.simple(Op::I64Const(*v), 0, 1),
            Instr::F32Const(v) => self.simple(Op::F32Const(*v), 0, 1),
            Instr::F64Const(v) => self.simple(Op::F64Const(*v), 0, 1),

            Instr::I32Eqz => self.lower_i32_eqz(),
            Instr::I32DivS => self.simple(Op::I32DivS, 2, 1),
            Instr::I32DivU => self.simple(Op::I32DivU, 2, 1),
            Instr::I32RemS => self.simple(Op::I32RemS, 2, 1),
            Instr::I32RemU => self.simple(Op::I32RemU, 2, 1),
            Instr::I32Clz => self.simple(Op::I32Clz, 1, 1),
            Instr::I32Ctz => self.simple(Op::I32Ctz, 1, 1),
            Instr::I32Popcnt => self.simple(Op::I32Popcnt, 1, 1),

            Instr::I64Eqz => self.simple(Op::I64Eqz, 1, 1),
            Instr::I64Eq => self.simple(Op::I64Eq, 2, 1),
            Instr::I64Ne => self.simple(Op::I64Ne, 2, 1),
            Instr::I64LtS => self.simple(Op::I64LtS, 2, 1),
            Instr::I64LtU => self.simple(Op::I64LtU, 2, 1),
            Instr::I64GtS => self.simple(Op::I64GtS, 2, 1),
            Instr::I64GtU => self.simple(Op::I64GtU, 2, 1),
            Instr::I64LeS => self.simple(Op::I64LeS, 2, 1),
            Instr::I64LeU => self.simple(Op::I64LeU, 2, 1),
            Instr::I64GeS => self.simple(Op::I64GeS, 2, 1),
            Instr::I64GeU => self.simple(Op::I64GeU, 2, 1),
            Instr::I64Clz => self.simple(Op::I64Clz, 1, 1),
            Instr::I64Ctz => self.simple(Op::I64Ctz, 1, 1),
            Instr::I64Popcnt => self.simple(Op::I64Popcnt, 1, 1),
            Instr::I64Add => self.simple(Op::I64Add, 2, 1),
            Instr::I64Sub => self.simple(Op::I64Sub, 2, 1),
            Instr::I64Mul => self.simple(Op::I64Mul, 2, 1),
            Instr::I64DivS => self.simple(Op::I64DivS, 2, 1),
            Instr::I64DivU => self.simple(Op::I64DivU, 2, 1),
            Instr::I64RemS => self.simple(Op::I64RemS, 2, 1),
            Instr::I64RemU => self.simple(Op::I64RemU, 2, 1),
            Instr::I64And => self.simple(Op::I64And, 2, 1),
            Instr::I64Or => self.simple(Op::I64Or, 2, 1),
            Instr::I64Xor => self.simple(Op::I64Xor, 2, 1),
            Instr::I64Shl => self.simple(Op::I64Shl, 2, 1),
            Instr::I64ShrS => self.simple(Op::I64ShrS, 2, 1),
            Instr::I64ShrU => self.simple(Op::I64ShrU, 2, 1),
            Instr::I64Rotl => self.simple(Op::I64Rotl, 2, 1),
            Instr::I64Rotr => self.simple(Op::I64Rotr, 2, 1),

            Instr::F32Eq => self.simple(Op::F32Eq, 2, 1),
            Instr::F32Ne => self.simple(Op::F32Ne, 2, 1),
            Instr::F32Lt => self.simple(Op::F32Lt, 2, 1),
            Instr::F32Gt => self.simple(Op::F32Gt, 2, 1),
            Instr::F32Le => self.simple(Op::F32Le, 2, 1),
            Instr::F32Ge => self.simple(Op::F32Ge, 2, 1),
            Instr::F64Eq => self.simple(Op::F64Eq, 2, 1),
            Instr::F64Ne => self.simple(Op::F64Ne, 2, 1),
            Instr::F64Lt => self.simple(Op::F64Lt, 2, 1),
            Instr::F64Gt => self.simple(Op::F64Gt, 2, 1),
            Instr::F64Le => self.simple(Op::F64Le, 2, 1),
            Instr::F64Ge => self.simple(Op::F64Ge, 2, 1),

            Instr::F32Abs => self.simple(Op::F32Abs, 1, 1),
            Instr::F32Neg => self.simple(Op::F32Neg, 1, 1),
            Instr::F32Ceil => self.simple(Op::F32Ceil, 1, 1),
            Instr::F32Floor => self.simple(Op::F32Floor, 1, 1),
            Instr::F32Trunc => self.simple(Op::F32Trunc, 1, 1),
            Instr::F32Nearest => self.simple(Op::F32Nearest, 1, 1),
            Instr::F32Sqrt => self.simple(Op::F32Sqrt, 1, 1),
            Instr::F32Add => self.simple(Op::F32Add, 2, 1),
            Instr::F32Sub => self.simple(Op::F32Sub, 2, 1),
            Instr::F32Mul => self.simple(Op::F32Mul, 2, 1),
            Instr::F32Div => self.simple(Op::F32Div, 2, 1),
            Instr::F32Min => self.simple(Op::F32Min, 2, 1),
            Instr::F32Max => self.simple(Op::F32Max, 2, 1),
            Instr::F32Copysign => self.simple(Op::F32Copysign, 2, 1),
            Instr::F64Abs => self.simple(Op::F64Abs, 1, 1),
            Instr::F64Neg => self.simple(Op::F64Neg, 1, 1),
            Instr::F64Ceil => self.simple(Op::F64Ceil, 1, 1),
            Instr::F64Floor => self.simple(Op::F64Floor, 1, 1),
            Instr::F64Trunc => self.simple(Op::F64Trunc, 1, 1),
            Instr::F64Nearest => self.simple(Op::F64Nearest, 1, 1),
            Instr::F64Sqrt => self.simple(Op::F64Sqrt, 1, 1),
            Instr::F64Add => self.simple(Op::F64Add, 2, 1),
            Instr::F64Sub => self.simple(Op::F64Sub, 2, 1),
            Instr::F64Mul => self.simple(Op::F64Mul, 2, 1),
            Instr::F64Div => self.simple(Op::F64Div, 2, 1),
            Instr::F64Min => self.simple(Op::F64Min, 2, 1),
            Instr::F64Max => self.simple(Op::F64Max, 2, 1),
            Instr::F64Copysign => self.simple(Op::F64Copysign, 2, 1),

            Instr::I32WrapI64 => self.simple(Op::I32WrapI64, 1, 1),
            Instr::I32TruncF32S => self.simple(Op::I32TruncF32S, 1, 1),
            Instr::I32TruncF32U => self.simple(Op::I32TruncF32U, 1, 1),
            Instr::I32TruncF64S => self.simple(Op::I32TruncF64S, 1, 1),
            Instr::I32TruncF64U => self.simple(Op::I32TruncF64U, 1, 1),
            Instr::I64ExtendI32S => self.simple(Op::I64ExtendI32S, 1, 1),
            Instr::I64ExtendI32U => self.simple(Op::I64ExtendI32U, 1, 1),
            Instr::I64TruncF32S => self.simple(Op::I64TruncF32S, 1, 1),
            Instr::I64TruncF32U => self.simple(Op::I64TruncF32U, 1, 1),
            Instr::I64TruncF64S => self.simple(Op::I64TruncF64S, 1, 1),
            Instr::I64TruncF64U => self.simple(Op::I64TruncF64U, 1, 1),
            Instr::F32ConvertI32S => self.simple(Op::F32ConvertI32S, 1, 1),
            Instr::F32ConvertI32U => self.simple(Op::F32ConvertI32U, 1, 1),
            Instr::F32ConvertI64S => self.simple(Op::F32ConvertI64S, 1, 1),
            Instr::F32ConvertI64U => self.simple(Op::F32ConvertI64U, 1, 1),
            Instr::F32DemoteF64 => self.simple(Op::F32DemoteF64, 1, 1),
            Instr::F64ConvertI32S => self.simple(Op::F64ConvertI32S, 1, 1),
            Instr::F64ConvertI32U => self.simple(Op::F64ConvertI32U, 1, 1),
            Instr::F64ConvertI64S => self.simple(Op::F64ConvertI64S, 1, 1),
            Instr::F64ConvertI64U => self.simple(Op::F64ConvertI64U, 1, 1),
            Instr::F64PromoteF32 => self.simple(Op::F64PromoteF32, 1, 1),
            Instr::I32ReinterpretF32 => self.simple(Op::I32ReinterpretF32, 1, 1),
            Instr::I64ReinterpretF64 => self.simple(Op::I64ReinterpretF64, 1, 1),
            Instr::F32ReinterpretI32 => self.simple(Op::F32ReinterpretI32, 1, 1),
            Instr::F64ReinterpretI64 => self.simple(Op::F64ReinterpretI64, 1, 1),
            Instr::I32Extend8S => self.simple(Op::I32Extend8S, 1, 1),
            Instr::I32Extend16S => self.simple(Op::I32Extend16S, 1, 1),
            Instr::I64Extend8S => self.simple(Op::I64Extend8S, 1, 1),
            Instr::I64Extend16S => self.simple(Op::I64Extend16S, 1, 1),
            Instr::I64Extend32S => self.simple(Op::I64Extend32S, 1, 1),
            Instr::I32TruncSatF32S => self.simple(Op::I32TruncSatF32S, 1, 1),
            Instr::I32TruncSatF32U => self.simple(Op::I32TruncSatF32U, 1, 1),
            Instr::I32TruncSatF64S => self.simple(Op::I32TruncSatF64S, 1, 1),
            Instr::I32TruncSatF64U => self.simple(Op::I32TruncSatF64U, 1, 1),
            Instr::I64TruncSatF32S => self.simple(Op::I64TruncSatF32S, 1, 1),
            Instr::I64TruncSatF32U => self.simple(Op::I64TruncSatF32U, 1, 1),
            Instr::I64TruncSatF64S => self.simple(Op::I64TruncSatF64S, 1, 1),
            Instr::I64TruncSatF64U => self.simple(Op::I64TruncSatF64U, 1, 1),

            other => {
                if let Some(op) = I32Op::from_instr(other) {
                    self.lower_i32_bin(op);
                } else {
                    unreachable!("unhandled instruction in lowering: {other:?}");
                }
            }
        }
    }

    /// Inline a straight-line leaf callee (no control flow, no calls) into
    /// the current block. The callee's params and locals get fresh caller
    /// slots; its body is lowered in place with the local indices remapped,
    /// so all superinstruction fusion applies across the call boundary.
    ///
    /// Fuel parity with the reference interpreter is exact: the `call`
    /// charges 1, every body instruction charges 1 through the normal
    /// lowering, and the callee's exit (explicit `return` or fallthrough
    /// `end` — exactly one executes) charges 1. The only observable
    /// difference is that an inlined call no longer counts toward the
    /// call-depth limit, which is implementation-defined.
    fn try_inline(&mut self, callee: u32) -> bool {
        if self.inline_stack.len() >= INLINE_MAX_DEPTH || self.inline_stack.contains(&callee) {
            return false;
        }
        let body = &self.module.funcs[callee as usize];
        let code = &body.code;
        if code.len() > INLINE_MAX_INSTRS {
            return false;
        }
        let Some((Instr::End, rest)) = code.split_last() else {
            return false;
        };
        // A trailing explicit `return` is equivalent to fallthrough, and
        // dead `unreachable` padding behind it never executes (PlugC emits
        // `return; unreachable; end` for typed bodies).
        let mut trimmed = rest;
        while let Some((Instr::Unreachable, r)) = trimmed.split_last() {
            trimmed = r;
        }
        let rest = if trimmed.len() < rest.len() {
            match trimmed.split_last() {
                Some((Instr::Return, r)) => r,
                _ => return false,
            }
        } else {
            match rest.split_last() {
                Some((Instr::Return, r)) => r,
                _ => rest,
            }
        };
        if !rest.iter().all(is_straight_line) {
            return false;
        }
        let ty = &self.module.types[body.type_idx as usize];

        // The call instruction itself.
        self.count(1);

        // Fresh slots for the callee frame: params then declared locals.
        let base = self.next_local;
        self.next_local += (ty.params.len() + body.locals.len()) as u32;
        self.extra_locals
            .extend(ty.params.iter().map(|t| Value::zero(*t)));
        self.extra_locals
            .extend(body.locals.iter().map(|t| Value::zero(*t)));

        // Drain the arguments into the param slots (unmetered glue: the
        // reference interpreter moves them during frame setup).
        // `emit_local_set` applies the pop to the static height itself.
        for i in (0..ty.params.len()).rev() {
            self.emit_local_set(base + i as u32);
        }

        // The body, with locals remapped into the fresh slots. Nested
        // direct calls lower recursively under the depth guard.
        let saved = self.local_offset;
        self.local_offset = base;
        self.inline_stack.push(callee);
        for instr in rest {
            self.lower(instr);
        }
        self.inline_stack.pop();
        self.local_offset = saved;

        // The callee's terminator (return or function-level end).
        self.count(1);
        true
    }

    /// i32 binop/compare with operand fusion against the block tail.
    fn lower_i32_bin(&mut self, op: I32Op) {
        self.count(1);
        if let Some((a, b)) = self.tail2() {
            match (a, b) {
                (Op::LocalGet(l), Op::I32Const(k)) if l <= u16::MAX as u32 => {
                    self.pop_tail(2);
                    self.emit(Op::I32BinLC { op, a: l as u16, k });
                    self.bump(2, 1);
                    return;
                }
                (Op::I32Const(k), Op::LocalGet(l)) if op.commutative() && l <= u16::MAX as u32 => {
                    self.pop_tail(2);
                    self.emit(Op::I32BinLC { op, a: l as u16, k });
                    self.bump(2, 1);
                    return;
                }
                _ => {}
            }
        }
        match self.tail() {
            Some(Op::I32Const(k)) => {
                self.pop_tail(1);
                self.emit(Op::I32BinSC { op, k });
            }
            Some(Op::LocalGet(l)) if l <= u16::MAX as u32 => {
                self.pop_tail(1);
                self.emit(Op::I32BinSL { op, b: l as u16 });
            }
            Some(Op::LocalGet2 { a, b }) => {
                self.pop_tail(1);
                self.emit(Op::I32BinLL { op, a, b });
            }
            _ => self.emit(Op::I32Bin(op)),
        }
        self.bump(2, 1);
    }

    /// `local.set` with producer fusion: when the block tail is an op that
    /// only pushes the value being stored, rewrite the pair into a
    /// register-style write-back that never touches the operand stack.
    /// Does not charge fuel (the caller decides whether the set is a
    /// source instruction or inline-call glue).
    fn emit_local_set(&mut self, i: u32) {
        self.leader();
        if i <= u16::MAX as u32 {
            let dst = i as u16;
            let fused = match self.tail() {
                Some(Op::I32Const(k)) => Some(Op::LocalSetC { dst, k }),
                Some(Op::LocalGet(src)) if src <= u16::MAX as u32 => Some(Op::LocalCopy {
                    src: src as u16,
                    dst,
                }),
                Some(Op::I32BinLL { op, a, b }) => Some(Op::I32BinLLSet { op, a, b, dst }),
                Some(Op::I32BinLC { op, a, k }) => Some(Op::I32BinLCSet { op, a, k, dst }),
                Some(Op::I32BinSL { op, b }) => Some(Op::I32BinSLSet { op, b, dst }),
                Some(Op::I32BinSC { op, k }) => Some(Op::I32BinSCSet { op, k, dst }),
                Some(Op::I32Load(off)) => Some(Op::I32LoadSet { off, dst }),
                Some(Op::I32LoadL { l, off }) => Some(Op::I32LoadLSet { l, off, dst }),
                _ => None,
            };
            if let Some(op) = fused {
                self.pop_tail(1);
                self.emit(op);
                self.bump(1, 0);
                return;
            }
        }
        self.emit(Op::LocalSet(i));
        self.bump(1, 0);
    }

    /// `i32.eqz` after an integer compare rewrites the compare in place.
    fn lower_i32_eqz(&mut self) {
        self.count(1);
        let rewritten = match self.tail() {
            Some(Op::I32Bin(c)) => c.negate().map(Op::I32Bin),
            Some(Op::I32BinLL { op: c, a, b }) => c.negate().map(|n| Op::I32BinLL { op: n, a, b }),
            Some(Op::I32BinSL { op: c, b }) => c.negate().map(|n| Op::I32BinSL { op: n, b }),
            Some(Op::I32BinSC { op: c, k }) => c.negate().map(|n| Op::I32BinSC { op: n, k }),
            Some(Op::I32BinLC { op: c, a, k }) => c.negate().map(|n| Op::I32BinLC { op: n, a, k }),
            _ => None,
        };
        if let Some(op) = rewritten {
            *self.ops.last_mut().expect("tail exists") = op;
        } else {
            self.emit(Op::I32Eqz);
        }
        self.bump(1, 1);
    }

    /// `br_if` with condition fusion (branch when the condition holds).
    fn lower_br_if(&mut self, depth: u32) {
        self.count(1);
        self.bump(1, 0); // condition
        let br = self.branch_index(depth);
        match self.tail() {
            Some(Op::I32Eqz) => {
                self.pop_tail(1);
                self.emit(Op::BrIfZ(br));
            }
            Some(Op::I32Bin(c)) if c.negate().is_some() => {
                self.pop_tail(1);
                self.emit(Op::BrIfCmp { op: c, br });
            }
            Some(Op::I32BinLL { op: c, a, b }) if c.negate().is_some() => {
                self.pop_tail(1);
                self.emit(Op::BrIfLL { op: c, a, b, br });
            }
            _ => self.emit(Op::BrIf(br)),
        }
        self.seal();
    }

    /// `if`: the false edge is a branch to the else arm (or the end).
    fn lower_if(&mut self, ty: BlockType) {
        self.count(1);
        self.bump(1, 0); // condition
        let br = self.new_branch(self.height as u32, 0);
        // Fuse the condition; the false edge fires when it does NOT hold.
        match self.tail() {
            Some(Op::I32Eqz) => {
                self.pop_tail(1);
                self.emit(Op::BrIf(br));
            }
            Some(Op::I32Bin(c)) if c.negate().is_some() => {
                self.pop_tail(1);
                self.emit(Op::BrIfCmp {
                    op: c.negate().expect("compare"),
                    br,
                });
            }
            Some(Op::I32BinLL { op: c, a, b }) if c.negate().is_some() => {
                self.pop_tail(1);
                self.emit(Op::BrIfLL {
                    op: c.negate().expect("compare"),
                    a,
                    b,
                    br,
                });
            }
            _ => self.emit(Op::BrIfZ(br)),
        }
        self.seal();
        self.ctrls.push(Ctrl {
            kind: CtrlKind::If { else_br: br },
            height: self.height as u32,
            arity: ty.arity() as u8,
            fixups: Vec::new(),
        });
    }

    fn lower_else(&mut self) {
        let fi = self.ctrls.len() - 1;
        // Then-arm fallthrough jumps over the else arm; the Else
        // instruction is charged on this path only, like the reference
        // interpreter which executes Else only on then-fallthrough.
        if self.reachable {
            self.count(1);
            let (h, a) = (self.ctrls[fi].height, self.ctrls[fi].arity);
            let b = self.new_branch(h, a);
            self.emit(Op::Br(b));
            self.seal();
            self.ctrls[fi].fixups.push(b);
        }
        let f = &mut self.ctrls[fi];
        match f.kind {
            CtrlKind::If { else_br } => {
                f.kind = CtrlKind::Block;
                let h = f.height;
                // An emitted If is always reachable at entry.
                self.reachable = true;
                self.height = h as usize;
                let lp = self.leader();
                self.branches[else_br as usize].pc = lp;
            }
            _ => {
                // The whole if/else sat in dead code.
                self.reachable = false;
            }
        }
    }

    fn lower_end(&mut self) {
        let f = self.ctrls.pop().expect("validated: end matches a frame");
        if self.ctrls.is_empty() {
            // Function-level End: executes (and is charged) only on
            // fallthrough, then returns.
            if self.reachable {
                self.height = self.ret_arity as usize;
                self.count(1);
                self.emit(Op::Return);
                self.seal();
            }
            self.reachable = false;
            return;
        }
        match f.kind {
            CtrlKind::Loop { .. } => {
                // Nothing branches forward to a loop's End; on fallthrough
                // it simply pops (and costs one instruction).
                if self.reachable {
                    self.height = f.height as usize + f.arity as usize;
                    self.count(1);
                }
            }
            _ => {
                let mut fixups = f.fixups;
                if let CtrlKind::If { else_br } = f.kind {
                    // Bare if: the false edge lands at the End.
                    fixups.push(else_br);
                }
                if self.reachable || !fixups.is_empty() {
                    // The end leader is charged the End instruction and is
                    // reached by both fallthrough and every branch here —
                    // exactly the paths on which the reference interpreter
                    // executes this End.
                    self.seal();
                    self.height = f.height as usize + f.arity as usize;
                    let lp = self.leader();
                    self.count(1);
                    for bi in fixups {
                        self.branches[bi as usize].pc = lp;
                    }
                    self.reachable = true;
                } else {
                    self.reachable = false;
                }
            }
        }
    }

    /// Loads that fuse with a trailing `local.get`.
    fn lower_load(&mut self, off: u32, plain: Op, fused: Option<LoadKind>) {
        self.count(1);
        if let Some(kind) = fused {
            if let Some(Op::LocalGet(l)) = self.tail() {
                if l <= u16::MAX as u32 {
                    self.pop_tail(1);
                    let l = l as u16;
                    self.emit(match kind {
                        LoadKind::I32 => Op::I32LoadL { l, off },
                        LoadKind::I64 => Op::I64LoadL { l, off },
                        LoadKind::F64 => Op::F64LoadL { l, off },
                        LoadKind::I32U8 => Op::I32Load8UL { l, off },
                    });
                    self.bump(1, 1);
                    return;
                }
            }
        }
        self.emit(plain);
        self.bump(1, 1);
    }
}

/// Which fused load op to emit for a `local.get`+load pair.
#[derive(Clone, Copy)]
enum LoadKind {
    I32,
    I64,
    F64,
    I32U8,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType;

    fn compile_first(m: &Module) -> CompiledFunc {
        compile_func(m, 0)
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ModuleBuilder::new();
        let sig = b.func_type(&[ValType::I32], &[ValType::I32]);
        b.begin_func(sig);
        b.code().local_get(0).i32_const(2).i32_mul();
        b.end_func().unwrap();
        let m = b.finish().expect("valid");
        let cf = compile_first(&m);
        // Meter + fused mul + return.
        assert!(
            matches!(cf.ops[0], Op::Meter { cost: 4, .. }),
            "ops: {:?}",
            cf.ops
        );
        assert!(matches!(
            cf.ops[1],
            Op::I32BinLC {
                op: I32Op::Mul,
                a: 0,
                k: 2
            }
        ));
        assert!(matches!(cf.ops[2], Op::Return));
        assert_eq!(cf.ops.len(), 3);
    }

    #[test]
    fn while_loop_condition_fuses_to_brif_ll() {
        // while (i < n) { i = i + 1 }   as PlugC emits it:
        // block { loop { i<n; eqz; br_if 1; body; br 0 } }
        let mut b = ModuleBuilder::new();
        let sig = b.func_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        b.begin_func(sig);
        b.code()
            .block(crate::types::BlockType::Empty)
            .loop_(crate::types::BlockType::Empty)
            .local_get(0)
            .local_get(1)
            .i32_lt_s()
            .i32_eqz()
            .br_if(1)
            .local_get(0)
            .i32_const(1)
            .i32_add()
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(0);
        b.end_func().unwrap();
        let m = b.finish().expect("valid");
        let cf = compile_first(&m);
        // The loop condition (get,get,lt,eqz,br_if) must be ONE op: a
        // BrIfLL with the negated compare.
        assert!(
            cf.ops.iter().any(|op| matches!(
                op,
                Op::BrIfLL {
                    op: I32Op::GeS,
                    a: 0,
                    b: 1,
                    ..
                }
            )),
            "ops: {:?}",
            cf.ops
        );
        // No label-stack ops exist; the back edge targets a Meter.
        let back = cf
            .branches
            .iter()
            .find(|bt| matches!(cf.ops[bt.pc as usize], Op::Meter { .. }))
            .expect("loop back edge lands on its header meter");
        assert_eq!(back.arity, 0);
    }

    #[test]
    fn br_table_targets_are_interned() {
        let mut b = ModuleBuilder::new();
        let sig = b.func_type(&[ValType::I32], &[ValType::I32]);
        b.begin_func(sig);
        b.code()
            .block(crate::types::BlockType::Empty)
            .block(crate::types::BlockType::Empty)
            .local_get(0)
            .br_table(&[0, 1], 0)
            .end()
            .end()
            .i32_const(7);
        b.end_func().unwrap();
        let m = b.finish().expect("valid");
        let cf = compile_first(&m);
        let (start, n) = cf
            .ops
            .iter()
            .find_map(|op| match op {
                Op::BrTable { start, n } => Some((*start, *n)),
                _ => None,
            })
            .expect("br_table lowered");
        assert_eq!(n, 2);
        // Two targets + the default all resolved in the side table.
        for i in 0..=n {
            assert_ne!(cf.branches[(start + i) as usize].pc, u32::MAX);
        }
    }

    #[test]
    fn fuel_cost_counts_source_instrs() {
        // const+const+add+drop = 4 source instructions in one block (plus
        // the function-level End), even though fusion emits fewer ops.
        let mut b = ModuleBuilder::new();
        let sig = b.func_type(&[], &[]);
        b.begin_func(sig);
        b.code().i32_const(1).i32_const(2).i32_add().drop();
        b.end_func().unwrap();
        let m = b.finish().expect("valid");
        let cf = compile_first(&m);
        let total: u32 = cf
            .ops
            .iter()
            .map(|op| match op {
                Op::Meter { cost, .. } => *cost,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn op_enum_stays_small() {
        assert!(
            std::mem::size_of::<Op>() <= 16,
            "Op grew: {}",
            std::mem::size_of::<Op>()
        );
    }
}
