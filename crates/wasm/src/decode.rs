//! WebAssembly binary-format (`.wasm`) decoder.
//!
//! Produces a [`Module`]; structural errors (bad magic, truncated sections,
//! unknown opcodes, malformed LEB128) are reported as [`DecodeError`] with a
//! byte offset. Type errors are left to [`crate::validate`].

use crate::instr::{fixup_block_targets, FixupError, Instr, MemArg};
use crate::leb128;
use crate::module::*;
use crate::types::*;

/// Decoder error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub kind: DecodeErrorKind,
}

/// The specific decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// Missing/incorrect `\0asm` magic.
    BadMagic,
    /// Version word is not 1.
    BadVersion(u32),
    /// Input ended prematurely.
    UnexpectedEof,
    /// Malformed LEB128 integer.
    Leb(leb128::LebError),
    /// Unknown or unsupported section id.
    BadSection(u8),
    /// Sections out of order or repeated.
    SectionOrder(u8),
    /// Section content length mismatch.
    SectionSize,
    /// Unknown value type byte.
    BadValType(u8),
    /// Unknown element/reference type byte.
    BadRefType(u8),
    /// Unknown import/export kind byte.
    BadEntityKind(u8),
    /// Unknown opcode.
    BadOpcode(u8),
    /// Unknown 0xFC-prefixed opcode.
    BadPrefixedOpcode(u32),
    /// Malformed block type immediate.
    BadBlockType(i64),
    /// Malformed mutability flag.
    BadMutability(u8),
    /// Function and code section lengths disagree.
    FuncCodeMismatch { funcs: usize, bodies: usize },
    /// More than one table/memory declared.
    MultipleTablesOrMemories,
    /// Unsupported import kind (memory/table/global imports).
    UnsupportedImport,
    /// Constant expression is not a single `t.const` followed by `end`.
    BadConstExpr,
    /// Structured control instructions do not nest properly.
    Fixup(FixupError),
    /// Invalid UTF-8 in a name.
    BadUtf8,
    /// Passive or multi-table segments (unsupported).
    UnsupportedSegment,
    /// Non-zero memory/table index immediate.
    NonZeroIndex,
    /// Too many locals declared (implementation limit).
    TooManyLocals,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at offset {}: {:?}", self.offset, self.kind)
    }
}

impl std::error::Error for DecodeError {}

/// Implementation limit on declared locals per function (spec allows more;
/// this bounds interpreter frame allocation).
pub const MAX_LOCALS: usize = 50_000;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn err(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError {
            offset: self.pos,
            kind,
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError {
            offset: self.pos,
            kind: DecodeErrorKind::UnexpectedEof,
        })?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err(DecodeErrorKind::UnexpectedEof));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let (v, n) = leb128::read_unsigned(&self.buf[self.pos..], 32)
            .map_err(|e| self.err(DecodeErrorKind::Leb(e)))?;
        self.pos += n;
        Ok(v as u32)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let (v, n) = leb128::read_signed(&self.buf[self.pos..], 32)
            .map_err(|e| self.err(DecodeErrorKind::Leb(e)))?;
        self.pos += n;
        Ok(v as i32)
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let (v, n) = leb128::read_signed(&self.buf[self.pos..], 64)
            .map_err(|e| self.err(DecodeErrorKind::Leb(e)))?;
        self.pos += n;
        Ok(v)
    }

    fn s33(&mut self) -> Result<i64, DecodeError> {
        let (v, n) = leb128::read_signed(&self.buf[self.pos..], 33)
            .map_err(|e| self.err(DecodeErrorKind::Leb(e)))?;
        self.pos += n;
        Ok(v)
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let off = self.pos;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError {
            offset: off,
            kind: DecodeErrorKind::BadUtf8,
        })
    }

    fn valtype(&mut self) -> Result<ValType, DecodeError> {
        let off = self.pos;
        let b = self.byte()?;
        ValType::from_byte(b).ok_or(DecodeError {
            offset: off,
            kind: DecodeErrorKind::BadValType(b),
        })
    }

    fn limits(&mut self) -> Result<Limits, DecodeError> {
        let flag = self.byte()?;
        let min = self.u32()?;
        let max = match flag {
            0x00 => None,
            0x01 => Some(self.u32()?),
            other => return Err(self.err(DecodeErrorKind::BadEntityKind(other))),
        };
        Ok(Limits { min, max })
    }

    fn blocktype(&mut self) -> Result<BlockType, DecodeError> {
        let off = self.pos;
        let v = self.s33()?;
        match v {
            -64 => Ok(BlockType::Empty),              // 0x40
            -1 => Ok(BlockType::Value(ValType::I32)), // 0x7f
            -2 => Ok(BlockType::Value(ValType::I64)), // 0x7e
            -3 => Ok(BlockType::Value(ValType::F32)), // 0x7d
            -4 => Ok(BlockType::Value(ValType::F64)), // 0x7c
            other => Err(DecodeError {
                offset: off,
                kind: DecodeErrorKind::BadBlockType(other),
            }),
        }
    }

    fn memarg(&mut self) -> Result<MemArg, DecodeError> {
        let align = self.u32()?;
        let offset = self.u32()?;
        Ok(MemArg { align, offset })
    }

    fn const_expr(&mut self) -> Result<ConstExpr, DecodeError> {
        let op = self.byte()?;
        let expr = match op {
            0x41 => ConstExpr::I32(self.i32()?),
            0x42 => ConstExpr::I64(self.i64()?),
            0x43 => ConstExpr::F32(self.f32()?),
            0x44 => ConstExpr::F64(self.f64()?),
            _ => return Err(self.err(DecodeErrorKind::BadConstExpr)),
        };
        let end = self.byte()?;
        if end != 0x0b {
            return Err(self.err(DecodeErrorKind::BadConstExpr));
        }
        Ok(expr)
    }
}

/// Decode a complete binary module.
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4).map_err(|_| r.err(DecodeErrorKind::BadMagic))? != b"\0asm" {
        return Err(DecodeError {
            offset: 0,
            kind: DecodeErrorKind::BadMagic,
        });
    }
    let ver = r.bytes(4)?;
    let version = u32::from_le_bytes([ver[0], ver[1], ver[2], ver[3]]);
    if version != 1 {
        return Err(DecodeError {
            offset: 4,
            kind: DecodeErrorKind::BadVersion(version),
        });
    }

    let mut module = Module::default();
    let mut func_type_indices: Vec<u32> = Vec::new();
    let mut last_section: i8 = -1;

    while r.remaining() > 0 {
        let sec_off = r.pos;
        let id = r.byte()?;
        let size = r.u32()? as usize;
        if r.remaining() < size {
            return Err(DecodeError {
                offset: sec_off,
                kind: DecodeErrorKind::SectionSize,
            });
        }
        let end_pos = r.pos + size;

        if id == 0 {
            // Custom section: skip.
            r.pos = end_pos;
            continue;
        }
        if id > 11 {
            return Err(DecodeError {
                offset: sec_off,
                kind: DecodeErrorKind::BadSection(id),
            });
        }
        if (id as i8) <= last_section {
            return Err(DecodeError {
                offset: sec_off,
                kind: DecodeErrorKind::SectionOrder(id),
            });
        }
        last_section = id as i8;

        match id {
            1 => decode_type_section(&mut r, &mut module)?,
            2 => decode_import_section(&mut r, &mut module)?,
            3 => {
                let count = r.u32()?;
                for _ in 0..count {
                    func_type_indices.push(r.u32()?);
                }
            }
            4 => {
                let count = r.u32()?;
                if count > 1 {
                    return Err(r.err(DecodeErrorKind::MultipleTablesOrMemories));
                }
                if count == 1 {
                    let off = r.pos;
                    let reftype = r.byte()?;
                    if reftype != 0x70 {
                        return Err(DecodeError {
                            offset: off,
                            kind: DecodeErrorKind::BadRefType(reftype),
                        });
                    }
                    module.table = Some(r.limits()?);
                }
            }
            5 => {
                let count = r.u32()?;
                if count > 1 {
                    return Err(r.err(DecodeErrorKind::MultipleTablesOrMemories));
                }
                if count == 1 {
                    module.memory = Some(r.limits()?);
                }
            }
            6 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let ty = r.valtype()?;
                    let mut_off = r.pos;
                    let mutability = match r.byte()? {
                        0x00 => Mutability::Const,
                        0x01 => Mutability::Var,
                        b => {
                            return Err(DecodeError {
                                offset: mut_off,
                                kind: DecodeErrorKind::BadMutability(b),
                            })
                        }
                    };
                    let init = r.const_expr()?;
                    module.globals.push(Global {
                        ty: GlobalType { ty, mutability },
                        init,
                    });
                }
            }
            7 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let name = r.name()?;
                    let kind_off = r.pos;
                    let kind = r.byte()?;
                    let idx = r.u32()?;
                    let kind = match kind {
                        0x00 => ExportKind::Func(idx),
                        0x01 => ExportKind::Table,
                        0x02 => ExportKind::Memory,
                        0x03 => ExportKind::Global(idx),
                        b => {
                            return Err(DecodeError {
                                offset: kind_off,
                                kind: DecodeErrorKind::BadEntityKind(b),
                            })
                        }
                    };
                    module.exports.push(Export { name, kind });
                }
            }
            8 => {
                module.start = Some(r.u32()?);
            }
            9 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let flags = r.u32()?;
                    if flags != 0 {
                        return Err(r.err(DecodeErrorKind::UnsupportedSegment));
                    }
                    let offset = r.const_expr()?;
                    let n = r.u32()?;
                    let mut funcs = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        funcs.push(r.u32()?);
                    }
                    module.elems.push(ElemSegment { offset, funcs });
                }
            }
            10 => decode_code_section(&mut r, &mut module, &func_type_indices)?,
            11 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let flags = r.u32()?;
                    if flags != 0 {
                        return Err(r.err(DecodeErrorKind::UnsupportedSegment));
                    }
                    let offset = r.const_expr()?;
                    let len = r.u32()? as usize;
                    let bytes = r.bytes(len)?.to_vec();
                    module.data.push(DataSegment { offset, bytes });
                }
            }
            _ => unreachable!(),
        }

        if r.pos != end_pos {
            return Err(DecodeError {
                offset: sec_off,
                kind: DecodeErrorKind::SectionSize,
            });
        }
    }

    if module.funcs.is_empty() && !func_type_indices.is_empty() {
        return Err(DecodeError {
            offset: bytes.len(),
            kind: DecodeErrorKind::FuncCodeMismatch {
                funcs: func_type_indices.len(),
                bodies: 0,
            },
        });
    }

    Ok(module)
}

fn decode_type_section(r: &mut Reader<'_>, module: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        let tag_off = r.pos;
        let tag = r.byte()?;
        if tag != 0x60 {
            return Err(DecodeError {
                offset: tag_off,
                kind: DecodeErrorKind::BadEntityKind(tag),
            });
        }
        let n_params = r.u32()? as usize;
        let mut params = Vec::with_capacity(n_params.min(1024));
        for _ in 0..n_params {
            params.push(r.valtype()?);
        }
        let n_results = r.u32()? as usize;
        let mut results = Vec::with_capacity(n_results.min(16));
        for _ in 0..n_results {
            results.push(r.valtype()?);
        }
        module.types.push(FuncType { params, results });
    }
    Ok(())
}

fn decode_import_section(r: &mut Reader<'_>, module: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        let mod_name = r.name()?;
        let field = r.name()?;
        let kind_off = r.pos;
        let kind = r.byte()?;
        match kind {
            0x00 => {
                let type_idx = r.u32()?;
                module.imports.push(Import {
                    module: mod_name,
                    name: field,
                    kind: ImportKind::Func { type_idx },
                });
            }
            0x01..=0x03 => {
                return Err(DecodeError {
                    offset: kind_off,
                    kind: DecodeErrorKind::UnsupportedImport,
                })
            }
            b => {
                return Err(DecodeError {
                    offset: kind_off,
                    kind: DecodeErrorKind::BadEntityKind(b),
                })
            }
        }
    }
    Ok(())
}

fn decode_code_section(
    r: &mut Reader<'_>,
    module: &mut Module,
    func_type_indices: &[u32],
) -> Result<(), DecodeError> {
    let count = r.u32()? as usize;
    if count != func_type_indices.len() {
        return Err(r.err(DecodeErrorKind::FuncCodeMismatch {
            funcs: func_type_indices.len(),
            bodies: count,
        }));
    }
    for &type_idx in func_type_indices {
        let body_size = r.u32()? as usize;
        let body_end = r.pos + body_size;
        if r.remaining() < body_size {
            return Err(r.err(DecodeErrorKind::UnexpectedEof));
        }

        // Locals: run-length encoded (count, type) pairs.
        let n_groups = r.u32()?;
        let mut locals = Vec::new();
        for _ in 0..n_groups {
            let n = r.u32()? as usize;
            let ty = r.valtype()?;
            if locals.len() + n > MAX_LOCALS {
                return Err(r.err(DecodeErrorKind::TooManyLocals));
            }
            locals.extend(std::iter::repeat_n(ty, n));
        }

        let mut code = Vec::new();
        while r.pos < body_end {
            code.push(decode_instr(r)?);
        }
        if r.pos != body_end {
            return Err(r.err(DecodeErrorKind::SectionSize));
        }
        fixup_block_targets(&mut code).map_err(|e| r.err(DecodeErrorKind::Fixup(e)))?;

        module.funcs.push(FuncBody::new(type_idx, locals, code));
    }
    Ok(())
}

fn decode_instr(r: &mut Reader<'_>) -> Result<Instr, DecodeError> {
    let op_off = r.pos;
    let op = r.byte()?;
    let instr = match op {
        0x00 => Instr::Unreachable,
        0x01 => Instr::Nop,
        0x02 => Instr::Block {
            ty: r.blocktype()?,
            end_pc: u32::MAX,
        },
        0x03 => Instr::Loop { ty: r.blocktype()? },
        0x04 => Instr::If {
            ty: r.blocktype()?,
            else_pc: u32::MAX,
            end_pc: u32::MAX,
        },
        0x05 => Instr::Else { end_pc: u32::MAX },
        0x0b => Instr::End,
        0x0c => Instr::Br { depth: r.u32()? },
        0x0d => Instr::BrIf { depth: r.u32()? },
        0x0e => {
            let n = r.u32()? as usize;
            let mut targets = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                targets.push(r.u32()?);
            }
            let default = r.u32()?;
            Instr::BrTable {
                targets: targets.into_boxed_slice(),
                default,
            }
        }
        0x0f => Instr::Return,
        0x10 => Instr::Call { func: r.u32()? },
        0x11 => {
            let type_idx = r.u32()?;
            let table_idx_off = r.pos;
            let table_idx = r.byte()?;
            if table_idx != 0 {
                return Err(DecodeError {
                    offset: table_idx_off,
                    kind: DecodeErrorKind::NonZeroIndex,
                });
            }
            Instr::CallIndirect { type_idx }
        }
        0x1a => Instr::Drop,
        0x1b => Instr::Select,
        0x20 => Instr::LocalGet(r.u32()?),
        0x21 => Instr::LocalSet(r.u32()?),
        0x22 => Instr::LocalTee(r.u32()?),
        0x23 => Instr::GlobalGet(r.u32()?),
        0x24 => Instr::GlobalSet(r.u32()?),
        0x28 => Instr::I32Load(r.memarg()?),
        0x29 => Instr::I64Load(r.memarg()?),
        0x2a => Instr::F32Load(r.memarg()?),
        0x2b => Instr::F64Load(r.memarg()?),
        0x2c => Instr::I32Load8S(r.memarg()?),
        0x2d => Instr::I32Load8U(r.memarg()?),
        0x2e => Instr::I32Load16S(r.memarg()?),
        0x2f => Instr::I32Load16U(r.memarg()?),
        0x30 => Instr::I64Load8S(r.memarg()?),
        0x31 => Instr::I64Load8U(r.memarg()?),
        0x32 => Instr::I64Load16S(r.memarg()?),
        0x33 => Instr::I64Load16U(r.memarg()?),
        0x34 => Instr::I64Load32S(r.memarg()?),
        0x35 => Instr::I64Load32U(r.memarg()?),
        0x36 => Instr::I32Store(r.memarg()?),
        0x37 => Instr::I64Store(r.memarg()?),
        0x38 => Instr::F32Store(r.memarg()?),
        0x39 => Instr::F64Store(r.memarg()?),
        0x3a => Instr::I32Store8(r.memarg()?),
        0x3b => Instr::I32Store16(r.memarg()?),
        0x3c => Instr::I64Store8(r.memarg()?),
        0x3d => Instr::I64Store16(r.memarg()?),
        0x3e => Instr::I64Store32(r.memarg()?),
        0x3f => {
            if r.byte()? != 0 {
                return Err(DecodeError {
                    offset: op_off,
                    kind: DecodeErrorKind::NonZeroIndex,
                });
            }
            Instr::MemorySize
        }
        0x40 => {
            if r.byte()? != 0 {
                return Err(DecodeError {
                    offset: op_off,
                    kind: DecodeErrorKind::NonZeroIndex,
                });
            }
            Instr::MemoryGrow
        }
        0x41 => Instr::I32Const(r.i32()?),
        0x42 => Instr::I64Const(r.i64()?),
        0x43 => Instr::F32Const(r.f32()?),
        0x44 => Instr::F64Const(r.f64()?),
        0x45 => Instr::I32Eqz,
        0x46 => Instr::I32Eq,
        0x47 => Instr::I32Ne,
        0x48 => Instr::I32LtS,
        0x49 => Instr::I32LtU,
        0x4a => Instr::I32GtS,
        0x4b => Instr::I32GtU,
        0x4c => Instr::I32LeS,
        0x4d => Instr::I32LeU,
        0x4e => Instr::I32GeS,
        0x4f => Instr::I32GeU,
        0x50 => Instr::I64Eqz,
        0x51 => Instr::I64Eq,
        0x52 => Instr::I64Ne,
        0x53 => Instr::I64LtS,
        0x54 => Instr::I64LtU,
        0x55 => Instr::I64GtS,
        0x56 => Instr::I64GtU,
        0x57 => Instr::I64LeS,
        0x58 => Instr::I64LeU,
        0x59 => Instr::I64GeS,
        0x5a => Instr::I64GeU,
        0x5b => Instr::F32Eq,
        0x5c => Instr::F32Ne,
        0x5d => Instr::F32Lt,
        0x5e => Instr::F32Gt,
        0x5f => Instr::F32Le,
        0x60 => Instr::F32Ge,
        0x61 => Instr::F64Eq,
        0x62 => Instr::F64Ne,
        0x63 => Instr::F64Lt,
        0x64 => Instr::F64Gt,
        0x65 => Instr::F64Le,
        0x66 => Instr::F64Ge,
        0x67 => Instr::I32Clz,
        0x68 => Instr::I32Ctz,
        0x69 => Instr::I32Popcnt,
        0x6a => Instr::I32Add,
        0x6b => Instr::I32Sub,
        0x6c => Instr::I32Mul,
        0x6d => Instr::I32DivS,
        0x6e => Instr::I32DivU,
        0x6f => Instr::I32RemS,
        0x70 => Instr::I32RemU,
        0x71 => Instr::I32And,
        0x72 => Instr::I32Or,
        0x73 => Instr::I32Xor,
        0x74 => Instr::I32Shl,
        0x75 => Instr::I32ShrS,
        0x76 => Instr::I32ShrU,
        0x77 => Instr::I32Rotl,
        0x78 => Instr::I32Rotr,
        0x79 => Instr::I64Clz,
        0x7a => Instr::I64Ctz,
        0x7b => Instr::I64Popcnt,
        0x7c => Instr::I64Add,
        0x7d => Instr::I64Sub,
        0x7e => Instr::I64Mul,
        0x7f => Instr::I64DivS,
        0x80 => Instr::I64DivU,
        0x81 => Instr::I64RemS,
        0x82 => Instr::I64RemU,
        0x83 => Instr::I64And,
        0x84 => Instr::I64Or,
        0x85 => Instr::I64Xor,
        0x86 => Instr::I64Shl,
        0x87 => Instr::I64ShrS,
        0x88 => Instr::I64ShrU,
        0x89 => Instr::I64Rotl,
        0x8a => Instr::I64Rotr,
        0x8b => Instr::F32Abs,
        0x8c => Instr::F32Neg,
        0x8d => Instr::F32Ceil,
        0x8e => Instr::F32Floor,
        0x8f => Instr::F32Trunc,
        0x90 => Instr::F32Nearest,
        0x91 => Instr::F32Sqrt,
        0x92 => Instr::F32Add,
        0x93 => Instr::F32Sub,
        0x94 => Instr::F32Mul,
        0x95 => Instr::F32Div,
        0x96 => Instr::F32Min,
        0x97 => Instr::F32Max,
        0x98 => Instr::F32Copysign,
        0x99 => Instr::F64Abs,
        0x9a => Instr::F64Neg,
        0x9b => Instr::F64Ceil,
        0x9c => Instr::F64Floor,
        0x9d => Instr::F64Trunc,
        0x9e => Instr::F64Nearest,
        0x9f => Instr::F64Sqrt,
        0xa0 => Instr::F64Add,
        0xa1 => Instr::F64Sub,
        0xa2 => Instr::F64Mul,
        0xa3 => Instr::F64Div,
        0xa4 => Instr::F64Min,
        0xa5 => Instr::F64Max,
        0xa6 => Instr::F64Copysign,
        0xa7 => Instr::I32WrapI64,
        0xa8 => Instr::I32TruncF32S,
        0xa9 => Instr::I32TruncF32U,
        0xaa => Instr::I32TruncF64S,
        0xab => Instr::I32TruncF64U,
        0xac => Instr::I64ExtendI32S,
        0xad => Instr::I64ExtendI32U,
        0xae => Instr::I64TruncF32S,
        0xaf => Instr::I64TruncF32U,
        0xb0 => Instr::I64TruncF64S,
        0xb1 => Instr::I64TruncF64U,
        0xb2 => Instr::F32ConvertI32S,
        0xb3 => Instr::F32ConvertI32U,
        0xb4 => Instr::F32ConvertI64S,
        0xb5 => Instr::F32ConvertI64U,
        0xb6 => Instr::F32DemoteF64,
        0xb7 => Instr::F64ConvertI32S,
        0xb8 => Instr::F64ConvertI32U,
        0xb9 => Instr::F64ConvertI64S,
        0xba => Instr::F64ConvertI64U,
        0xbb => Instr::F64PromoteF32,
        0xbc => Instr::I32ReinterpretF32,
        0xbd => Instr::I64ReinterpretF64,
        0xbe => Instr::F32ReinterpretI32,
        0xbf => Instr::F64ReinterpretI64,
        0xc0 => Instr::I32Extend8S,
        0xc1 => Instr::I32Extend16S,
        0xc2 => Instr::I64Extend8S,
        0xc3 => Instr::I64Extend16S,
        0xc4 => Instr::I64Extend32S,
        0xfc => {
            let sub = r.u32()?;
            match sub {
                0 => Instr::I32TruncSatF32S,
                1 => Instr::I32TruncSatF32U,
                2 => Instr::I32TruncSatF64S,
                3 => Instr::I32TruncSatF64U,
                4 => Instr::I64TruncSatF32S,
                5 => Instr::I64TruncSatF32U,
                6 => Instr::I64TruncSatF64S,
                7 => Instr::I64TruncSatF64U,
                10 => {
                    // memory.copy dst_mem src_mem (both must be 0)
                    if r.byte()? != 0 || r.byte()? != 0 {
                        return Err(DecodeError {
                            offset: op_off,
                            kind: DecodeErrorKind::NonZeroIndex,
                        });
                    }
                    Instr::MemoryCopy
                }
                11 => {
                    if r.byte()? != 0 {
                        return Err(DecodeError {
                            offset: op_off,
                            kind: DecodeErrorKind::NonZeroIndex,
                        });
                    }
                    Instr::MemoryFill
                }
                other => {
                    return Err(DecodeError {
                        offset: op_off,
                        kind: DecodeErrorKind::BadPrefixedOpcode(other),
                    })
                }
            }
        }
        other => {
            return Err(DecodeError {
                offset: op_off,
                kind: DecodeErrorKind::BadOpcode(other),
            })
        }
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-assembled module: (func (export "f") (result i32) i32.const 42)
    fn tiny_module() -> Vec<u8> {
        let mut m = vec![];
        m.extend(b"\0asm");
        m.extend(1u32.to_le_bytes());
        // type section: 1 type () -> (i32)
        m.extend([1, 5, 1, 0x60, 0, 1, 0x7f]);
        // function section: 1 func of type 0
        m.extend([3, 2, 1, 0]);
        // export section: "f" -> func 0
        m.extend([7, 5, 1, 1, b'f', 0, 0]);
        // code section: body = i32.const 42; end
        m.extend([10, 6, 1, 4, 0, 0x41, 42, 0x0b]);
        m
    }

    #[test]
    fn decodes_tiny_module() {
        let m = decode_module(&tiny_module()).unwrap();
        assert_eq!(m.types.len(), 1);
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.exported_func("f"), Some(0));
        assert_eq!(m.funcs[0].code, vec![Instr::I32Const(42), Instr::End]);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode_module(b"\0ASM\x01\0\0\0").unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMagic);
    }

    #[test]
    fn rejects_bad_version() {
        let err = decode_module(b"\0asm\x02\0\0\0").unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadVersion(2));
    }

    #[test]
    fn rejects_truncated() {
        let mut bytes = tiny_module();
        bytes.truncate(bytes.len() - 2);
        assert!(decode_module(&bytes).is_err());
    }

    #[test]
    fn rejects_out_of_order_sections() {
        let mut m = vec![];
        m.extend(b"\0asm");
        m.extend(1u32.to_le_bytes());
        m.extend([3, 2, 1, 0]); // function section first
        m.extend([1, 5, 1, 0x60, 0, 1, 0x7f]); // then type section
        let err = decode_module(&m).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::SectionOrder(1));
    }

    #[test]
    fn rejects_unknown_opcode() {
        let mut m = vec![];
        m.extend(b"\0asm");
        m.extend(1u32.to_le_bytes());
        m.extend([1, 4, 1, 0x60, 0, 0]);
        m.extend([3, 2, 1, 0]);
        m.extend([10, 5, 1, 3, 0, 0xf7, 0x0b]); // 0xf7 is not an opcode
        let err = decode_module(&m).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::BadOpcode(0xf7)));
    }

    #[test]
    fn skips_custom_sections() {
        let mut m = vec![];
        m.extend(b"\0asm");
        m.extend(1u32.to_le_bytes());
        // custom section "x" with 2 payload bytes
        m.extend([0, 4, 1, b'x', 0xde, 0xad]);
        m.extend([1, 5, 1, 0x60, 0, 1, 0x7f]);
        m.extend([3, 2, 1, 0]);
        m.extend([10, 6, 1, 4, 0, 0x41, 42, 0x0b]);
        let module = decode_module(&m).unwrap();
        assert_eq!(module.funcs.len(), 1);
    }

    #[test]
    fn func_code_count_mismatch() {
        let mut m = vec![];
        m.extend(b"\0asm");
        m.extend(1u32.to_le_bytes());
        m.extend([1, 4, 1, 0x60, 0, 0]);
        m.extend([3, 3, 2, 0, 0]); // two funcs
        m.extend([10, 4, 1, 2, 0, 0x0b]); // one body
        let err = decode_module(&m).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::FuncCodeMismatch { .. }));
    }
}
