//! Core WebAssembly type definitions: value types, function types, limits
//! and the entity type descriptors used by imports/exports.

/// A WebAssembly value type (MVP numeric types only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    /// 32-bit integer (sign-agnostic).
    I32,
    /// 64-bit integer (sign-agnostic).
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ValType {
    /// Binary-format type byte.
    pub fn to_byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Parse a binary-format type byte.
    pub fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            _ => None,
        }
    }
}

impl std::fmt::Display for ValType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        write!(f, "{s}")
    }
}

/// A function signature: parameter types and result types.
///
/// The MVP restricts results to at most one value; the decoder and
/// validator enforce this.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValType>,
    /// Result types (0 or 1 in the MVP).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Construct a function type.
    pub fn new(params: &[ValType], results: &[ValType]) -> Self {
        FuncType {
            params: params.to_vec(),
            results: results.to_vec(),
        }
    }
}

impl std::fmt::Display for FuncType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Size limits for memories (in 64 KiB pages) and tables (in elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Initial size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// `min..=max` limits.
    pub fn new(min: u32, max: Option<u32>) -> Self {
        Limits { min, max }
    }

    /// True when `min <= max` (or no max).
    pub fn well_formed(&self) -> bool {
        self.max.is_none_or(|m| self.min <= m)
    }
}

/// Mutability of a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutability {
    /// Immutable (`const`).
    Const,
    /// Mutable (`mut`).
    Var,
}

/// The type of a global: value type plus mutability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalType {
    /// Value type stored in the global.
    pub ty: ValType,
    /// Whether the global may be written after instantiation.
    pub mutability: Mutability,
}

/// A block type: the signature of a structured control instruction.
///
/// The MVP supports the empty type and a single result value. (Typed
/// function-reference block types are out of scope.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockType {
    /// `[] -> []`
    Empty,
    /// `[] -> [t]`
    Value(ValType),
}

impl BlockType {
    /// Number of result values the block yields.
    pub fn arity(self) -> usize {
        match self {
            BlockType::Empty => 0,
            BlockType::Value(_) => 1,
        }
    }

    /// The result type, if any.
    pub fn result(self) -> Option<ValType> {
        match self {
            BlockType::Empty => None,
            BlockType::Value(t) => Some(t),
        }
    }
}

/// WebAssembly page size: 64 KiB.
pub const PAGE_SIZE: usize = 65536;

/// Spec-mandated hard ceiling on memory size: 65536 pages (4 GiB).
pub const MAX_PAGES: u32 = 65536;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_byte_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(t.to_byte()), Some(t));
        }
        assert_eq!(ValType::from_byte(0x00), None);
        assert_eq!(ValType::from_byte(0x70), None); // funcref: not a value type here
    }

    #[test]
    fn functype_display() {
        let t = FuncType::new(&[ValType::I32, ValType::F64], &[ValType::I64]);
        assert_eq!(t.to_string(), "(i32, f64) -> (i64)");
    }

    #[test]
    fn limits_well_formed() {
        assert!(Limits::new(1, None).well_formed());
        assert!(Limits::new(1, Some(1)).well_formed());
        assert!(!Limits::new(2, Some(1)).well_formed());
    }

    #[test]
    fn blocktype_arity() {
        assert_eq!(BlockType::Empty.arity(), 0);
        assert_eq!(BlockType::Value(ValType::F32).arity(), 1);
        assert_eq!(BlockType::Value(ValType::F32).result(), Some(ValType::F32));
    }
}
