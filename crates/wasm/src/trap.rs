//! Traps: every way guest execution can abort.
//!
//! A trap is the security boundary of WA-RAN — any guest misbehaviour
//! (out-of-bounds access, division by zero, resource exhaustion, explicit
//! `unreachable`) unwinds the interpreter and is returned to the host as a
//! value, never as a panic or undefined behaviour. The plugin host's fault
//! policy (see `waran-host`) decides what happens next.

/// Reason guest execution aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// `unreachable` was executed.
    Unreachable,
    /// A linear-memory access fell outside the memory's current size.
    MemoryOutOfBounds {
        /// First byte of the attempted access.
        addr: u64,
        /// Access width in bytes.
        len: u64,
        /// Memory size in bytes at the time of the access.
        size: u64,
    },
    /// Integer division or remainder by zero.
    IntegerDivByZero,
    /// `i32.div_s`/`i64.div_s` overflow (MIN / -1).
    IntegerOverflow,
    /// Float-to-int truncation of NaN or an out-of-range value.
    InvalidConversion,
    /// `call_indirect` through a null table entry.
    UninitializedElement,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// Table access out of bounds.
    TableOutOfBounds,
    /// Call stack exceeded the configured depth limit.
    StackOverflow,
    /// Deterministic instruction budget exhausted.
    OutOfFuel,
    /// Wall-clock deadline exceeded.
    DeadlineExceeded,
    /// A host function reported an error.
    HostError(String),
    /// The value stack exceeded its configured bound (runaway recursion in
    /// expression form or a pathological module).
    ValueStackExhausted,
    /// `memory.grow` beyond the instance's page limit was attempted via an
    /// instruction that must not fail silently (only raised by embedder
    /// policies that forbid growth entirely).
    MemoryLimitExceeded,
}

impl Trap {
    /// Short machine-readable code, used by host-side fault accounting.
    pub fn code(&self) -> &'static str {
        match self {
            Trap::Unreachable => "unreachable",
            Trap::MemoryOutOfBounds { .. } => "memory-out-of-bounds",
            Trap::IntegerDivByZero => "integer-divide-by-zero",
            Trap::IntegerOverflow => "integer-overflow",
            Trap::InvalidConversion => "invalid-conversion",
            Trap::UninitializedElement => "uninitialized-element",
            Trap::IndirectCallTypeMismatch => "indirect-call-type-mismatch",
            Trap::TableOutOfBounds => "table-out-of-bounds",
            Trap::StackOverflow => "stack-overflow",
            Trap::OutOfFuel => "out-of-fuel",
            Trap::DeadlineExceeded => "deadline-exceeded",
            Trap::HostError(_) => "host-error",
            Trap::ValueStackExhausted => "value-stack-exhausted",
            Trap::MemoryLimitExceeded => "memory-limit-exceeded",
        }
    }

    /// True for traps caused by resource limits rather than by faulty guest
    /// logic (the host may retry these with a larger budget).
    pub fn is_resource_exhaustion(&self) -> bool {
        matches!(
            self,
            Trap::OutOfFuel
                | Trap::DeadlineExceeded
                | Trap::StackOverflow
                | Trap::ValueStackExhausted
                | Trap::MemoryLimitExceeded
        )
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::MemoryOutOfBounds { addr, len, size } => {
                write!(
                    f,
                    "memory access out of bounds: {len} bytes at {addr} (memory size {size})"
                )
            }
            Trap::HostError(msg) => write!(f, "host error: {msg}"),
            other => write!(f, "{}", other.code()),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Trap::Unreachable.code(), "unreachable");
        assert_eq!(
            Trap::MemoryOutOfBounds {
                addr: 70000,
                len: 4,
                size: 65536
            }
            .code(),
            "memory-out-of-bounds"
        );
    }

    #[test]
    fn exhaustion_classification() {
        assert!(Trap::OutOfFuel.is_resource_exhaustion());
        assert!(Trap::DeadlineExceeded.is_resource_exhaustion());
        assert!(!Trap::Unreachable.is_resource_exhaustion());
        assert!(!Trap::IntegerDivByZero.is_resource_exhaustion());
    }

    #[test]
    fn display_oob_includes_detail() {
        let t = Trap::MemoryOutOfBounds {
            addr: 100,
            len: 8,
            size: 64,
        };
        let s = t.to_string();
        assert!(s.contains("100") && s.contains('8') && s.contains("64"));
    }
}
