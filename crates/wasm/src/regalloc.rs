//! Register-form lowering of the flat IR: the `ExecMode::Reg` tier.
//!
//! A per-function abstract-interpretation pass walks the already-lowered
//! [`CompiledFunc`] (so side-table branches, basic-block fuel metering,
//! superinstruction fusion and leaf-call inlining all carry forward for
//! free) and assigns every operand-stack slot a *virtual register* in a
//! flat, frame-indexed register file:
//!
//! * registers `0 .. n_locals` are the wasm locals (local `i` *is*
//!   register `i`),
//! * the stack cell at frame height `h` is register `n_locals + h`.
//!
//! Ops become three-address form (`dst`, `lhs`, `rhs` indices into one
//! `[Value]` frame) and push/pop traffic disappears from the interpreter
//! loop. The pass additionally tracks three abstract value kinds per
//! stack cell — materialized [`Abs::Slot`], lazy local alias
//! [`Abs::Local`] and lazy constant [`Abs::Const`] — so `local.get`,
//! `const` and most copies are *deleted* rather than merely cheapened,
//! folds constant i32 arithmetic, and re-fuses compare-and-branch over
//! register operands ([`ROp::BrIfCmp`]/[`ROp::BrIfCmpC`]).
//!
//! Fuel accounting is unchanged: every flat [`Op::Meter`] lowers to an
//! [`ROp::Meter`] with the *same* `cost` (source-instruction count of the
//! basic block), so fuel totals and `OutOfFuel` points stay bit-identical
//! with the other two tiers. The value-stack bound is enforced against
//! the *virtual* stack height (`vbase + entry + peak`), which equals the
//! flat tier's `stack.len() + peak` at every meter.
//!
//! Calls pass arguments by *register-window overlap*: the callee's frame
//! base is placed exactly where the caller materialized the arguments, so
//! a wasm→wasm call copies nothing.

use std::sync::OnceLock;

use crate::compile::{CompiledFunc, I32Op, Op};
use crate::instance::{
    trunc_f32_to_i32_s, trunc_f32_to_i64_s, trunc_f32_to_u32, trunc_f32_to_u64, trunc_f64_to_i32_s,
    trunc_f64_to_i64_s, trunc_f64_to_u32, trunc_f64_to_u64, wasm_fmax32, wasm_fmax64, wasm_fmin32,
    wasm_fmin64,
};
use crate::interp::Value;
use crate::module::Module;
use crate::trap::Trap;

/// Defines an operator enum whose variants mirror a subset of [`Op`]
/// one-to-one, plus the `from_op` table that maps them over.
macro_rules! mirror_ops {
    ($(#[$meta:meta])* $name:ident: $($v:ident),* $(,)?) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum $name { $($v),* }
        impl $name {
            pub(crate) fn from_op(op: Op) -> Option<$name> {
                match op {
                    $(Op::$v => Some($name::$v),)*
                    _ => None,
                }
            }
        }
    };
}

mirror_ops! {
    /// Non-trapping i64 binary operators (arithmetic and comparisons;
    /// comparisons produce an i32).
    I64Op:
    I64Add, I64Sub, I64Mul, I64And, I64Or, I64Xor, I64Shl, I64ShrS, I64ShrU,
    I64Rotl, I64Rotr, I64Eq, I64Ne, I64LtS, I64LtU, I64GtS, I64GtU, I64LeS,
    I64LeU, I64GeS, I64GeU,
}

impl I64Op {
    #[inline(always)]
    pub(crate) fn eval(self, a: i64, b: i64) -> Value {
        use I64Op::*;
        match self {
            I64Add => Value::I64(a.wrapping_add(b)),
            I64Sub => Value::I64(a.wrapping_sub(b)),
            I64Mul => Value::I64(a.wrapping_mul(b)),
            I64And => Value::I64(a & b),
            I64Or => Value::I64(a | b),
            I64Xor => Value::I64(a ^ b),
            I64Shl => Value::I64(a.wrapping_shl(b as u32)),
            I64ShrS => Value::I64(a.wrapping_shr(b as u32)),
            I64ShrU => Value::I64(((a as u64).wrapping_shr(b as u32)) as i64),
            I64Rotl => Value::I64(a.rotate_left(b as u32 & 63)),
            I64Rotr => Value::I64(a.rotate_right(b as u32 & 63)),
            I64Eq => Value::I32((a == b) as i32),
            I64Ne => Value::I32((a != b) as i32),
            I64LtS => Value::I32((a < b) as i32),
            I64LtU => Value::I32(((a as u64) < (b as u64)) as i32),
            I64GtS => Value::I32((a > b) as i32),
            I64GtU => Value::I32(((a as u64) > (b as u64)) as i32),
            I64LeS => Value::I32((a <= b) as i32),
            I64LeU => Value::I32(((a as u64) <= (b as u64)) as i32),
            I64GeS => Value::I32((a >= b) as i32),
            I64GeU => Value::I32(((a as u64) >= (b as u64)) as i32),
        }
    }
}

mirror_ops! {
    /// Binary operators that either trap (integer div/rem) or operate on
    /// floats — the generic [`ROp::Bin`] payload. Kept out of the hot
    /// [`ROp::I32Bin`]/[`ROp::I64Bin`] paths.
    BinOp:
    I32DivS, I32DivU, I32RemS, I32RemU, I64DivS, I64DivU, I64RemS, I64RemU,
    F32Eq, F32Ne, F32Lt, F32Gt, F32Le, F32Ge,
    F64Eq, F64Ne, F64Lt, F64Gt, F64Le, F64Ge,
    F32Add, F32Sub, F32Mul, F32Div, F32Min, F32Max, F32Copysign,
    F64Add, F64Sub, F64Mul, F64Div, F64Min, F64Max, F64Copysign,
}

impl BinOp {
    #[inline(always)]
    pub(crate) fn eval(self, a: Value, b: Value) -> Result<Value, Trap> {
        use BinOp::*;
        Ok(match self {
            I32DivS => {
                let (a, b) = (a.as_i32(), b.as_i32());
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                if a == i32::MIN && b == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                Value::I32(a.wrapping_div(b))
            }
            I32DivU => {
                let (a, b) = (a.as_i32(), b.as_i32());
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                Value::I32(((a as u32) / (b as u32)) as i32)
            }
            I32RemS => {
                let (a, b) = (a.as_i32(), b.as_i32());
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                Value::I32(a.wrapping_rem(b))
            }
            I32RemU => {
                let (a, b) = (a.as_i32(), b.as_i32());
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                Value::I32(((a as u32) % (b as u32)) as i32)
            }
            I64DivS => {
                let (a, b) = (a.as_i64(), b.as_i64());
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                if a == i64::MIN && b == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                Value::I64(a.wrapping_div(b))
            }
            I64DivU => {
                let (a, b) = (a.as_i64(), b.as_i64());
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                Value::I64(((a as u64) / (b as u64)) as i64)
            }
            I64RemS => {
                let (a, b) = (a.as_i64(), b.as_i64());
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                Value::I64(a.wrapping_rem(b))
            }
            I64RemU => {
                let (a, b) = (a.as_i64(), b.as_i64());
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                Value::I64(((a as u64) % (b as u64)) as i64)
            }
            F32Eq => Value::I32((a.as_f32() == b.as_f32()) as i32),
            F32Ne => Value::I32((a.as_f32() != b.as_f32()) as i32),
            F32Lt => Value::I32((a.as_f32() < b.as_f32()) as i32),
            F32Gt => Value::I32((a.as_f32() > b.as_f32()) as i32),
            F32Le => Value::I32((a.as_f32() <= b.as_f32()) as i32),
            F32Ge => Value::I32((a.as_f32() >= b.as_f32()) as i32),
            F64Eq => Value::I32((a.as_f64() == b.as_f64()) as i32),
            F64Ne => Value::I32((a.as_f64() != b.as_f64()) as i32),
            F64Lt => Value::I32((a.as_f64() < b.as_f64()) as i32),
            F64Gt => Value::I32((a.as_f64() > b.as_f64()) as i32),
            F64Le => Value::I32((a.as_f64() <= b.as_f64()) as i32),
            F64Ge => Value::I32((a.as_f64() >= b.as_f64()) as i32),
            F32Add => Value::F32(a.as_f32() + b.as_f32()),
            F32Sub => Value::F32(a.as_f32() - b.as_f32()),
            F32Mul => Value::F32(a.as_f32() * b.as_f32()),
            F32Div => Value::F32(a.as_f32() / b.as_f32()),
            F32Min => Value::F32(wasm_fmin32(a.as_f32(), b.as_f32())),
            F32Max => Value::F32(wasm_fmax32(a.as_f32(), b.as_f32())),
            F32Copysign => Value::F32(a.as_f32().copysign(b.as_f32())),
            F64Add => Value::F64(a.as_f64() + b.as_f64()),
            F64Sub => Value::F64(a.as_f64() - b.as_f64()),
            F64Mul => Value::F64(a.as_f64() * b.as_f64()),
            F64Div => Value::F64(a.as_f64() / b.as_f64()),
            F64Min => Value::F64(wasm_fmin64(a.as_f64(), b.as_f64())),
            F64Max => Value::F64(wasm_fmax64(a.as_f64(), b.as_f64())),
            F64Copysign => Value::F64(a.as_f64().copysign(b.as_f64())),
        })
    }
}

mirror_ops! {
    /// Unary operators (unops, conversions, reinterprets, saturating and
    /// trapping truncations) — the [`ROp::Un`] payload.
    UnOp:
    I32Eqz, I32Clz, I32Ctz, I32Popcnt,
    I64Eqz, I64Clz, I64Ctz, I64Popcnt,
    F32Abs, F32Neg, F32Ceil, F32Floor, F32Trunc, F32Nearest, F32Sqrt,
    F64Abs, F64Neg, F64Ceil, F64Floor, F64Trunc, F64Nearest, F64Sqrt,
    I32WrapI64, I32TruncF32S, I32TruncF32U, I32TruncF64S, I32TruncF64U,
    I64ExtendI32S, I64ExtendI32U, I64TruncF32S, I64TruncF32U, I64TruncF64S,
    I64TruncF64U, F32ConvertI32S, F32ConvertI32U, F32ConvertI64S,
    F32ConvertI64U, F32DemoteF64, F64ConvertI32S, F64ConvertI32U,
    F64ConvertI64S, F64ConvertI64U, F64PromoteF32, I32ReinterpretF32,
    I64ReinterpretF64, F32ReinterpretI32, F64ReinterpretI64,
    I32Extend8S, I32Extend16S, I64Extend8S, I64Extend16S, I64Extend32S,
    I32TruncSatF32S, I32TruncSatF32U, I32TruncSatF64S, I32TruncSatF64U,
    I64TruncSatF32S, I64TruncSatF32U, I64TruncSatF64S, I64TruncSatF64U,
}

impl UnOp {
    #[inline(always)]
    pub(crate) fn eval(self, a: Value) -> Result<Value, Trap> {
        use UnOp::*;
        Ok(match self {
            I32Eqz => Value::I32((a.as_i32() == 0) as i32),
            I32Clz => Value::I32(a.as_i32().leading_zeros() as i32),
            I32Ctz => Value::I32(a.as_i32().trailing_zeros() as i32),
            I32Popcnt => Value::I32(a.as_i32().count_ones() as i32),
            I64Eqz => Value::I32((a.as_i64() == 0) as i32),
            I64Clz => Value::I64(a.as_i64().leading_zeros() as i64),
            I64Ctz => Value::I64(a.as_i64().trailing_zeros() as i64),
            I64Popcnt => Value::I64(a.as_i64().count_ones() as i64),
            F32Abs => Value::F32(a.as_f32().abs()),
            F32Neg => Value::F32(-a.as_f32()),
            F32Ceil => Value::F32(a.as_f32().ceil()),
            F32Floor => Value::F32(a.as_f32().floor()),
            F32Trunc => Value::F32(a.as_f32().trunc()),
            F32Nearest => Value::F32(a.as_f32().round_ties_even()),
            F32Sqrt => Value::F32(a.as_f32().sqrt()),
            F64Abs => Value::F64(a.as_f64().abs()),
            F64Neg => Value::F64(-a.as_f64()),
            F64Ceil => Value::F64(a.as_f64().ceil()),
            F64Floor => Value::F64(a.as_f64().floor()),
            F64Trunc => Value::F64(a.as_f64().trunc()),
            F64Nearest => Value::F64(a.as_f64().round_ties_even()),
            F64Sqrt => Value::F64(a.as_f64().sqrt()),
            I32WrapI64 => Value::I32(a.as_i64() as i32),
            I32TruncF32S => Value::I32(trunc_f32_to_i32_s(a.as_f32())?),
            I32TruncF32U => Value::I32(trunc_f32_to_u32(a.as_f32())? as i32),
            I32TruncF64S => Value::I32(trunc_f64_to_i32_s(a.as_f64())?),
            I32TruncF64U => Value::I32(trunc_f64_to_u32(a.as_f64())? as i32),
            I64ExtendI32S => Value::I64(a.as_i32() as i64),
            I64ExtendI32U => Value::I64(a.as_i32() as u32 as i64),
            I64TruncF32S => Value::I64(trunc_f32_to_i64_s(a.as_f32())?),
            I64TruncF32U => Value::I64(trunc_f32_to_u64(a.as_f32())? as i64),
            I64TruncF64S => Value::I64(trunc_f64_to_i64_s(a.as_f64())?),
            I64TruncF64U => Value::I64(trunc_f64_to_u64(a.as_f64())? as i64),
            F32ConvertI32S => Value::F32(a.as_i32() as f32),
            F32ConvertI32U => Value::F32(a.as_i32() as u32 as f32),
            F32ConvertI64S => Value::F32(a.as_i64() as f32),
            F32ConvertI64U => Value::F32(a.as_i64() as u64 as f32),
            F32DemoteF64 => Value::F32(a.as_f64() as f32),
            F64ConvertI32S => Value::F64(a.as_i32() as f64),
            F64ConvertI32U => Value::F64(a.as_i32() as u32 as f64),
            F64ConvertI64S => Value::F64(a.as_i64() as f64),
            F64ConvertI64U => Value::F64(a.as_i64() as u64 as f64),
            F64PromoteF32 => Value::F64(a.as_f32() as f64),
            I32ReinterpretF32 => Value::I32(a.as_f32().to_bits() as i32),
            I64ReinterpretF64 => Value::I64(a.as_f64().to_bits() as i64),
            F32ReinterpretI32 => Value::F32(f32::from_bits(a.as_i32() as u32)),
            F64ReinterpretI64 => Value::F64(f64::from_bits(a.as_i64() as u64)),
            I32Extend8S => Value::I32(a.as_i32() as i8 as i32),
            I32Extend16S => Value::I32(a.as_i32() as i16 as i32),
            I64Extend8S => Value::I64(a.as_i64() as i8 as i64),
            I64Extend16S => Value::I64(a.as_i64() as i16 as i64),
            I64Extend32S => Value::I64(a.as_i64() as i32 as i64),
            I32TruncSatF32S => Value::I32(a.as_f32() as i32),
            I32TruncSatF32U => Value::I32(a.as_f32() as u32 as i32),
            I32TruncSatF64S => Value::I32(a.as_f64() as i32),
            I32TruncSatF64U => Value::I32(a.as_f64() as u32 as i32),
            I64TruncSatF32S => Value::I64(a.as_f32() as i64),
            I64TruncSatF32U => Value::I64(a.as_f32() as u64 as i64),
            I64TruncSatF64S => Value::I64(a.as_f64() as i64),
            I64TruncSatF64U => Value::I64(a.as_f64() as u64 as i64),
        })
    }
}

/// Memory load flavour: result type plus access width/extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    I32,
    I64,
    F32,
    F64,
    I32S8,
    I32U8,
    I32S16,
    I32U16,
    I64S8,
    I64U8,
    I64S16,
    I64U16,
    I64S32,
    I64U32,
}

/// Memory store flavour: operand type plus stored width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    I32,
    I64,
    F32,
    F64,
    I32Lo8,
    I32Lo16,
    I64Lo8,
    I64Lo16,
    I64Lo32,
}

impl LoadKind {
    pub(crate) fn from_op(op: Op) -> Option<(LoadKind, u32)> {
        Some(match op {
            Op::I32Load(off) => (LoadKind::I32, off),
            Op::I64Load(off) => (LoadKind::I64, off),
            Op::F32Load(off) => (LoadKind::F32, off),
            Op::F64Load(off) => (LoadKind::F64, off),
            Op::I32Load8S(off) => (LoadKind::I32S8, off),
            Op::I32Load8U(off) => (LoadKind::I32U8, off),
            Op::I32Load16S(off) => (LoadKind::I32S16, off),
            Op::I32Load16U(off) => (LoadKind::I32U16, off),
            Op::I64Load8S(off) => (LoadKind::I64S8, off),
            Op::I64Load8U(off) => (LoadKind::I64U8, off),
            Op::I64Load16S(off) => (LoadKind::I64S16, off),
            Op::I64Load16U(off) => (LoadKind::I64U16, off),
            Op::I64Load32S(off) => (LoadKind::I64S32, off),
            Op::I64Load32U(off) => (LoadKind::I64U32, off),
            _ => return None,
        })
    }
}

impl StoreKind {
    pub(crate) fn from_op(op: Op) -> Option<(StoreKind, u32)> {
        Some(match op {
            Op::I32Store(off) => (StoreKind::I32, off),
            Op::I64Store(off) => (StoreKind::I64, off),
            Op::F32Store(off) => (StoreKind::F32, off),
            Op::F64Store(off) => (StoreKind::F64, off),
            Op::I32Store8(off) => (StoreKind::I32Lo8, off),
            Op::I32Store16(off) => (StoreKind::I32Lo16, off),
            Op::I64Store8(off) => (StoreKind::I64Lo8, off),
            Op::I64Store16(off) => (StoreKind::I64Lo16, off),
            Op::I64Store32(off) => (StoreKind::I64Lo32, off),
            _ => return None,
        })
    }
}

/// One register-form operation. All register operands (`dst`/`a`/`b`/…)
/// index the current frame's register window (`frame.base + reg`);
/// branch-carrying ops index [`RegFunc::branches`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ROp {
    /// Basic-block header: identical fuel/deadline semantics to
    /// [`Op::Meter`]; `entry` is the abstract stack height at block entry
    /// so the value-stack bound check is `vbase + entry + peak`.
    Meter {
        cost: u32,
        entry: u32,
        peak: u32,
    },
    Unreachable,
    Br(u32),
    /// Branch when `regs[cond] != 0`.
    BrIf {
        cond: u32,
        br: u32,
    },
    /// Branch when `regs[cond] == 0`.
    BrIfZ {
        cond: u32,
        br: u32,
    },
    /// Branch when `op(regs[a], regs[b])` holds (fused compare+br_if over
    /// arbitrary registers — subsumes the flat tier's `BrIfLL`).
    BrIfCmp {
        op: I32Op,
        a: u32,
        b: u32,
        br: u32,
    },
    /// Branch when `op(regs[a], k)` holds.
    BrIfCmpC {
        op: I32Op,
        a: u32,
        k: i32,
        br: u32,
    },
    /// Take `branches[start + min(regs[sel], n)]`.
    BrTable {
        sel: u32,
        start: u32,
        n: u32,
    },
    /// Move `regs[src]` to register 0 of the frame (when `ret_arity == 1`)
    /// and pop the frame.
    Return {
        src: u32,
    },
    /// Call local function `f`; its frame starts at register `base`, where
    /// the arguments are already materialized (register-window overlap —
    /// nothing is copied).
    CallWasm {
        f: u32,
        base: u32,
    },
    /// Call imported host function `f`; `argc` args start at `base` and
    /// the result (decoded from `ret` as in [`Op::CallHost`]) lands at
    /// `base`.
    CallHost {
        f: u32,
        base: u32,
        argc: u16,
        ret: u8,
    },
    /// Indirect call through the table; the selector sits at
    /// `base + argc(ty)`, the args at `base`.
    CallIndirect {
        ty: u32,
        base: u32,
    },
    Copy {
        dst: u32,
        src: u32,
    },
    ConstI32 {
        dst: u32,
        k: i32,
    },
    /// Load a non-i32 constant from [`RegFunc::consts`].
    Const {
        dst: u32,
        idx: u32,
    },
    /// `dst` already holds the true-arm value; replace it with `regs[b]`
    /// when `regs[cond] == 0`.
    Select {
        dst: u32,
        cond: u32,
        b: u32,
    },
    GlobalGet {
        dst: u32,
        g: u32,
    },
    GlobalSet {
        g: u32,
        src: u32,
    },
    MemorySize {
        dst: u32,
    },
    MemoryGrow {
        dst: u32,
        delta: u32,
    },
    MemoryCopy {
        dst: u32,
        src: u32,
        len: u32,
    },
    MemoryFill {
        dst: u32,
        val: u32,
        len: u32,
    },
    /// `regs[dst] = op(regs[a], regs[b])` — the hot i32 path.
    I32Bin {
        op: I32Op,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// `regs[dst] = op(regs[a], k)`.
    I32BinC {
        op: I32Op,
        dst: u32,
        a: u32,
        k: i32,
    },
    /// `regs[dst] = op(regs[a], regs[b])` on i64 operands.
    I64Bin {
        op: I64Op,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Trapping/float binop.
    Bin {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Unop/conversion.
    Un {
        op: UnOp,
        dst: u32,
        a: u32,
    },
    /// `regs[dst] = load(regs[addr] + off)`.
    Load {
        kind: LoadKind,
        dst: u32,
        addr: u32,
        off: u32,
    },
    /// `store(regs[addr] + off, regs[val])`.
    Store {
        kind: StoreKind,
        addr: u32,
        val: u32,
        off: u32,
    },
    /// `regs[dst] = load((regs[a] +wrap k) + off)` — an address-compute
    /// `i32.add const` folded into the access. The i32 add wraps exactly
    /// like the standalone op did, then the static offset extends to u64,
    /// so bounds/trap behaviour is bit-identical to the two-op sequence.
    LoadAt {
        kind: LoadKind,
        dst: u32,
        a: u16,
        k: i32,
        off: u32,
    },
    /// `regs[dst] = load((regs[a] +wrap regs[b]) + off)` — the
    /// register-register address form (`base + scaled index`).
    LoadRR {
        kind: LoadKind,
        dst: u32,
        a: u16,
        b: u16,
        off: u32,
    },
    /// `store((regs[a] +wrap k) + off, regs[val])`.
    StoreAt {
        kind: StoreKind,
        a: u16,
        k: i32,
        val: u16,
        off: u32,
    },
    /// `store((regs[a] +wrap regs[b]) + off, regs[val])`.
    StoreRR {
        kind: StoreKind,
        a: u16,
        b: u16,
        val: u16,
        off: u32,
    },
    /// `regs[dst] = load((regs[a] +wrap (regs[b] <<wrap sh) +wrap k) + off)`
    /// — a whole base-index-scale-displacement address chain (up to three
    /// adds/shifts/muls) folded into the access. Every removed op was a
    /// non-trapping wrapping i32 op, so folding preserves trap order, and
    /// wrapping add/shift are associative so the sum is bit-identical.
    LoadBis {
        kind: LoadKind,
        dst: u16,
        a: u16,
        b: u16,
        sh: u8,
        k: i16,
        off: u32,
    },
    /// `store((regs[a] +wrap (regs[b] <<wrap sh) +wrap k) + off, regs[val])`.
    StoreBis {
        kind: StoreKind,
        a: u16,
        b: u16,
        sh: u8,
        k: i16,
        val: u16,
        off: u32,
    },
    /// `store((regs[a] +wrap k) + off, v)` — a constant store value folded
    /// in as raw bits (i32 value or f32 bit pattern, per `kind`), so the
    /// constant never needs a register at all.
    StoreCAt {
        kind: StoreKind,
        a: u16,
        k: i32,
        v: u32,
        off: u32,
    },
}

impl ROp {
    /// Registers-only result slot of a *pure* op — the set the lowering
    /// pass may retarget when fusing a `local.set`/`local.tee` write-back.
    fn dst_mut(&mut self) -> Option<&mut u32> {
        match self {
            ROp::I32Bin { dst, .. }
            | ROp::I32BinC { dst, .. }
            | ROp::I64Bin { dst, .. }
            | ROp::Bin { dst, .. }
            | ROp::Un { dst, .. }
            | ROp::Load { dst, .. }
            | ROp::LoadAt { dst, .. }
            | ROp::LoadRR { dst, .. }
            | ROp::GlobalGet { dst, .. }
            | ROp::MemorySize { dst } => Some(dst),
            _ => None,
        }
    }
}

/// A branch descriptor for the register tier: jump to `pc` after moving
/// the `n` carried values from registers `src..src+n` down to
/// `dst..dst+n` (`n == 0` when source and destination windows coincide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RBranch {
    pub pc: u32,
    pub src: u32,
    pub dst: u32,
    pub n: u32,
}

/// A function body lowered to register form, ready to execute.
#[derive(Debug, Clone)]
pub struct RegFunc {
    pub ops: Box<[ROp]>,
    pub branches: Box<[RBranch]>,
    /// Pool for non-i32 constants referenced by [`ROp::Const`].
    pub consts: Box<[Value]>,
    /// Zero-values for the declared (non-parameter) locals.
    pub locals_init: Box<[Value]>,
    pub argc: u32,
    pub ret_arity: u32,
    /// Locals (params + declared): registers `0..n_locals`.
    pub n_locals: u32,
    /// Total registers the frame needs (`n_locals` + max stack height).
    pub frame_size: u32,
    /// Flat-pc → register-pc map (`u32::MAX` = dead flat op, not
    /// lowered). Kept as the lowering's liveness/placement witness for
    /// load-time translation validation.
    pub pc_map: Box<[u32]>,
}

/// Per-function lazily-lowered register body, cached exactly like
/// `CompiledCell` caches the flat form.
#[derive(Debug, Default)]
pub struct RegCell(OnceLock<RegFunc>);

impl RegCell {
    pub const fn new() -> Self {
        RegCell(OnceLock::new())
    }

    pub fn get_or_lower(&self, module: &Module, local_idx: u32) -> &RegFunc {
        self.0.get_or_init(|| lower_func(module, local_idx))
    }
}

impl Clone for RegCell {
    fn clone(&self) -> Self {
        let cell = RegCell::new();
        if let Some(rf) = self.0.get() {
            let _ = cell.0.set(rf.clone());
        }
        cell
    }
}

impl PartialEq for RegCell {
    /// Lowering is a pure function of the body; the cache never affects
    /// module equality.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Abstract value of one operand-stack cell during lowering. `Slot` means
/// the value is materialized in its stack register; the other two are
/// lazy and emit *nothing* until a consumer or a control-flow merge
/// forces them into a register.
#[derive(Debug, Clone, Copy)]
enum Abs {
    Slot,
    Local(u32),
    Const(Value),
}

/// Operand source for the unified i32-binop lowering helper.
#[derive(Clone, Copy)]
enum BinSrc {
    /// Abstract stack cell (index into the lowering stack; popped).
    Stack(usize),
    /// Local register (from a flat fused form; not on the stack).
    Local(u32),
    /// Immediate (from a flat fused form).
    Konst(i32),
}

struct Lowerer<'m> {
    module: &'m Module,
    cf: &'m CompiledFunc,
    n_locals: u32,
    rops: Vec<ROp>,
    rbranches: Vec<RBranch>,
    consts: Vec<Value>,
    stack: Vec<Abs>,
    /// Max abstract stack height seen (drives `frame_size`).
    max_h: u32,
    /// flat pc -> register-form pc.
    pc_map: Vec<u32>,
    /// Whether the current flat pc is reachable; dead ops lower to
    /// nothing (they still get a pc mapping for the side table).
    reachable: bool,
    /// `(rop index, dst register)` of the last emitted op when it is pure
    /// and retargetable — fuel for write-back and compare-branch fusion.
    last_pure: Option<(usize, u32)>,
    /// Live address-expression fusion candidates (see [`Pending`]); unlike
    /// `last_pure` they survive intervening pure ops, so a store value
    /// computed between an address chain and the store still fuses, and
    /// multi-op chains (`base + idx*scale + disp`) compose across entries.
    pendings: Vec<Pending>,
}

/// Lower `module`'s local function `local_idx` from flat to register
/// form. Requires (and triggers) the flat compilation.
pub fn lower_func(module: &Module, local_idx: u32) -> RegFunc {
    let cf = module.compiled_func(local_idx);
    let n_locals = cf.argc + cf.locals_init.len() as u32;

    // Entry stack height of every branch target (u32::MAX = not a
    // target): the target block starts at `height` plus the carried
    // values. Function-level targets point at the shared `Return`
    // trampoline and recover `ret_arity` the same way.
    let mut entry_height = vec![u32::MAX; cf.ops.len()];
    for bt in cf.branches.iter() {
        entry_height[bt.pc as usize] = bt.height + bt.arity as u32;
    }

    let mut lw = Lowerer {
        module,
        cf,
        n_locals,
        rops: Vec::with_capacity(cf.ops.len()),
        rbranches: cf
            .branches
            .iter()
            .map(|bt| RBranch {
                pc: bt.pc,
                src: 0,
                dst: 0,
                n: 0,
            })
            .collect(),
        consts: Vec::new(),
        stack: Vec::new(),
        max_h: 0,
        pc_map: vec![0; cf.ops.len()],
        reachable: true,
        last_pure: None,
        pendings: Vec::with_capacity(PENDING_CAP),
    };

    for pc in 0..cf.ops.len() {
        lw.lower_op(pc, cf.ops[pc], &entry_height);
    }

    // Retarget the side table from flat pcs to register-form pcs.
    // Branch targets are always revived by `lower_op`, so their mapping
    // is never the dead-op sentinel.
    let mut rbranches = lw.rbranches;
    for rb in &mut rbranches {
        debug_assert_ne!(lw.pc_map[rb.pc as usize], u32::MAX);
        rb.pc = lw.pc_map[rb.pc as usize];
    }

    RegFunc {
        ops: lw.rops.into_boxed_slice(),
        branches: rbranches.into_boxed_slice(),
        consts: lw.consts.into_boxed_slice(),
        locals_init: cf.locals_init.clone(),
        argc: cf.argc,
        ret_arity: cf.ret_arity,
        n_locals,
        frame_size: n_locals + lw.max_h,
        pc_map: lw.pc_map.into_boxed_slice(),
    }
}

impl Lowerer<'_> {
    fn h(&self) -> usize {
        self.stack.len()
    }

    /// Register of stack cell `i`.
    fn slot(&self, i: usize) -> u32 {
        self.n_locals + i as u32
    }

    fn push(&mut self, a: Abs) {
        self.stack.push(a);
        self.max_h = self.max_h.max(self.stack.len() as u32);
    }

    fn emit(&mut self, op: ROp) {
        self.last_pure = None;
        self.pendings.clear();
        self.rops.push(op);
    }

    /// Expression currently held by register `r`, plus the pending entry
    /// (by index) that computes it, when one is live.
    fn resolve(&self, r: u32) -> (AddrExpr, Option<usize>) {
        match self.pendings.iter().position(|p| p.dst == r) {
            Some(i) => (self.pendings[i].expr, Some(i)),
            None => (AddrExpr::leaf(r), None),
        }
    }

    /// When `op` extends an address computation, build the composed
    /// pending entry it would create (chaining through entries its
    /// operands resolve to). `at` is the rop index `op` will occupy.
    fn addr_candidate(&self, op: &ROp, dst: u32, at: usize) -> Option<Pending> {
        let single = |expr| Pending::single(at, dst, expr);
        match *op {
            ROp::I32BinC {
                op: I32Op::Add,
                dst: d,
                a,
                k,
            } if d == dst => {
                let (ea, src) = self.resolve(a);
                let expr = AddrExpr {
                    k: ea.k.wrapping_add(k),
                    ..ea
                };
                match src {
                    Some(i) => Pending::chained(at, dst, expr, Some(&self.pendings[i]), None).or(
                        Some(single(AddrExpr {
                            k,
                            ..AddrExpr::leaf(a)
                        })),
                    ),
                    None => Some(single(expr)),
                }
            }
            ROp::I32BinC {
                op: I32Op::Mul,
                dst: d,
                a,
                k,
            } if d == dst && k > 0 => {
                let sh = (k as u32)
                    .is_power_of_two()
                    .then(|| k.trailing_zeros() as u8)?;
                let (ea, src) = self.resolve(a);
                match src.and_then(|i| Some((ea.shl(sh)?, i))) {
                    Some((expr, i)) => {
                        Pending::chained(at, dst, expr, Some(&self.pendings[i]), None)
                            .or(Some(single(AddrExpr::leaf(a).shl(sh)?)))
                    }
                    None => Some(single(AddrExpr::leaf(a).shl(sh)?)),
                }
            }
            ROp::I32BinC {
                op: I32Op::Shl,
                dst: d,
                a,
                k,
            } if d == dst && (0..32).contains(&k) => {
                let sh = k as u8;
                let (ea, src) = self.resolve(a);
                match src.and_then(|i| Some((ea.shl(sh)?, i))) {
                    Some((expr, i)) => {
                        Pending::chained(at, dst, expr, Some(&self.pendings[i]), None)
                            .or(Some(single(AddrExpr::leaf(a).shl(sh)?)))
                    }
                    None => Some(single(AddrExpr::leaf(a).shl(sh)?)),
                }
            }
            ROp::I32Bin {
                op: I32Op::Add,
                dst: d,
                a,
                b,
            } if d == dst && a != b => {
                let (ea, sa) = self.resolve(a);
                let (eb, sb) = self.resolve(b);
                let fallback = || AddrExpr::leaf(a).add(AddrExpr::leaf(b)).map(single);
                match ea.add(eb) {
                    Some(expr) => Pending::chained(
                        at,
                        dst,
                        expr,
                        sa.map(|i| &self.pendings[i]),
                        sb.map(|i| &self.pendings[i]),
                    )
                    .or_else(fallback),
                    None => fallback(),
                }
            }
            _ => None,
        }
    }

    fn emit_pure(&mut self, op: ROp, dst: u32) {
        let at = self.rops.len();
        // Compose a new address-chain candidate *before* the kill pass, so
        // entries this op consumes transfer their emitted ops into it.
        let cand = self.addr_candidate(&op, dst, at);
        // Kill every entry the op invalidates: result register overwritten,
        // a leaf operand overwritten, or its result consumed here (the
        // consumed chain either transfers into `cand` or must stay emitted).
        match pure_reads(&op) {
            Some(reads) => self
                .pendings
                .retain(|e| e.dst != dst && !e.expr.uses(dst) && !reads.contains(&e.dst)),
            None => self.pendings.clear(),
        }
        self.rops.push(op);
        self.last_pure = Some((at, dst));
        if let Some(p) = cand {
            if self.pendings.len() == PENDING_CAP {
                self.pendings.remove(0);
            }
            self.pendings.push(p);
        }
    }

    fn const_idx(&mut self, v: Value) -> u32 {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn emit_const_to(&mut self, dst: u32, v: Value) {
        match v {
            Value::I32(k) => self.emit(ROp::ConstI32 { dst, k }),
            v => {
                let idx = self.const_idx(v);
                self.emit(ROp::Const { dst, idx });
            }
        }
    }

    /// Force stack cell `i` into its register.
    fn materialize(&mut self, i: usize) {
        match self.stack[i] {
            Abs::Slot => {}
            Abs::Local(l) => {
                let dst = self.slot(i);
                self.emit(ROp::Copy { dst, src: l });
                self.stack[i] = Abs::Slot;
            }
            Abs::Const(v) => {
                let dst = self.slot(i);
                self.emit_const_to(dst, v);
                self.stack[i] = Abs::Slot;
            }
        }
    }

    /// Flush the whole abstract stack into registers (control-flow merge
    /// discipline: branches and block entries see only materialized
    /// values).
    fn materialize_all(&mut self) {
        for i in 0..self.stack.len() {
            self.materialize(i);
        }
    }

    /// Materialize every cell aliasing local `l` *before* `l` is
    /// overwritten.
    fn invalidate_local(&mut self, l: u32) {
        for i in 0..self.stack.len() {
            if matches!(self.stack[i], Abs::Local(x) if x == l) {
                self.materialize(i);
            }
        }
    }

    /// Register holding stack cell `i` (materializes constants).
    fn operand_reg(&mut self, i: usize) -> u32 {
        match self.stack[i] {
            Abs::Slot => self.slot(i),
            Abs::Local(l) => l,
            Abs::Const(_) => {
                self.materialize(i);
                self.slot(i)
            }
        }
    }

    fn const_i32_at(&self, i: usize) -> Option<i32> {
        match self.stack[i] {
            Abs::Const(Value::I32(k)) => Some(k),
            _ => None,
        }
    }

    /// Compute the move descriptor for branch record `b` from the current
    /// (fully materialized) stack height.
    fn fill_branch(&mut self, b: u32) {
        let bt = self.cf.branches[b as usize];
        let arity = bt.arity as u32;
        let src = self.n_locals + self.stack.len() as u32 - arity;
        let dst = self.n_locals + bt.height;
        self.rbranches[b as usize] = RBranch {
            pc: bt.pc,
            src,
            dst,
            n: if src == dst { 0 } else { arity },
        };
    }

    /// Try to rewrite the just-emitted pure op (whose result is the
    /// top-of-stack slot) to write local `l` directly. Fails when the
    /// producer isn't the immediately preceding op or when a live stack
    /// cell still aliases `l` (the alias would observe the new value).
    fn try_writeback(&mut self, l: u32) -> bool {
        let top = self.stack.len() - 1;
        if !matches!(self.stack[top], Abs::Slot) {
            return false;
        }
        if self.stack[..top]
            .iter()
            .any(|a| matches!(a, Abs::Local(x) if *x == l))
        {
            return false;
        }
        if let Some((i, d)) = self.last_pure {
            if i + 1 == self.rops.len() && d == self.slot(top) {
                *self.rops[i].dst_mut().expect("pure ops are retargetable") = l;
                self.last_pure = None;
                // The retargeted op may be (or may clobber) the pending
                // address add — no longer safe to fuse.
                self.pendings.clear();
                return true;
            }
        }
        false
    }

    /// Unified lowering for every flat i32-binop form: folds constant
    /// operands, canonicalizes constants to the `k` side of
    /// [`ROp::I32BinC`] (swapping when commutative), and writes either a
    /// fresh stack slot (`wb == None`) or a local.
    fn i32bin(&mut self, op: I32Op, a: BinSrc, b: BinSrc, wb: Option<u32>) {
        let kof = |this: &Self, s: BinSrc| match s {
            BinSrc::Stack(i) => this.const_i32_at(i),
            BinSrc::Konst(k) => Some(k),
            BinSrc::Local(_) => None,
        };
        let pops = matches!(a, BinSrc::Stack(_)) as usize + matches!(b, BinSrc::Stack(_)) as usize;
        let (ka, kb) = (kof(self, a), kof(self, b));

        if let (Some(ka), Some(kb)) = (ka, kb) {
            let folded = Value::I32(op.eval(ka, kb));
            self.stack.truncate(self.stack.len() - pops);
            match wb {
                None => self.push(Abs::Const(folded)),
                Some(l) => {
                    self.invalidate_local(l);
                    self.emit_const_to(l, folded);
                }
            }
            return;
        }

        let rof = |this: &mut Self, s: BinSrc| match s {
            BinSrc::Stack(i) => this.operand_reg(i),
            BinSrc::Local(l) => l,
            BinSrc::Konst(_) => unreachable!("const operands handled above"),
        };
        enum Form {
            RC { a: u32, k: i32 },
            RR { a: u32, b: u32 },
        }
        let form = if let Some(k) = kb {
            let a = rof(self, a);
            Form::RC { a, k }
        } else if let (Some(k), true) = (ka, op.commutative()) {
            let a = rof(self, b);
            Form::RC { a, k }
        } else {
            let ra = rof(self, a);
            let rb = rof(self, b);
            Form::RR { a: ra, b: rb }
        };
        self.stack.truncate(self.stack.len() - pops);
        let dst = match wb {
            None => self.slot(self.stack.len()),
            Some(l) => {
                self.invalidate_local(l);
                l
            }
        };
        let rop = match form {
            Form::RC { a, k } => ROp::I32BinC { op, dst, a, k },
            Form::RR { a, b } => ROp::I32Bin { op, dst, a, b },
        };
        match wb {
            None => {
                self.push(Abs::Slot);
                self.emit_pure(rop, dst);
            }
            Some(_) => self.emit(rop),
        }
    }

    /// Conditional branch on the abstract top of stack. `negate` = branch
    /// on zero. Folds constant conditions and fuses an immediately
    /// preceding i32 compare/binop into `BrIfCmp`/`BrIfCmpC`.
    fn cond_branch(&mut self, br: u32, negate: bool) {
        let top = self.stack.len() - 1;
        if let Some(k) = self.const_i32_at(top) {
            self.stack.pop();
            if (k != 0) != negate {
                self.materialize_all();
                self.fill_branch(br);
                self.emit(ROp::Br(br));
                self.reachable = false;
            }
            return;
        }
        if matches!(self.stack[top], Abs::Slot) {
            if let Some((i, d)) = self.last_pure {
                if i + 1 == self.rops.len() && d == self.slot(top) {
                    // `BrIfCmp` branches when the fused op is non-zero, so
                    // any producer fuses directly; the zero-branch needs
                    // the comparison's total-order dual.
                    let fused = match self.rops[i] {
                        ROp::I32Bin { op, dst, a, b } if dst == d => {
                            let fop = if negate { op.negate() } else { Some(op) };
                            fop.map(|op| ROp::BrIfCmp { op, a, b, br })
                        }
                        ROp::I32BinC { op, dst, a, k } if dst == d => {
                            let fop = if negate { op.negate() } else { Some(op) };
                            fop.map(|op| ROp::BrIfCmpC { op, a, k, br })
                        }
                        _ => None,
                    };
                    if let Some(rop) = fused {
                        self.rops.pop();
                        self.last_pure = None;
                        self.pendings.clear();
                        self.stack.pop();
                        self.materialize_all();
                        self.fill_branch(br);
                        self.emit(rop);
                        return;
                    }
                }
            }
        }
        let cond = self.operand_reg(top);
        self.stack.pop();
        self.materialize_all();
        self.fill_branch(br);
        self.emit(if negate {
            ROp::BrIfZ { cond, br }
        } else {
            ROp::BrIf { cond, br }
        });
    }

    /// Common call shape: materialize the top `argc` cells as the callee
    /// window, pop them, push the (single) result slot.
    fn call_window(&mut self, argc: usize, ret_arity: u32, mk: impl FnOnce(u32) -> ROp) {
        let h = self.stack.len();
        for i in (h - argc)..h {
            self.materialize(i);
        }
        let base = self.slot(h - argc);
        self.stack.truncate(h - argc);
        let rop = mk(base);
        if ret_arity == 1 {
            self.push(Abs::Slot);
        }
        self.emit(rop);
    }

    fn load_push(&mut self, kind: LoadKind, addr: u32, off: u32) {
        let dst = self.slot(self.stack.len());
        self.push(Abs::Slot);
        self.emit_pure(
            ROp::Load {
                kind,
                dst,
                addr,
                off,
            },
            dst,
        );
    }

    /// When the address in stack cell `cell` was produced by a still-live
    /// address chain (see [`Lowerer::pendings`]), remove the chain's ops
    /// from the emitted stream and return its shape so the caller can
    /// fold the whole address computation into the memory access itself
    /// (every intermediate result slot is consumed by the access, hence
    /// dead). `forbidden` names a register the caller will overwrite
    /// *before* the fused access runs (a constant store value
    /// materializing into its slot) — a chain leaf living there must not
    /// be carried across that write. `at_only` restricts the match to
    /// the register-plus-constant shape (the only one with a const-value
    /// store form); non-matching entries are left alive and unfused.
    fn take_addr(&mut self, cell: usize, forbidden: u32, at_only: bool) -> Option<AddrForm> {
        if !matches!(self.stack[cell], Abs::Slot) {
            return None;
        }
        let dst = self.slot(cell);
        let pos = self.pendings.iter().position(|p| p.dst == dst)?;
        let e = &self.pendings[pos].expr;
        if e.uses(forbidden) {
            return None;
        }
        let lim = u16::MAX as u32;
        let form = match (e.base, e.idx) {
            (Some(a), None) if a <= lim => AddrForm::At {
                a: a as u16,
                k: e.k,
            },
            _ if at_only => return None,
            (Some(a), Some((b, 0))) if e.k == 0 && a <= lim && b <= lim => AddrForm::Rr {
                a: a as u16,
                b: b as u16,
            },
            (Some(a), Some((b, sh))) if a <= lim && b <= lim => AddrForm::Bis {
                a: a as u16,
                b: b as u16,
                sh,
                k: i16::try_from(e.k).ok()?,
            },
            _ => return None,
        };
        let p = self.pendings.remove(pos);
        // Ops emitted after a removed chain op shift down; their flat pcs
        // are not branch targets (a target would have cleared the
        // candidate at the join), so the side table never sees the skew.
        let removed = &p.idxs[..p.n as usize];
        for &idx in removed.iter().rev() {
            self.rops.remove(idx as usize);
        }
        for other in &mut self.pendings {
            for j in 0..other.n as usize {
                let shift = removed.iter().filter(|&&r| r < other.idxs[j]).count();
                other.idxs[j] -= shift as u32;
            }
        }
        self.last_pure = None;
        Some(form)
    }

    /// A narrow store keeps only the low bits, so a just-emitted low-bit
    /// mask of the stored value is redundant — drop the `and` and store
    /// the unmasked register: `(x & 0xff) as u8 == x as u8`. The mask is
    /// non-trapping and its result is consumed solely by this store, so
    /// result, trap order and fuel (block meters count source ops) are
    /// all unchanged.
    fn drop_store_mask(&mut self, kind: StoreKind, h: usize) {
        let mask = match kind {
            StoreKind::I32Lo8 => 0xff,
            StoreKind::I32Lo16 => 0xffff,
            _ => return,
        };
        if !matches!(self.stack[h - 1], Abs::Slot) {
            return;
        }
        let Some((i, d)) = self.last_pure else { return };
        if i + 1 != self.rops.len() || d != self.slot(h - 1) {
            return;
        }
        if let ROp::I32BinC {
            op: I32Op::And,
            dst,
            a,
            k,
        } = self.rops[i]
        {
            // A stack operand always lands back in its own slot (`a == d`);
            // a fused-local operand re-points the cell at the local.
            if dst == d && k == mask && (a == d || a < self.n_locals) {
                self.rops.pop();
                self.last_pure = None;
                if a != d {
                    self.stack[h - 1] = Abs::Local(a);
                }
            }
        }
    }

    /// Rebuild a taken-but-unfusable base-index-scale chain in place:
    /// `regs[dst] = regs[a] + (regs[b] << sh) + k` via plain ops (cold
    /// fallback when a packed field doesn't fit).
    fn reemit_chain(&mut self, dst: u32, a: u16, b: u16, sh: u8, k: i16) {
        self.emit(ROp::I32BinC {
            op: I32Op::Shl,
            dst,
            a: b as u32,
            k: sh as i32,
        });
        self.emit(ROp::I32Bin {
            op: I32Op::Add,
            dst,
            a: a as u32,
            b: dst,
        });
        if k != 0 {
            self.emit(ROp::I32BinC {
                op: I32Op::Add,
                dst,
                a: dst,
                k: k as i32,
            });
        }
    }

    /// Lower a flat store: fold a small-width constant value into the op
    /// itself when possible, and fold any pending address chain into the
    /// access.
    fn lower_store(&mut self, kind: StoreKind, off: u32) {
        let h = self.h();
        self.drop_store_mask(kind, h);
        // An i32 value or f32 bit pattern rides in the op directly — the
        // constant then never needs a register, so no pending address
        // chain is clobbered by materializing it.
        let cbits = match (self.stack[h - 1], kind) {
            (
                Abs::Const(Value::I32(v)),
                StoreKind::I32 | StoreKind::I32Lo8 | StoreKind::I32Lo16,
            ) => Some(v as u32),
            (Abs::Const(Value::F32(f)), StoreKind::F32) => Some(f.to_bits()),
            _ => None,
        };
        if let Some(v) = cbits {
            if let Some(AddrForm::At { a, k }) = self.take_addr(h - 2, u32::MAX, true) {
                self.stack.truncate(h - 2);
                self.emit(ROp::StoreCAt { kind, a, k, v, off });
                return;
            }
            let addr = self.operand_reg(h - 2);
            if let Ok(a) = u16::try_from(addr) {
                self.stack.truncate(h - 2);
                self.emit(ROp::StoreCAt {
                    kind,
                    a,
                    k: 0,
                    v,
                    off,
                });
                return;
            }
            // Address register out of packed range: take the value path.
        }
        // A constant store value materializes into `slot(h-1)` between
        // the address chain and the fused access, so a chain leaf living
        // there cannot be carried across.
        let forbidden = if matches!(self.stack[h - 1], Abs::Const(_)) {
            self.slot(h - 1)
        } else {
            u32::MAX
        };
        let fused = self.take_addr(h - 2, forbidden, false);
        let val = self.operand_reg(h - 1);
        let fits = val <= u16::MAX as u32;
        let rop = match fused {
            Some(AddrForm::At { a, k }) if fits => ROp::StoreAt {
                kind,
                a,
                k,
                val: val as u16,
                off,
            },
            Some(AddrForm::Rr { a, b }) if fits => ROp::StoreRR {
                kind,
                a,
                b,
                val: val as u16,
                off,
            },
            Some(AddrForm::Bis { a, b, sh, k }) if fits => ROp::StoreBis {
                kind,
                a,
                b,
                sh,
                k,
                val: val as u16,
                off,
            },
            // Value register out of u16 range: rebuild the peeled-off
            // address chain and fall back to the plain store.
            Some(AddrForm::At { a, k }) => {
                let addr = self.slot(h - 2);
                self.emit(ROp::I32BinC {
                    op: I32Op::Add,
                    dst: addr,
                    a: a as u32,
                    k,
                });
                ROp::Store {
                    kind,
                    addr,
                    val,
                    off,
                }
            }
            Some(AddrForm::Rr { a, b }) => {
                let addr = self.slot(h - 2);
                self.emit(ROp::I32Bin {
                    op: I32Op::Add,
                    dst: addr,
                    a: a as u32,
                    b: b as u32,
                });
                ROp::Store {
                    kind,
                    addr,
                    val,
                    off,
                }
            }
            Some(AddrForm::Bis { a, b, sh, k }) => {
                let addr = self.slot(h - 2);
                self.reemit_chain(addr, a, b, sh, k);
                ROp::Store {
                    kind,
                    addr,
                    val,
                    off,
                }
            }
            None => {
                let addr = self.operand_reg(h - 2);
                ROp::Store {
                    kind,
                    addr,
                    val,
                    off,
                }
            }
        };
        self.stack.truncate(h - 2);
        self.emit(rop);
    }
}

/// How many live address-chain candidates to track at once.
const PENDING_CAP: usize = 4;
/// Longest chain of emitted ops a single candidate may replace.
const CHAIN_CAP: usize = 4;

/// Affine address expression over leaf registers:
/// `base? +wrap (idx <<wrap sh)? +wrap k`, all i32 wrapping arithmetic —
/// the closure of add/shift/mul-by-power-of-two chains that memory
/// accesses can absorb.
#[derive(Clone, Copy)]
struct AddrExpr {
    base: Option<u32>,
    idx: Option<(u32, u8)>,
    k: i32,
}

impl AddrExpr {
    fn leaf(r: u32) -> AddrExpr {
        AddrExpr {
            base: Some(r),
            idx: None,
            k: 0,
        }
    }

    fn uses(&self, r: u32) -> bool {
        self.base == Some(r) || matches!(self.idx, Some((b, _)) if b == r)
    }

    /// Wrapping sum of two expressions, when the result still fits the
    /// base-index-scale shape (a spare base can serve as an unscaled
    /// index, and vice versa).
    fn add(self, o: AddrExpr) -> Option<AddrExpr> {
        let k = self.k.wrapping_add(o.k);
        let mut base = None;
        let mut idx = None;
        for b in [self.base, o.base].into_iter().flatten() {
            if base.is_none() {
                base = Some(b);
            } else if idx.is_none() {
                idx = Some((b, 0));
            } else {
                return None;
            }
        }
        for i in [self.idx, o.idx].into_iter().flatten() {
            if idx.is_none() {
                idx = Some(i);
            } else if base.is_none() && i.1 == 0 {
                base = Some(i.0);
            } else if base.is_none() && idx.is_some_and(|(_, s)| s == 0) {
                base = idx.map(|(r, _)| r);
                idx = Some(i);
            } else {
                return None;
            }
        }
        Some(AddrExpr { base, idx, k })
    }

    /// `(self << sh)`: distributes over the wrapping sum, but only a
    /// base-plus-constant expression stays representable (nested scaling
    /// is not).
    fn shl(self, sh: u8) -> Option<AddrExpr> {
        match (self.base, self.idx) {
            (Some(b), None) => Some(AddrExpr {
                base: None,
                idx: Some((b, sh)),
                k: self.k.wrapping_shl(sh as u32),
            }),
            _ => None,
        }
    }
}

/// The fusable shapes a consumed address chain collapses to.
#[derive(Clone, Copy)]
enum AddrForm {
    /// `regs[a] + k`
    At { a: u16, k: i32 },
    /// `regs[a] + regs[b]`
    Rr { a: u16, b: u16 },
    /// `regs[a] + (regs[b] << sh) + k`
    Bis { a: u16, b: u16, sh: u8, k: i16 },
}

/// A live address-chain candidate: `rops[idxs[..n]]` together compute
/// `dst = expr`. The candidate dies the moment any op could invalidate
/// the fusion — an impure emit, a write to a leaf register or the
/// destination, a read of the destination by an op that doesn't extend
/// the chain, a control-flow join, or a write-back retarget.
struct Pending {
    /// Emitted-op indices of the chain, ascending; all removed on fusion.
    idxs: [u32; CHAIN_CAP],
    n: u8,
    dst: u32,
    expr: AddrExpr,
}

impl Pending {
    fn single(at: usize, dst: u32, expr: AddrExpr) -> Pending {
        let mut idxs = [0u32; CHAIN_CAP];
        idxs[0] = at as u32;
        Pending {
            idxs,
            n: 1,
            dst,
            expr,
        }
    }

    /// Chain `at` onto the ops of up to two consumed source entries;
    /// fails when the combined chain outgrows [`CHAIN_CAP`].
    fn chained(
        at: usize,
        dst: u32,
        expr: AddrExpr,
        a: Option<&Pending>,
        b: Option<&Pending>,
    ) -> Option<Pending> {
        let na = a.map_or(0, |p| p.n as usize);
        let nb = b.map_or(0, |p| p.n as usize);
        if na + nb + 1 > CHAIN_CAP {
            return None;
        }
        let mut idxs = [0u32; CHAIN_CAP];
        let mut n = 0;
        for src in [a, b].into_iter().flatten() {
            idxs[n..n + src.n as usize].copy_from_slice(&src.idxs[..src.n as usize]);
            n += src.n as usize;
        }
        idxs[n] = at as u32;
        n += 1;
        idxs[..n].sort_unstable();
        Some(Pending {
            idxs,
            n: n as u8,
            dst,
            expr,
        })
    }
}

/// Register operands read by a pure op — a closed set (everything routed
/// through `emit_pure`); `None` means "unknown, assume it reads anything".
/// `u32::MAX` pads unused positions (no frame register reaches it).
fn pure_reads(op: &ROp) -> Option<[u32; 2]> {
    const NO: u32 = u32::MAX;
    Some(match *op {
        ROp::I32Bin { a, b, .. } => [a, b],
        ROp::I64Bin { a, b, .. } => [a, b],
        ROp::Bin { a, b, .. } => [a, b],
        ROp::LoadRR { a, b, .. } => [a as u32, b as u32],
        ROp::I32BinC { a, .. } | ROp::Un { a, .. } => [a, NO],
        ROp::Load { addr, .. } => [addr, NO],
        ROp::LoadAt { a, .. } => [a as u32, NO],
        ROp::GlobalGet { .. } | ROp::MemorySize { .. } => [NO, NO],
        _ => return None,
    })
}

impl Lowerer<'_> {
    fn lower_op(&mut self, pc: usize, op: Op, eh: &[u32]) {
        if !self.reachable {
            let e = eh[pc];
            if e == u32::MAX {
                // Dead op: not lowered. The sentinel doubles as the
                // liveness witness the static analyzer checks against
                // its own reachability mirror.
                self.pc_map[pc] = u32::MAX;
                return;
            }
            // Branch target: resume with a fully materialized stack of
            // the recorded entry height.
            self.stack.clear();
            self.stack.resize(e as usize, Abs::Slot);
            self.max_h = self.max_h.max(e);
            self.reachable = true;
            self.last_pure = None;
            self.pendings.clear();
        } else if eh[pc] != u32::MAX {
            // Join point reachable by both fall-through and branch: flush
            // so the abstract state matches what branch arrivals leave in
            // the registers (a branch arrival did not run the fall-through
            // ops, so nothing emitted above may be fused past this line).
            self.materialize_all();
            self.last_pure = None;
            self.pendings.clear();
            debug_assert_eq!(self.stack.len() as u32, eh[pc]);
        }
        self.pc_map[pc] = self.rops.len() as u32;

        match op {
            Op::Meter { cost, peak } => {
                let entry = self.stack.len() as u32;
                self.emit(ROp::Meter { cost, entry, peak });
            }
            Op::Unreachable => {
                self.emit(ROp::Unreachable);
                self.reachable = false;
            }
            Op::Br(b) => {
                self.materialize_all();
                self.fill_branch(b);
                self.emit(ROp::Br(b));
                self.reachable = false;
            }
            Op::BrIf(b) => self.cond_branch(b, false),
            Op::BrIfZ(b) => self.cond_branch(b, true),
            Op::BrIfCmp { op, br } => {
                let h = self.h();
                let (ia, ib) = (h - 2, h - 1);
                match (self.const_i32_at(ia), self.const_i32_at(ib)) {
                    (Some(ka), Some(kb)) => {
                        self.stack.truncate(ia);
                        if op.eval(ka, kb) != 0 {
                            self.materialize_all();
                            self.fill_branch(br);
                            self.emit(ROp::Br(br));
                            self.reachable = false;
                        }
                    }
                    (_, Some(k)) => {
                        let a = self.operand_reg(ia);
                        self.stack.truncate(ia);
                        self.materialize_all();
                        self.fill_branch(br);
                        self.emit(ROp::BrIfCmpC { op, a, k, br });
                    }
                    (Some(k), None) if op.commutative() => {
                        let a = self.operand_reg(ib);
                        self.stack.truncate(ia);
                        self.materialize_all();
                        self.fill_branch(br);
                        self.emit(ROp::BrIfCmpC { op, a, k, br });
                    }
                    _ => {
                        let a = self.operand_reg(ia);
                        let b = self.operand_reg(ib);
                        self.stack.truncate(ia);
                        self.materialize_all();
                        self.fill_branch(br);
                        self.emit(ROp::BrIfCmp { op, a, b, br });
                    }
                }
            }
            Op::BrIfLL { op, a, b, br } => {
                self.materialize_all();
                self.fill_branch(br);
                self.emit(ROp::BrIfCmp {
                    op,
                    a: a as u32,
                    b: b as u32,
                    br,
                });
            }
            Op::BrTable { start, n } => {
                let top = self.h() - 1;
                if let Some(k) = self.const_i32_at(top) {
                    self.stack.pop();
                    let chosen = start + (k as u32).min(n);
                    self.materialize_all();
                    self.fill_branch(chosen);
                    self.emit(ROp::Br(chosen));
                } else {
                    let sel = self.operand_reg(top);
                    self.stack.pop();
                    self.materialize_all();
                    for i in 0..=n {
                        self.fill_branch(start + i);
                    }
                    self.emit(ROp::BrTable { sel, start, n });
                }
                self.reachable = false;
            }
            Op::Return => {
                let src = if self.cf.ret_arity == 1 {
                    self.operand_reg(self.h() - 1)
                } else {
                    0
                };
                self.emit(ROp::Return { src });
                self.reachable = false;
            }
            Op::CallWasm(f) => {
                let callee = self.module.compiled_func(f);
                let (argc, ret) = (callee.argc as usize, callee.ret_arity);
                self.call_window(argc, ret, |base| ROp::CallWasm { f, base });
            }
            Op::CallHost { f, argc, ret } => {
                self.call_window((argc) as usize, (ret != 0) as u32, |base| ROp::CallHost {
                    f,
                    base,
                    argc,
                    ret,
                });
            }
            Op::CallIndirect(ty) => {
                let ft = &self.module.types[ty as usize];
                let (argc, ret) = (ft.params.len(), ft.results.len() as u32);
                let h = self.h();
                for i in (h - argc - 1)..h {
                    self.materialize(i);
                }
                let base = self.slot(h - argc - 1);
                self.stack.truncate(h - argc - 1);
                if ret == 1 {
                    self.push(Abs::Slot);
                }
                self.emit(ROp::CallIndirect { ty, base });
            }
            Op::Drop => {
                self.stack.pop();
            }
            Op::Select => {
                let h = self.h();
                let (ia, ib, ic) = (h - 3, h - 2, h - 1);
                if let Some(k) = self.const_i32_at(ic) {
                    self.stack.pop();
                    if k != 0 {
                        self.stack.pop(); // keep a, drop b
                    } else {
                        // keep b at a's position
                        if matches!(self.stack[ib], Abs::Slot) {
                            let (dst, src) = (self.slot(ia), self.slot(ib));
                            self.emit(ROp::Copy { dst, src });
                            self.stack[ia] = Abs::Slot;
                        } else {
                            self.stack[ia] = self.stack[ib];
                        }
                        self.stack.pop();
                    }
                } else {
                    self.materialize(ia);
                    let b = self.operand_reg(ib);
                    let cond = self.operand_reg(ic);
                    let dst = self.slot(ia);
                    self.stack.truncate(ib);
                    self.emit(ROp::Select { dst, cond, b });
                }
            }
            Op::LocalGet(l) => self.push(Abs::Local(l)),
            Op::LocalGet2 { a, b } => {
                self.push(Abs::Local(a as u32));
                self.push(Abs::Local(b as u32));
            }
            Op::LocalSet(l) => {
                let top = self.h() - 1;
                match self.stack[top] {
                    Abs::Local(src) if src == l => {
                        self.stack.pop();
                    }
                    Abs::Local(src) => {
                        self.stack.pop();
                        self.invalidate_local(l);
                        self.emit(ROp::Copy { dst: l, src });
                    }
                    Abs::Const(v) => {
                        self.stack.pop();
                        self.invalidate_local(l);
                        self.emit_const_to(l, v);
                    }
                    Abs::Slot => {
                        if self.try_writeback(l) {
                            self.stack.pop();
                        } else {
                            let src = self.slot(top);
                            self.stack.pop();
                            self.invalidate_local(l);
                            self.emit(ROp::Copy { dst: l, src });
                        }
                    }
                }
            }
            Op::LocalTee(l) => {
                let top = self.h() - 1;
                match self.stack[top] {
                    Abs::Local(src) if src == l => {}
                    Abs::Local(src) => {
                        self.invalidate_local(l);
                        self.emit(ROp::Copy { dst: l, src });
                    }
                    Abs::Const(v) => {
                        self.invalidate_local(l);
                        self.emit_const_to(l, v);
                    }
                    Abs::Slot => {
                        if self.try_writeback(l) {
                            self.stack[top] = Abs::Local(l);
                        } else {
                            let src = self.slot(top);
                            self.invalidate_local(l);
                            self.emit(ROp::Copy { dst: l, src });
                        }
                    }
                }
            }
            Op::LocalSetC { dst, k } => {
                self.invalidate_local(dst as u32);
                self.emit(ROp::ConstI32 { dst: dst as u32, k });
            }
            Op::LocalCopy { src, dst } => {
                if src != dst {
                    self.invalidate_local(dst as u32);
                    self.emit(ROp::Copy {
                        dst: dst as u32,
                        src: src as u32,
                    });
                }
            }
            Op::GlobalGet(g) => {
                let dst = self.slot(self.h());
                self.push(Abs::Slot);
                self.emit_pure(ROp::GlobalGet { dst, g }, dst);
            }
            Op::GlobalSet(g) => {
                let src = self.operand_reg(self.h() - 1);
                self.stack.pop();
                self.emit(ROp::GlobalSet { g, src });
            }
            Op::I32Bin(op) => {
                let h = self.h();
                self.i32bin(op, BinSrc::Stack(h - 2), BinSrc::Stack(h - 1), None);
            }
            Op::I32BinLL { op, a, b } => {
                self.i32bin(op, BinSrc::Local(a as u32), BinSrc::Local(b as u32), None)
            }
            Op::I32BinSL { op, b } => {
                let h = self.h();
                self.i32bin(op, BinSrc::Stack(h - 1), BinSrc::Local(b as u32), None);
            }
            Op::I32BinSC { op, k } => {
                let h = self.h();
                self.i32bin(op, BinSrc::Stack(h - 1), BinSrc::Konst(k), None);
            }
            Op::I32BinLC { op, a, k } => {
                self.i32bin(op, BinSrc::Local(a as u32), BinSrc::Konst(k), None)
            }
            Op::I32BinLLSet { op, a, b, dst } => self.i32bin(
                op,
                BinSrc::Local(a as u32),
                BinSrc::Local(b as u32),
                Some(dst as u32),
            ),
            Op::I32BinLCSet { op, a, k, dst } => self.i32bin(
                op,
                BinSrc::Local(a as u32),
                BinSrc::Konst(k),
                Some(dst as u32),
            ),
            Op::I32BinSLSet { op, b, dst } => {
                let h = self.h();
                self.i32bin(
                    op,
                    BinSrc::Stack(h - 1),
                    BinSrc::Local(b as u32),
                    Some(dst as u32),
                );
            }
            Op::I32BinSCSet { op, k, dst } => {
                let h = self.h();
                self.i32bin(op, BinSrc::Stack(h - 1), BinSrc::Konst(k), Some(dst as u32));
            }
            Op::I32LoadL { l, off } => self.load_push(LoadKind::I32, l as u32, off),
            Op::I64LoadL { l, off } => self.load_push(LoadKind::I64, l as u32, off),
            Op::F64LoadL { l, off } => self.load_push(LoadKind::F64, l as u32, off),
            Op::I32Load8UL { l, off } => self.load_push(LoadKind::I32U8, l as u32, off),
            Op::I32LoadSet { off, dst } => {
                let top = self.h() - 1;
                let kind = LoadKind::I32;
                let fused = self.take_addr(top, u32::MAX, false);
                let addr = match fused {
                    Some(_) => 0, // unused; the fused forms carry a/b/k
                    None => self.operand_reg(top),
                };
                self.stack.pop();
                self.invalidate_local(dst as u32);
                let dst = dst as u32;
                self.emit(match fused {
                    Some(AddrForm::At { a, k }) => ROp::LoadAt {
                        kind,
                        dst,
                        a,
                        k,
                        off,
                    },
                    Some(AddrForm::Rr { a, b }) => ROp::LoadRR {
                        kind,
                        dst,
                        a,
                        b,
                        off,
                    },
                    // A flat-op local index always fits the packed field.
                    Some(AddrForm::Bis { a, b, sh, k }) => ROp::LoadBis {
                        kind,
                        dst: dst as u16,
                        a,
                        b,
                        sh,
                        k,
                        off,
                    },
                    None => ROp::Load {
                        kind,
                        dst,
                        addr,
                        off,
                    },
                });
            }
            Op::I32LoadLSet { l, off, dst } => {
                self.invalidate_local(dst as u32);
                self.emit(ROp::Load {
                    kind: LoadKind::I32,
                    dst: dst as u32,
                    addr: l as u32,
                    off,
                });
            }
            Op::MemorySize => {
                let dst = self.slot(self.h());
                self.push(Abs::Slot);
                self.emit_pure(ROp::MemorySize { dst }, dst);
            }
            Op::MemoryGrow => {
                let top = self.h() - 1;
                let delta = self.operand_reg(top);
                let dst = self.slot(top);
                self.stack[top] = Abs::Slot;
                self.emit(ROp::MemoryGrow { dst, delta });
            }
            Op::MemoryCopy => {
                let h = self.h();
                let len = self.operand_reg(h - 1);
                let src = self.operand_reg(h - 2);
                let dst = self.operand_reg(h - 3);
                self.stack.truncate(h - 3);
                self.emit(ROp::MemoryCopy { dst, src, len });
            }
            Op::MemoryFill => {
                let h = self.h();
                let len = self.operand_reg(h - 1);
                let val = self.operand_reg(h - 2);
                let dst = self.operand_reg(h - 3);
                self.stack.truncate(h - 3);
                self.emit(ROp::MemoryFill { dst, val, len });
            }
            Op::I32Const(k) => self.push(Abs::Const(Value::I32(k))),
            Op::I64Const(k) => self.push(Abs::Const(Value::I64(k))),
            Op::F32Const(k) => self.push(Abs::Const(Value::F32(k))),
            Op::F64Const(k) => self.push(Abs::Const(Value::F64(k))),
            other => {
                if let Some(op) = I64Op::from_op(other) {
                    let h = self.h();
                    let a = self.operand_reg(h - 2);
                    let b = self.operand_reg(h - 1);
                    let dst = self.slot(h - 2);
                    self.stack.truncate(h - 1);
                    self.stack[h - 2] = Abs::Slot;
                    self.emit_pure(ROp::I64Bin { op, dst, a, b }, dst);
                } else if let Some(op) = BinOp::from_op(other) {
                    let h = self.h();
                    let a = self.operand_reg(h - 2);
                    let b = self.operand_reg(h - 1);
                    let dst = self.slot(h - 2);
                    self.stack.truncate(h - 1);
                    self.stack[h - 2] = Abs::Slot;
                    self.emit_pure(ROp::Bin { op, dst, a, b }, dst);
                } else if let Some(op) = UnOp::from_op(other) {
                    let top = self.h() - 1;
                    // Fold a constant operand when the conversion can't
                    // trap on this value (a trapping conversion must stay
                    // at runtime, in trap order); fuel is unchanged — the
                    // block meter counts source instructions.
                    let folded = match self.stack[top] {
                        Abs::Const(v) => op.eval(v).ok(),
                        _ => None,
                    };
                    match folded {
                        Some(v) => self.stack[top] = Abs::Const(v),
                        None => {
                            let a = self.operand_reg(top);
                            let dst = self.slot(top);
                            self.stack[top] = Abs::Slot;
                            self.emit_pure(ROp::Un { op, dst, a }, dst);
                        }
                    }
                } else if let Some((kind, off)) = LoadKind::from_op(other) {
                    let top = self.h() - 1;
                    let fused = self.take_addr(top, u32::MAX, false);
                    let dst = self.slot(top);
                    match fused {
                        Some(AddrForm::At { a, k }) => {
                            self.stack[top] = Abs::Slot;
                            self.emit_pure(
                                ROp::LoadAt {
                                    kind,
                                    dst,
                                    a,
                                    k,
                                    off,
                                },
                                dst,
                            );
                        }
                        Some(AddrForm::Rr { a, b }) => {
                            self.stack[top] = Abs::Slot;
                            self.emit_pure(
                                ROp::LoadRR {
                                    kind,
                                    dst,
                                    a,
                                    b,
                                    off,
                                },
                                dst,
                            );
                        }
                        Some(AddrForm::Bis { a, b, sh, k }) => {
                            self.stack[top] = Abs::Slot;
                            match u16::try_from(dst) {
                                // `LoadBis` packs `dst` into 16 bits and is
                                // not write-back-retargetable, so it goes
                                // through the impure emit.
                                Ok(d) => self.emit(ROp::LoadBis {
                                    kind,
                                    dst: d,
                                    a,
                                    b,
                                    sh,
                                    k,
                                    off,
                                }),
                                Err(_) => {
                                    self.reemit_chain(dst, a, b, sh, k);
                                    self.emit_pure(
                                        ROp::Load {
                                            kind,
                                            dst,
                                            addr: dst,
                                            off,
                                        },
                                        dst,
                                    );
                                }
                            }
                        }
                        None => {
                            let addr = self.operand_reg(top);
                            self.stack[top] = Abs::Slot;
                            self.emit_pure(
                                ROp::Load {
                                    kind,
                                    dst,
                                    addr,
                                    off,
                                },
                                dst,
                            );
                        }
                    }
                } else if let Some((kind, off)) = StoreKind::from_op(other) {
                    self.lower_store(kind, off);
                } else {
                    unreachable!("unlowered flat op {other:?}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType;

    #[test]
    fn rop_enum_stays_small() {
        assert!(
            std::mem::size_of::<ROp>() <= 16,
            "ROp grew to {} bytes",
            std::mem::size_of::<ROp>()
        );
    }

    #[test]
    fn straight_line_lowers_to_three_address_form() {
        let mut b = ModuleBuilder::new();
        let sig = b.func_type(&[ValType::I32], &[ValType::I32]);
        b.begin_func(sig);
        b.code().local_get(0).i32_const(2).i32_mul();
        b.end_func().unwrap();
        let m = b.finish().expect("valid");
        let rf = lower_func(&m, 0);
        // Meter + mul-by-const straight into the result slot + return; no
        // copies, no const materialization.
        assert!(
            matches!(rf.ops[0], ROp::Meter { cost: 4, .. }),
            "ops: {:?}",
            rf.ops
        );
        assert!(
            matches!(
                rf.ops[1],
                ROp::I32BinC {
                    op: I32Op::Mul,
                    dst: 1,
                    a: 0,
                    k: 2
                }
            ),
            "ops: {:?}",
            rf.ops
        );
        assert!(
            matches!(rf.ops[2], ROp::Return { src: 1 }),
            "ops: {:?}",
            rf.ops
        );
        assert_eq!(rf.n_locals, 1);
        assert!(rf.frame_size >= 2);
    }

    #[test]
    fn local_write_back_retargets_pure_op() {
        let mut b = ModuleBuilder::new();
        let sig = b.func_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        b.begin_func(sig);
        // l0 = l0 + l1, then return l0.
        b.code()
            .local_get(0)
            .local_get(1)
            .i32_add()
            .local_set(0)
            .local_get(0);
        b.end_func().unwrap();
        let m = b.finish().expect("valid");
        let rf = lower_func(&m, 0);
        // The add must write local 0 directly — no Copy in the body.
        assert!(
            !rf.ops.iter().any(|op| matches!(op, ROp::Copy { .. })),
            "ops: {:?}",
            rf.ops
        );
        assert!(
            rf.ops
                .iter()
                .any(|op| matches!(op, ROp::I32Bin { dst: 0, .. } | ROp::I32BinC { dst: 0, .. })),
            "ops: {:?}",
            rf.ops
        );
    }

    #[test]
    fn const_pool_dedupes_wide_constants() {
        let mut b = ModuleBuilder::new();
        let sig = b.func_type(&[], &[ValType::I64]);
        b.begin_func(sig);
        b.code()
            .i64_const(7)
            .drop()
            .i64_const(7)
            .drop()
            .i64_const(7);
        b.end_func().unwrap();
        let m = b.finish().expect("valid");
        let rf = lower_func(&m, 0);
        assert_eq!(rf.consts.len(), 1, "consts: {:?}", rf.consts);
    }
}
