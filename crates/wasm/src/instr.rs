//! The decoded instruction set.
//!
//! Instructions are stored flat (one `Vec<Instr>` per function body) with
//! structured-control instructions carrying pre-resolved program counters:
//! `Block`/`If` know where their `End` is, `If` knows where its `Else` is.
//! These targets are patched by [`fixup_block_targets`] after decoding (the
//! module builder reuses the same pass), which lets the interpreter branch
//! without scanning for matching `end` opcodes at run time.

use crate::types::BlockType;

/// Alignment + offset immediate of a memory access instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemArg {
    /// log2 of the alignment hint (has no semantic effect in this VM).
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// Convenience constructor with natural alignment.
    pub fn offset(offset: u32) -> Self {
        MemArg { align: 0, offset }
    }
}

/// A decoded WebAssembly instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // -- control -----------------------------------------------------------
    /// Trap unconditionally.
    Unreachable,
    /// Do nothing.
    Nop,
    /// Begin a block; `end_pc` is the index of the matching `End`.
    Block {
        ty: BlockType,
        end_pc: u32,
    },
    /// Begin a loop (branch target is the loop header itself).
    Loop {
        ty: BlockType,
    },
    /// Conditional; `else_pc` is the matching `Else` (or `end_pc` when there
    /// is no else arm), `end_pc` the matching `End`.
    If {
        ty: BlockType,
        else_pc: u32,
        end_pc: u32,
    },
    /// Else arm separator; `end_pc` is the matching `End`.
    Else {
        end_pc: u32,
    },
    /// End of a block/loop/if or of the function body.
    End,
    /// Unconditional branch to the label `depth` levels up.
    Br {
        depth: u32,
    },
    /// Conditional branch.
    BrIf {
        depth: u32,
    },
    /// Indexed branch: `targets[i]` or `default`.
    BrTable {
        targets: Box<[u32]>,
        default: u32,
    },
    /// Return from the current function.
    Return,
    /// Call function by index (imports first).
    Call {
        func: u32,
    },
    /// Indirect call through the table; `type_idx` is the expected signature.
    CallIndirect {
        type_idx: u32,
    },

    // -- parametric --------------------------------------------------------
    /// Drop the top operand.
    Drop,
    /// Select between the second and third operands by the top i32.
    Select,

    // -- variables ---------------------------------------------------------
    /// Push a local.
    LocalGet(u32),
    /// Pop into a local.
    LocalSet(u32),
    /// Copy the top of stack into a local.
    LocalTee(u32),
    /// Push a global.
    GlobalGet(u32),
    /// Pop into a global.
    GlobalSet(u32),

    // -- memory ------------------------------------------------------------
    I32Load(MemArg),
    I64Load(MemArg),
    F32Load(MemArg),
    F64Load(MemArg),
    I32Load8S(MemArg),
    I32Load8U(MemArg),
    I32Load16S(MemArg),
    I32Load16U(MemArg),
    I64Load8S(MemArg),
    I64Load8U(MemArg),
    I64Load16S(MemArg),
    I64Load16U(MemArg),
    I64Load32S(MemArg),
    I64Load32U(MemArg),
    I32Store(MemArg),
    I64Store(MemArg),
    F32Store(MemArg),
    F64Store(MemArg),
    I32Store8(MemArg),
    I32Store16(MemArg),
    I64Store8(MemArg),
    I64Store16(MemArg),
    I64Store32(MemArg),
    /// Current memory size in pages.
    MemorySize,
    /// Grow memory; pushes the old size or -1.
    MemoryGrow,
    /// Bulk-memory: `memory.copy` (dst, src, len).
    MemoryCopy,
    /// Bulk-memory: `memory.fill` (dst, byte, len).
    MemoryFill,

    // -- constants ---------------------------------------------------------
    I32Const(i32),
    I64Const(i64),
    F32Const(f32),
    F64Const(f64),

    // -- i32 comparisons ---------------------------------------------------
    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,

    // -- i64 comparisons ---------------------------------------------------
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,

    // -- float comparisons -------------------------------------------------
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    // -- i32 arithmetic ----------------------------------------------------
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,

    // -- i64 arithmetic ----------------------------------------------------
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    // -- f32 arithmetic ----------------------------------------------------
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,

    // -- f64 arithmetic ----------------------------------------------------
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    // -- conversions -------------------------------------------------------
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,

    // -- sign extension ----------------------------------------------------
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,

    // -- saturating truncation (0xFC prefix) --------------------------------
    I32TruncSatF32S,
    I32TruncSatF32U,
    I32TruncSatF64S,
    I32TruncSatF64U,
    I64TruncSatF32S,
    I64TruncSatF32U,
    I64TruncSatF64S,
    I64TruncSatF64U,
}

/// Error from [`fixup_block_targets`]: the body's structured control
/// instructions do not nest properly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixupError {
    /// An `else` with no open `if`.
    DanglingElse,
    /// A second `else` for the same `if`.
    DuplicateElse,
    /// An `end` with no open block.
    DanglingEnd,
    /// Blocks left open at the end of the body.
    UnclosedBlock,
    /// Body does not terminate with the function-level `end`.
    MissingFinalEnd,
}

impl std::fmt::Display for FixupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FixupError::DanglingElse => "`else` without matching `if`",
            FixupError::DuplicateElse => "duplicate `else` in `if`",
            FixupError::DanglingEnd => "`end` without matching block",
            FixupError::UnclosedBlock => "unclosed block at end of body",
            FixupError::MissingFinalEnd => "function body missing final `end`",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for FixupError {}

/// Resolve `end_pc`/`else_pc` targets for all structured-control
/// instructions in a function body.
///
/// The body must consist of the function-level frame terminated by a final
/// `End` (as the binary format mandates). Used by both the decoder and the
/// [`CodeEmitter`](crate::builder::CodeEmitter).
pub fn fixup_block_targets(code: &mut [Instr]) -> Result<(), FixupError> {
    // Stack of indices of open Block/Loop/If/Else instructions. Index
    // usize::MAX marks the implicit function-level frame.
    let mut stack: Vec<usize> = vec![usize::MAX];
    for pc in 0..code.len() {
        match code[pc] {
            Instr::Block { .. } | Instr::Loop { .. } | Instr::If { .. } => stack.push(pc),
            Instr::Else { .. } => {
                let opener = *stack.last().ok_or(FixupError::DanglingElse)?;
                if opener == usize::MAX {
                    return Err(FixupError::DanglingElse);
                }
                match &mut code[opener] {
                    Instr::If {
                        else_pc, end_pc: _, ..
                    } => {
                        if *else_pc != u32::MAX {
                            return Err(FixupError::DuplicateElse);
                        }
                        *else_pc = pc as u32;
                    }
                    _ => return Err(FixupError::DanglingElse),
                }
                // Replace the If by the Else on the stack so End patches both.
                *stack.last_mut().unwrap() = pc;
            }
            Instr::End => {
                let opener = stack.pop().ok_or(FixupError::DanglingEnd)?;
                if opener == usize::MAX {
                    // Function-level end: must be the last instruction.
                    if pc != code.len() - 1 {
                        return Err(FixupError::DanglingEnd);
                    }
                    continue;
                }
                match &mut code[opener] {
                    Instr::Block { end_pc, .. } => *end_pc = pc as u32,
                    Instr::Loop { .. } => {}
                    Instr::If {
                        else_pc, end_pc, ..
                    } => {
                        *end_pc = pc as u32;
                        // If with no else arm: a false condition jumps to End.
                        if *else_pc == u32::MAX {
                            *else_pc = pc as u32;
                        }
                    }
                    Instr::Else { end_pc } => {
                        *end_pc = pc as u32;
                        // Walk back and patch the If's end too: find it by
                        // scanning (the Else holds no back pointer). The If
                        // whose else_pc == opener is the matching one.
                        let else_idx = opener as u32;
                        for instr in code[..opener].iter_mut().rev() {
                            if let Instr::If {
                                else_pc, end_pc, ..
                            } = instr
                            {
                                if *else_pc == else_idx {
                                    *end_pc = pc as u32;
                                    break;
                                }
                            }
                        }
                    }
                    _ => return Err(FixupError::DanglingEnd),
                }
            }
            _ => {}
        }
    }
    if stack.is_empty() {
        Ok(())
    } else if stack == [usize::MAX] {
        Err(FixupError::MissingFinalEnd)
    } else {
        Err(FixupError::UnclosedBlock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BlockType as BT;

    fn block() -> Instr {
        Instr::Block {
            ty: BT::Empty,
            end_pc: u32::MAX,
        }
    }
    fn if_() -> Instr {
        Instr::If {
            ty: BT::Empty,
            else_pc: u32::MAX,
            end_pc: u32::MAX,
        }
    }

    #[test]
    fn fixup_simple_block() {
        let mut code = vec![block(), Instr::Nop, Instr::End, Instr::End];
        fixup_block_targets(&mut code).unwrap();
        assert_eq!(
            code[0],
            Instr::Block {
                ty: BT::Empty,
                end_pc: 2
            }
        );
    }

    #[test]
    fn fixup_if_else() {
        let mut code = vec![
            Instr::I32Const(1),
            if_(),
            Instr::Nop,
            Instr::Else { end_pc: u32::MAX },
            Instr::Nop,
            Instr::End,
            Instr::End,
        ];
        fixup_block_targets(&mut code).unwrap();
        assert_eq!(
            code[1],
            Instr::If {
                ty: BT::Empty,
                else_pc: 3,
                end_pc: 5
            }
        );
        assert_eq!(code[3], Instr::Else { end_pc: 5 });
    }

    #[test]
    fn fixup_if_no_else() {
        let mut code = vec![
            Instr::I32Const(0),
            if_(),
            Instr::Nop,
            Instr::End,
            Instr::End,
        ];
        fixup_block_targets(&mut code).unwrap();
        assert_eq!(
            code[1],
            Instr::If {
                ty: BT::Empty,
                else_pc: 3,
                end_pc: 3
            }
        );
    }

    #[test]
    fn fixup_nested() {
        let mut code = vec![
            block(),                       // 0 -> end 5
            Instr::Loop { ty: BT::Empty }, // 1
            block(),                       // 2 -> end 4
            Instr::Br { depth: 1 },
            Instr::End, // 4 closes 2
            Instr::End, // 5 closes loop... wait
            Instr::End, // 6 closes 0
            Instr::End, // 7 function end
        ];
        fixup_block_targets(&mut code).unwrap();
        assert_eq!(
            code[2],
            Instr::Block {
                ty: BT::Empty,
                end_pc: 4
            }
        );
        assert_eq!(
            code[0],
            Instr::Block {
                ty: BT::Empty,
                end_pc: 6
            }
        );
    }

    #[test]
    fn fixup_errors() {
        let mut code = vec![Instr::Else { end_pc: u32::MAX }, Instr::End];
        assert_eq!(
            fixup_block_targets(&mut code),
            Err(FixupError::DanglingElse)
        );

        let mut code = vec![block(), Instr::End];
        assert_eq!(
            fixup_block_targets(&mut code),
            Err(FixupError::MissingFinalEnd)
        );

        let mut code = vec![block(), Instr::Nop];
        assert_eq!(
            fixup_block_targets(&mut code),
            Err(FixupError::UnclosedBlock)
        );

        let mut code = vec![Instr::End, Instr::Nop];
        assert_eq!(fixup_block_targets(&mut code), Err(FixupError::DanglingEnd));
    }
}
