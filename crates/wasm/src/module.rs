//! The decoded, immutable module representation shared by the validator and
//! the interpreter.

use crate::analysis::{AnalysisCell, AnalysisError, ModuleAnalysis};
use crate::compile::{CompiledCell, CompiledFunc};
use crate::instr::Instr;
use crate::regalloc::{RegCell, RegFunc};
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// What an import provides.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportKind {
    /// Function import with the given type index.
    Func { type_idx: u32 },
    // Memory/table/global imports are intentionally unsupported: WA-RAN
    // plugins own their sandbox state; sharing it with the host would
    // reintroduce exactly the coupling the paper argues against.
}

/// One import entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Module namespace, e.g. `"env"`.
    pub module: String,
    /// Field name, e.g. `"wrn_log"`.
    pub name: String,
    /// Imported entity.
    pub kind: ImportKind,
}

/// What an export exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// Function by (module-wide) function index.
    Func(u32),
    /// The (single) memory.
    Memory,
    /// The (single) table.
    Table,
    /// Global by index.
    Global(u32),
}

/// One export entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// Exported name.
    pub name: String,
    /// Exported entity.
    pub kind: ExportKind,
}

/// A module-defined (non-imported) function: its signature and body.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncBody {
    /// Index into [`Module::types`].
    pub type_idx: u32,
    /// Declared locals (excluding parameters), already expanded.
    pub locals: Vec<ValType>,
    /// Flat instruction sequence terminated by `End`, with block targets
    /// resolved (see [`crate::instr::fixup_block_targets`]).
    pub code: Vec<Instr>,
    /// Lazily compiled flat IR (see [`crate::compile`]); shared by every
    /// instance holding the same `Arc<Module>`, so hot swap back to a
    /// cached module re-instantiates without recompiling.
    pub compiled: CompiledCell,
    /// Lazily lowered register-form IR (see [`crate::regalloc`]), derived
    /// from the flat IR and cached the same way for `ExecMode::Reg`.
    pub reg: RegCell,
}

impl FuncBody {
    /// A body with an empty compile cache.
    pub fn new(type_idx: u32, locals: Vec<ValType>, code: Vec<Instr>) -> Self {
        FuncBody {
            type_idx,
            locals,
            code,
            compiled: CompiledCell::new(),
            reg: RegCell::new(),
        }
    }
}

/// A module-defined global: its type and constant initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Type and mutability.
    pub ty: GlobalType,
    /// Constant initializer (only `t.const` expressions are supported;
    /// imported-global initializers are out of scope).
    pub init: ConstExpr,
}

/// A constant expression used by global initializers and segment offsets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstExpr {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
}

impl ConstExpr {
    /// The type the expression evaluates to.
    pub fn ty(&self) -> ValType {
        match self {
            ConstExpr::I32(_) => ValType::I32,
            ConstExpr::I64(_) => ValType::I64,
            ConstExpr::F32(_) => ValType::F32,
            ConstExpr::F64(_) => ValType::F64,
        }
    }
}

/// An active data segment copied into memory at instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Byte offset expression (must be i32).
    pub offset: ConstExpr,
    /// Bytes to copy.
    pub bytes: Vec<u8>,
}

/// An active element segment written into the table at instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemSegment {
    /// Element offset expression (must be i32).
    pub offset: ConstExpr,
    /// Function indices to install.
    pub funcs: Vec<u32>,
}

/// A fully decoded module. Immutable after decoding; validation never
/// mutates it, instantiation only reads it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// The type section: deduplicated function signatures.
    pub types: Vec<FuncType>,
    /// Imports, in declaration order. Function indices count these first.
    pub imports: Vec<Import>,
    /// Module-defined function bodies (indices offset by `num_imported_funcs`).
    pub funcs: Vec<FuncBody>,
    /// Optional funcref table (the MVP allows at most one).
    pub table: Option<Limits>,
    /// Optional linear memory (the MVP allows at most one).
    pub memory: Option<Limits>,
    /// Module-defined globals.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Optional start function index.
    pub start: Option<u32>,
    /// Active element segments.
    pub elems: Vec<ElemSegment>,
    /// Active data segments.
    pub data: Vec<DataSegment>,
    /// Lazily computed load-time static analysis (translation validation
    /// + resource bounds), cached module-wide like the compiled bodies.
    pub analysis: AnalysisCell,
}

impl Module {
    /// Number of imported functions (they occupy the first function indices).
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Func { .. }))
            .count() as u32
    }

    /// Total number of functions (imported + defined).
    pub fn num_funcs(&self) -> u32 {
        self.num_imported_funcs() + self.funcs.len() as u32
    }

    /// The signature of a function by module-wide index, if in range.
    pub fn func_type(&self, func_idx: u32) -> Option<&FuncType> {
        let n_imp = self.num_imported_funcs();
        let type_idx = if func_idx < n_imp {
            // Every import is a function import, so the func-index space
            // for imports is the import list itself.
            let ImportKind::Func { type_idx } = self.imports.get(func_idx as usize)?.kind;
            type_idx
        } else {
            self.funcs.get((func_idx - n_imp) as usize)?.type_idx
        };
        self.types.get(type_idx as usize)
    }

    /// Look up an export by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Look up an exported function index by name.
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        match self.export(name)?.kind {
            ExportKind::Func(idx) => Some(idx),
            _ => None,
        }
    }

    /// The flat-IR compilation of a module-local function (index into
    /// [`Module::funcs`]), compiling on first use. The body must have been
    /// validated.
    pub fn compiled_func(&self, local_idx: u32) -> &CompiledFunc {
        self.funcs[local_idx as usize]
            .compiled
            .get_or_compile(self, local_idx)
    }

    /// The register-form lowering of a module-local function (index into
    /// [`Module::funcs`]), lowering (and flat-compiling) on first use. The
    /// body must have been validated.
    pub fn reg_func(&self, local_idx: u32) -> &RegFunc {
        self.funcs[local_idx as usize]
            .reg
            .get_or_lower(self, local_idx)
    }

    /// The module's static analysis report (translation validation and
    /// worst-case resource bounds), computed on first use and cached.
    /// The module must have been validated.
    pub fn analysis(&self) -> Result<&ModuleAnalysis, AnalysisError> {
        self.analysis.get_or_analyze(self)
    }

    /// Force flat-IR compilation of every function body now.
    ///
    /// Lowering is otherwise lazy (first call per function, behind a
    /// `OnceLock`), which is right for a single executor but makes worker
    /// threads that share one `Arc<Module>` briefly serialize on the cells
    /// during warm-up. Pre-compiling once — e.g. when a module enters the
    /// host's module cache — gives every instance pool a fully-lowered,
    /// read-only module to execute from.
    pub fn precompile(&self) {
        for local_idx in 0..self.funcs.len() as u32 {
            self.compiled_func(local_idx);
            self.reg_func(local_idx);
        }
    }
}

// Concurrency audit: the sharded engine shares one validated `Module`
// across worker threads (one `Arc<Module>` per bytecode hash, one
// instance per worker) and moves `Instance`s into workers. Everything
// here is plain owned data; the only interior mutability is the
// `OnceLock` inside each body's `CompiledCell`, which is thread-safe by
// construction. These assertions make the property load-bearing: a field
// that breaks `Send`/`Sync` breaks the build, not the engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Module>();
    assert_send_sync::<CompiledFunc>();
    assert_send_sync::<RegFunc>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FuncType, ValType};

    fn module_with_import() -> Module {
        let mut m = Module::default();
        m.types.push(FuncType::new(&[ValType::I32], &[]));
        m.types.push(FuncType::new(&[], &[ValType::I64]));
        m.imports.push(Import {
            module: "env".into(),
            name: "log".into(),
            kind: ImportKind::Func { type_idx: 0 },
        });
        m.funcs.push(FuncBody::new(
            1,
            vec![],
            vec![Instr::I64Const(7), Instr::End],
        ));
        m.exports.push(Export {
            name: "get".into(),
            kind: ExportKind::Func(1),
        });
        m
    }

    #[test]
    fn func_indexing_counts_imports_first() {
        let m = module_with_import();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.num_funcs(), 2);
        assert_eq!(m.func_type(0).unwrap().params, vec![ValType::I32]);
        assert_eq!(m.func_type(1).unwrap().results, vec![ValType::I64]);
        assert_eq!(m.func_type(2), None);
    }

    #[test]
    fn export_lookup() {
        let m = module_with_import();
        assert_eq!(m.exported_func("get"), Some(1));
        assert_eq!(m.exported_func("nope"), None);
    }

    #[test]
    fn const_expr_types() {
        assert_eq!(ConstExpr::I32(0).ty(), ValType::I32);
        assert_eq!(ConstExpr::F64(0.0).ty(), ValType::F64);
    }
}
