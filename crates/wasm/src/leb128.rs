//! LEB128 variable-length integer and IEEE-754 primitive encoding.
//!
//! The WebAssembly binary format encodes all integers as LEB128 (unsigned
//! for counts/indices, signed for constants) and floats as little-endian
//! IEEE-754. This module provides both directions over byte slices and a
//! growable output buffer, with strict canonical-form-agnostic decoding
//! bounded exactly as the spec requires (ceil(N/7) bytes max).

/// Error returned by the LEB128 decoders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LebError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// More bytes than the encoding of the target width permits.
    Overlong,
    /// Set bits beyond the target integer width.
    Overflow,
}

impl std::fmt::Display for LebError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LebError::UnexpectedEof => write!(f, "unexpected end of input in LEB128 value"),
            LebError::Overlong => write!(f, "LEB128 value uses too many bytes"),
            LebError::Overflow => write!(f, "LEB128 value overflows target width"),
        }
    }
}

impl std::error::Error for LebError {}

/// Decode an unsigned LEB128 value of at most `bits` significant bits.
/// Returns the value and the number of bytes consumed.
pub fn read_unsigned(buf: &[u8], bits: u32) -> Result<(u64, usize), LebError> {
    let max_bytes = (bits as usize).div_ceil(7);
    let mut result: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= max_bytes {
            return Err(LebError::Overlong);
        }
        let low = (byte & 0x7f) as u64;
        // The final byte may only carry the bits that still fit.
        if shift + 7 > bits {
            let allowed = bits - shift;
            if low >> allowed != 0 {
                return Err(LebError::Overflow);
            }
        }
        result |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((result, i + 1));
        }
        shift += 7;
    }
    Err(LebError::UnexpectedEof)
}

/// Decode a signed LEB128 value of at most `bits` significant bits.
/// Returns the value and the number of bytes consumed.
pub fn read_signed(buf: &[u8], bits: u32) -> Result<(i64, usize), LebError> {
    let max_bytes = (bits as usize).div_ceil(7);
    let mut result: i64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= max_bytes {
            return Err(LebError::Overlong);
        }
        let payload = byte & 0x7f;
        if shift + 7 > bits {
            // The final byte's payload bits beyond the target width (and the
            // bit just below them, which determines the sign) must be a
            // correct sign extension.
            let used = bits - shift; // payload bits that still carry value
            let sign_bit = if used == 0 {
                // All payload is extension; sign comes from the accumulated
                // result's top bit, so every payload bit must match it.
                (result >> (bits - 1)) & 1 == 1
            } else {
                (payload >> (used - 1)) & 1 == 1
            };
            let ext_mask: u8 = if used >= 7 { 0 } else { (!0u8 << used) & 0x7f };
            let ext = payload & ext_mask;
            if sign_bit {
                if ext != ext_mask {
                    return Err(LebError::Overflow);
                }
            } else if ext != 0 {
                return Err(LebError::Overflow);
            }
        }
        result |= (payload as i64) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            // Sign-extend from the last payload bit.
            if shift < 64 && (byte & 0x40) != 0 {
                result |= -1i64 << shift;
            }
            // Narrow to the target width's sign semantics.
            if bits < 64 {
                let drop = 64 - bits;
                result = (result << drop) >> drop;
            }
            return Ok((result, i + 1));
        }
    }
    Err(LebError::UnexpectedEof)
}

/// Encode an unsigned LEB128 value into `out`.
pub fn write_unsigned(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encode a signed LEB128 value into `out`.
pub fn write_signed(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign = byte & 0x40 != 0;
        if (value == 0 && !sign) || (value == -1 && sign) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64, bits: u32) {
        let mut buf = Vec::new();
        write_unsigned(&mut buf, v);
        let (got, n) = read_unsigned(&buf, bits).unwrap();
        assert_eq!(got, v);
        assert_eq!(n, buf.len());
    }

    fn roundtrip_s(v: i64, bits: u32) {
        let mut buf = Vec::new();
        write_signed(&mut buf, v);
        let (got, _) = read_signed(&buf, bits).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0u64, 1, 127, 128, 255, 624485, u32::MAX as u64] {
            roundtrip_u(v, 32);
        }
        for v in [0u64, u64::MAX, u64::MAX / 3, 1 << 62] {
            roundtrip_u(v, 64);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            64,
            -64,
            -65,
            127,
            -128,
            2147483647,
            -2147483648,
        ] {
            roundtrip_s(v, 32);
        }
        for v in [i64::MIN, i64::MAX, -123456789012345, 987654321098765] {
            roundtrip_s(v, 64);
        }
    }

    #[test]
    fn unsigned_eof() {
        assert_eq!(read_unsigned(&[0x80], 32), Err(LebError::UnexpectedEof));
        assert_eq!(read_unsigned(&[], 32), Err(LebError::UnexpectedEof));
    }

    #[test]
    fn unsigned_overlong() {
        // Six continuation bytes is more than a u32 can need.
        assert_eq!(
            read_unsigned(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x00], 32),
            Err(LebError::Overlong)
        );
    }

    #[test]
    fn unsigned_overflow_bits() {
        // Fifth byte of a u32 may only use 4 low bits.
        assert_eq!(
            read_unsigned(&[0xff, 0xff, 0xff, 0xff, 0x1f], 32),
            Err(LebError::Overflow)
        );
        let (v, _) = read_unsigned(&[0xff, 0xff, 0xff, 0xff, 0x0f], 32).unwrap();
        assert_eq!(v, u32::MAX as u64);
    }

    #[test]
    fn signed_known_encodings() {
        // Examples from the LEB128 literature.
        let mut buf = Vec::new();
        write_signed(&mut buf, -123456);
        assert_eq!(buf, vec![0xc0, 0xbb, 0x78]);
        let (v, n) = read_signed(&[0xc0, 0xbb, 0x78], 32).unwrap();
        assert_eq!(v, -123456);
        assert_eq!(n, 3);
    }

    #[test]
    fn signed_overflow_bits() {
        // i32: fifth byte payload must be proper sign extension.
        assert!(read_signed(&[0xff, 0xff, 0xff, 0xff, 0x0f], 32).is_err());
        let (v, _) = read_signed(&[0xff, 0xff, 0xff, 0xff, 0x7f], 32).unwrap();
        assert_eq!(v, -1);
    }

    #[test]
    fn non_canonical_accepted() {
        // 0 encoded with a redundant continuation byte is still valid LEB128.
        let (v, n) = read_unsigned(&[0x80, 0x00], 32).unwrap();
        assert_eq!(v, 0);
        assert_eq!(n, 2);
    }
}
