//! Instantiation and execution.
//!
//! [`Linker`] resolves a module's function imports to host closures;
//! [`Instance`] owns the runtime state (memory, table, globals, host state
//! `T`) and drives the interpreter loop. The engine enforces the sandbox
//! policies WA-RAN's plugin host configures: call-depth and value-stack
//! bounds, optional deterministic fuel, and an optional wall-clock deadline
//! (the 5G slot budget).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::compile::Op;
use crate::instr::Instr;
use crate::interp::{Memory, Table, Value};
use crate::module::{ConstExpr, ExportKind, ImportKind, Module};
use crate::regalloc::{LoadKind, ROp, StoreKind};
use crate::trap::Trap;
use crate::types::{FuncType, Limits, ValType};

/// A host function: receives the host state, the guest memory and the
/// arguments; returns at most one value.
pub type HostFn<T> =
    Arc<dyn Fn(&mut T, &mut Memory, &[Value]) -> Result<Option<Value>, Trap> + Send + Sync>;

struct HostFuncDef<T> {
    ty: FuncType,
    func: HostFn<T>,
}

impl<T> Clone for HostFuncDef<T> {
    fn clone(&self) -> Self {
        HostFuncDef {
            ty: self.ty.clone(),
            func: self.func.clone(),
        }
    }
}

/// Resolves `(module, name)` import pairs to host functions.
pub struct Linker<T> {
    funcs: HashMap<(String, String), HostFuncDef<T>>,
}

impl<T> Default for Linker<T> {
    fn default() -> Self {
        Linker {
            funcs: HashMap::new(),
        }
    }
}

impl<T> Clone for Linker<T> {
    fn clone(&self) -> Self {
        Linker {
            funcs: self.funcs.clone(),
        }
    }
}

impl<T> Linker<T> {
    /// Empty linker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a host function under `(module, name)` with the given
    /// signature. Replaces any previous registration for the same pair.
    pub fn func(
        &mut self,
        module: &str,
        name: &str,
        params: &[ValType],
        results: &[ValType],
        f: impl Fn(&mut T, &mut Memory, &[Value]) -> Result<Option<Value>, Trap> + Send + Sync + 'static,
    ) -> &mut Self {
        self.funcs.insert(
            (module.to_string(), name.to_string()),
            HostFuncDef {
                ty: FuncType::new(params, results),
                func: Arc::new(f),
            },
        );
        self
    }

    fn resolve(&self, module: &str, name: &str) -> Option<&HostFuncDef<T>> {
        self.funcs.get(&(module.to_string(), name.to_string()))
    }
}

/// Error instantiating a module.
#[derive(Debug, Clone, PartialEq)]
pub enum InstantiateError {
    /// An import had no registration in the linker.
    MissingImport { module: String, name: String },
    /// An import's registered signature differs from the module's.
    /// The signatures are boxed so the error (and every `Result` carrying
    /// it) stays small enough to return by value on the hot path.
    ImportTypeMismatch {
        module: String,
        name: String,
        expected: Box<FuncType>,
        found: Box<FuncType>,
    },
    /// A data segment falls outside the initial memory.
    DataSegmentOutOfBounds,
    /// An element segment falls outside the table.
    ElemSegmentOutOfBounds,
    /// Initial memory exceeds the embedder's page policy.
    MemoryPolicy(Trap),
    /// The start function trapped.
    StartTrap(Trap),
    /// Load-time static analysis rejected the module: the register
    /// lowering failed translation validation against the flat IR.
    Analysis(crate::analysis::AnalysisError),
}

impl std::fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstantiateError::MissingImport { module, name } => {
                write!(f, "unresolved import {module}.{name}")
            }
            InstantiateError::ImportTypeMismatch {
                module,
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "import {module}.{name}: module wants {expected}, linker has {found}"
                )
            }
            InstantiateError::DataSegmentOutOfBounds => write!(f, "data segment out of bounds"),
            InstantiateError::ElemSegmentOutOfBounds => write!(f, "element segment out of bounds"),
            InstantiateError::MemoryPolicy(t) => write!(f, "memory policy violation: {t}"),
            InstantiateError::StartTrap(t) => write!(f, "start function trapped: {t}"),
            InstantiateError::Analysis(e) => write!(f, "static analysis: {e}"),
        }
    }
}

impl std::error::Error for InstantiateError {}

/// Execution resource limits. The plugin host derives these from its
/// per-plugin sandbox policy.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Maximum nested call depth.
    pub max_call_depth: usize,
    /// Maximum value-stack entries.
    pub max_value_stack: usize,
    /// Maximum memory pages the instance may ever hold (policy cap layered
    /// under the module's own declared max).
    pub max_memory_pages: u32,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_call_depth: 1024,
            max_value_stack: 1 << 20,
            max_memory_pages: u32::MAX,
        }
    }
}

/// Which interpreter loop runs guest code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// The flat-IR executor (see [`crate::compile`]): side-table branches,
    /// basic-block metering, superinstruction fusion. The default.
    #[default]
    Compiled,
    /// The original decoded-[`Instr`] tree walker, kept as the semantic
    /// reference for differential testing and ablation benchmarks.
    Reference,
    /// The register-form executor (see [`crate::regalloc`]): the flat IR
    /// lowered to three-address code over a per-frame virtual register
    /// file, so push/pop traffic disappears from the hot loop. Identical
    /// result/trap/fuel semantics to the other tiers.
    Reg,
}

/// Cumulative execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Instructions retired across all invocations.
    pub instrs: u64,
    /// Completed invocations.
    pub invokes: u64,
    /// Traps observed.
    pub traps: u64,
}

/// An instantiated module plus its host state `T`.
pub struct Instance<T> {
    module: Arc<Module>,
    memory: Memory,
    table: Table,
    globals: Vec<Value>,
    /// Host functions in import order, shared with the [`InstancePre`] the
    /// instance was stamped from (one atomic refcount bump per stamp-out).
    host_funcs: Arc<[HostFuncDef<T>]>,
    /// Embedder state handed to host functions.
    pub data: T,
    limits: ExecLimits,
    fuel: Option<u64>,
    fuel_limit: Option<u64>,
    deadline: Option<Duration>,
    stats: ExecStats,
    mode: ExecMode,
    /// Reused execution buffers: the compiled executor's value stack,
    /// locals arena and frame stack survive across invocations so steady-
    /// state calls allocate nothing.
    scratch_stack: Vec<Value>,
    scratch_locals: Vec<Value>,
    scratch_frames: Vec<CFrame>,
    /// Register-tier buffers: one flat register file shared by all frames
    /// (windows overlap at call boundaries) plus its frame stack.
    scratch_regs: Vec<Value>,
    scratch_rframes: Vec<RFrame>,
    /// The template snapshot this instance was stamped from, if any: on
    /// drop, the linear-memory buffer is re-zeroed up to its dirty
    /// high-water mark and returned to the template's pool, so the next
    /// stamp-out skips the full-buffer allocation + memset.
    recycle_to: Option<Arc<StateSnapshot>>,
}

impl<T> Drop for Instance<T> {
    fn drop(&mut self) {
        if let Some(snap) = self.recycle_to.take() {
            snap.reclaim(&mut self.memory);
        }
    }
}

impl<T> std::fmt::Debug for Instance<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("memory_pages", &self.memory.size_pages())
            .field("globals", &self.globals.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// How often the engine polls the wall clock when a deadline is set.
const DEADLINE_CHECK_INTERVAL: u64 = 8192;

// Concurrency audit for the sharded engine: instances (and linkers, whose
// host functions are `Arc<dyn Fn .. + Send + Sync>`) must move into worker
// threads whenever the embedder's state `T` does. No `Rc`, no raw
// pointers, no thread-affine interior mutability may creep into these
// types; if one does, this stops compiling instead of the engine
// intermittently corrupting state.
#[allow(dead_code)]
fn _instance_send_audit<T: Send>() {
    fn is_send<X: Send>() {}
    is_send::<Instance<T>>();
    is_send::<Linker<T>>();
    is_send::<InstancePre<T>>();
    is_send::<Memory>();
}
#[allow(dead_code)]
fn _linker_sync_audit<T: Send + Sync>() {
    // One `Linker` may be shared by many workers instantiating pools.
    fn is_sync<X: Sync>() {}
    is_sync::<Linker<T>>();
    // An `InstancePre` is the fleet-wide instantiation template: one per
    // plugin, read concurrently by every worker stamping out instances.
    is_sync::<InstancePre<T>>();
}

/// Resolve a module's function imports against a linker, type-checking
/// each one. This is the single import-resolution path: the cold
/// [`Instance::with_limits`] and the pre-validated [`InstancePre`] both go
/// through it, so their error behavior cannot drift.
fn resolve_imports<T>(
    module: &Module,
    linker: &Linker<T>,
) -> Result<Vec<HostFuncDef<T>>, InstantiateError> {
    let mut host_funcs = Vec::with_capacity(module.imports.len());
    for imp in &module.imports {
        let ImportKind::Func { type_idx } = imp.kind;
        let expected = &module.types[type_idx as usize];
        let def = linker.resolve(&imp.module, &imp.name).ok_or_else(|| {
            InstantiateError::MissingImport {
                module: imp.module.clone(),
                name: imp.name.clone(),
            }
        })?;
        if def.ty != *expected {
            return Err(InstantiateError::ImportTypeMismatch {
                module: imp.module.clone(),
                name: imp.name.clone(),
                expected: Box::new(expected.clone()),
                found: Box::new(def.ty.clone()),
            });
        }
        host_funcs.push(def.clone());
    }
    Ok(host_funcs)
}

/// The mutable state of an instance right after segment initialization:
/// linear memory with active data segments applied, table with element
/// segments installed, globals at their initializer values — and the start
/// function *not yet run*.
///
/// This is the unit the template/live-state split revolves around: built
/// fresh from the module on the cold path, or captured once in an
/// [`InstancePre`] snapshot and stamped into each new instance by memcpy.
struct InstanceState {
    memory: Memory,
    table: Table,
    globals: Vec<Value>,
}

impl InstanceState {
    /// Initialize from the module's segments (the cold path, and the one
    /// snapshot capture per template).
    fn init(module: &Module, limits: &ExecLimits) -> Result<Self, InstantiateError> {
        // Memory + data segments.
        let mut memory = match module.memory {
            Some(mem_limits) => Memory::new(mem_limits, limits.max_memory_pages)
                .map_err(InstantiateError::MemoryPolicy)?,
            None => Memory::empty(),
        };
        for seg in &module.data {
            let ConstExpr::I32(offset) = seg.offset else {
                return Err(InstantiateError::DataSegmentOutOfBounds);
            };
            memory
                .write_bytes(offset as u32, &seg.bytes)
                .map_err(|_| InstantiateError::DataSegmentOutOfBounds)?;
        }

        // Table + element segments.
        let mut table = Table::new(module.table.unwrap_or(Limits::new(0, Some(0))));
        for seg in &module.elems {
            let ConstExpr::I32(offset) = seg.offset else {
                return Err(InstantiateError::ElemSegmentOutOfBounds);
            };
            for (i, &func) in seg.funcs.iter().enumerate() {
                table
                    .set(offset as u32 + i as u32, func)
                    .map_err(|_| InstantiateError::ElemSegmentOutOfBounds)?;
            }
        }

        // Globals.
        let globals = module
            .globals
            .iter()
            .map(|g| match g.init {
                ConstExpr::I32(v) => Value::I32(v),
                ConstExpr::I64(v) => Value::I64(v),
                ConstExpr::F32(v) => Value::F32(v),
                ConstExpr::F64(v) => Value::F64(v),
            })
            .collect();

        Ok(InstanceState {
            memory,
            table,
            globals,
        })
    }
}

/// Upper bound on pooled linear-memory buffers per template: enough to
/// cover a worker fleet's stamp/drop churn, small enough that an idle
/// template pins at most a few MiB.
const MEMORY_POOL_CAP: usize = 32;

/// The captured post-segment-init state an [`InstancePre`] stamps
/// instances from, plus the recycling pool that makes stamp-out O(dirty
/// bytes) instead of O(memory size).
///
/// `init_len` is the memory's dirty high-water mark at capture time:
/// every byte past it is zero, so stamping from a pristine (all-zero)
/// recycled buffer only needs to copy `init_len` bytes. Dropped
/// instances re-zero their own dirty prefix and return the buffer here.
struct StateSnapshot {
    state: InstanceState,
    /// Initialized extent of the captured memory image (bytes).
    init_len: usize,
    /// Pristine all-zero buffers of exactly `state.memory.size_bytes()`.
    pool: Mutex<Vec<Vec<u8>>>,
}

impl StateSnapshot {
    fn new(state: InstanceState) -> StateSnapshot {
        StateSnapshot {
            init_len: state.memory.dirty_max(),
            pool: Mutex::new(Vec::new()),
            state,
        }
    }

    /// Stamp a fresh [`InstanceState`]: pop a pristine buffer and copy the
    /// initialized prefix, or fall back to a full clone of the image when
    /// the pool is empty (the first few stamps, or under deep churn).
    fn stamp(&self) -> InstanceState {
        let recycled = self.pool.lock().ok().and_then(|mut pool| pool.pop());
        let memory = match recycled {
            Some(buf) => Memory::from_recycled(buf, &self.state.memory, self.init_len),
            None => self.state.memory.clone(),
        };
        InstanceState {
            memory,
            table: self.state.table.clone(),
            globals: self.state.globals.clone(),
        }
    }

    /// Take back a dropped instance's memory buffer. Buffers that no
    /// longer match the template's size (the instance grew its memory)
    /// are discarded; the rest are re-zeroed up to their dirty high-water
    /// mark — O(bytes the instance actually wrote) — and pooled.
    fn reclaim(&self, memory: &mut Memory) {
        let len = self.state.memory.size_bytes();
        if len == 0 || memory.size_bytes() != len {
            return;
        }
        memory.zero_all();
        if let Ok(mut pool) = self.pool.lock() {
            if pool.len() < MEMORY_POOL_CAP {
                pool.push(memory.take_data());
            }
        }
    }
}

/// A pre-validated instantiation template: the module, its fully resolved
/// and type-checked import vector, and (optionally) a snapshot of the
/// post-segment-init mutable state.
///
/// Building an `InstancePre` runs decode-adjacent work — import
/// resolution, type checks, memory allocation, data/elem-segment
/// initialization — exactly once. [`InstancePre::instantiate`] then stamps
/// out a live [`Instance`] as a memcpy of the snapshot plus a handful of
/// `Arc` bumps, which is what keeps per-worker plugin spin-up in the
/// microsecond range for hundred-cell fleets.
///
/// The snapshot is captured *before* the start function: `start` may call
/// host functions against the instance's own host state, so it must run
/// per stamp-out for snapshot instantiation to be observationally
/// identical to the cold path.
///
/// Cloning is cheap (three `Arc` bumps); a template is `Send + Sync` and
/// meant to be shared across worker threads.
pub struct InstancePre<T> {
    module: Arc<Module>,
    host_funcs: Arc<[HostFuncDef<T>]>,
    /// `None` when snapshotting is disabled: [`Self::instantiate`] then
    /// re-runs segment init per instance (imports stay pre-resolved).
    snapshot: Option<Arc<StateSnapshot>>,
    limits: ExecLimits,
}

impl<T> Clone for InstancePre<T> {
    fn clone(&self) -> Self {
        InstancePre {
            module: Arc::clone(&self.module),
            host_funcs: Arc::clone(&self.host_funcs),
            snapshot: self.snapshot.clone(),
            limits: self.limits,
        }
    }
}

impl<T> std::fmt::Debug for InstancePre<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstancePre")
            .field("imports", &self.host_funcs.len())
            .field("snapshot", &self.snapshot.is_some())
            .finish_non_exhaustive()
    }
}

impl<T> InstancePre<T> {
    /// Resolve + type-check `module`'s imports against `linker` and capture
    /// the post-segment-init state snapshot.
    pub fn new(
        module: Arc<Module>,
        linker: &Linker<T>,
        limits: ExecLimits,
    ) -> Result<Self, InstantiateError> {
        Self::new_with(module, linker, limits, true)
    }

    /// Like [`Self::new`] with an explicit snapshot knob. With `snapshot`
    /// off the template still skips per-instance import resolution but
    /// runs segment init on every [`Self::instantiate`] — the ablation
    /// point between "cold" and "snapshot" instantiation, and the route
    /// one-shot construction takes (init exactly once, copied zero times).
    /// Segment errors consequently surface at build time with the snapshot
    /// on, and at stamp-out time with it off.
    pub fn new_with(
        module: Arc<Module>,
        linker: &Linker<T>,
        limits: ExecLimits,
        snapshot: bool,
    ) -> Result<Self, InstantiateError> {
        let host_funcs: Arc<[HostFuncDef<T>]> = resolve_imports(&module, linker)?.into();
        // Templates are the shared gateway for fleet deployment: prove
        // the register lowering faithful (and cache the resource bounds)
        // before any instance is stamped from this module.
        module
            .analysis()
            .map_err(|e| InstantiateError::Analysis(e.clone()))?;
        let snapshot = if snapshot {
            Some(Arc::new(StateSnapshot::new(InstanceState::init(
                &module, &limits,
            )?)))
        } else {
            None
        };
        Ok(InstancePre {
            module,
            host_funcs,
            snapshot,
            limits,
        })
    }

    /// The templated module.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// The execution limits instances are stamped with.
    pub fn limits(&self) -> ExecLimits {
        self.limits
    }

    /// True when stamp-outs copy the captured snapshot instead of
    /// re-running segment init.
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Stamp out a live instance: copy the snapshot's initialized prefix
    /// into a pooled buffer (or re-init when snapshotting is off), bump
    /// the shared import vector, run `start`.
    pub fn instantiate(&self, data: T) -> Result<Instance<T>, InstantiateError> {
        let (state, recycle_to) = match &self.snapshot {
            Some(snap) => (snap.stamp(), Some(Arc::clone(snap))),
            None => (InstanceState::init(&self.module, &self.limits)?, None),
        };
        Instance::assemble(
            Arc::clone(&self.module),
            Arc::clone(&self.host_funcs),
            state,
            data,
            self.limits,
            recycle_to,
        )
    }
}

impl<T> Instance<T> {
    /// Instantiate `module` with imports from `linker` and host state `data`,
    /// using default [`ExecLimits`].
    pub fn new(module: Arc<Module>, linker: &Linker<T>, data: T) -> Result<Self, InstantiateError> {
        Self::with_limits(module, linker, data, ExecLimits::default())
    }

    /// Instantiate with explicit limits. This is the *cold* path: imports
    /// are resolved and the mutable state initialized from the module's
    /// segments on every call. Fleets stamping out many instances of one
    /// module should build an [`InstancePre`] once and instantiate from it.
    pub fn with_limits(
        module: Arc<Module>,
        linker: &Linker<T>,
        data: T,
        limits: ExecLimits,
    ) -> Result<Self, InstantiateError> {
        let host_funcs: Arc<[HostFuncDef<T>]> = resolve_imports(&module, linker)?.into();
        let state = InstanceState::init(&module, &limits)?;
        Self::assemble(module, host_funcs, state, data, limits, None)
    }

    /// Final construction step shared by the cold path and
    /// [`InstancePre::instantiate`]: wire the parts together and run the
    /// start function (which must execute per *instance*, never per
    /// template — it may call host functions against this instance's own
    /// `data`).
    fn assemble(
        module: Arc<Module>,
        host_funcs: Arc<[HostFuncDef<T>]>,
        state: InstanceState,
        data: T,
        limits: ExecLimits,
        recycle_to: Option<Arc<StateSnapshot>>,
    ) -> Result<Self, InstantiateError> {
        let InstanceState {
            memory,
            table,
            globals,
        } = state;
        let mut inst = Instance {
            module,
            memory,
            table,
            globals,
            host_funcs,
            data,
            limits,
            fuel: None,
            fuel_limit: None,
            deadline: None,
            stats: ExecStats::default(),
            mode: ExecMode::default(),
            scratch_stack: Vec::with_capacity(64),
            scratch_locals: Vec::with_capacity(64),
            scratch_frames: Vec::with_capacity(16),
            scratch_regs: Vec::with_capacity(128),
            scratch_rframes: Vec::with_capacity(16),
            recycle_to,
        };

        if let Some(start) = inst.module.start {
            inst.call_func(start, &[])
                .map_err(InstantiateError::StartTrap)?;
        }

        Ok(inst)
    }

    /// The instantiated module.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// Guest linear memory (host-side ABI access).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable guest linear memory (host-side ABI access).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Read a global exported under `name`.
    pub fn get_global(&self, name: &str) -> Option<Value> {
        match self.module.export(name)?.kind {
            ExportKind::Global(idx) => self.globals.get(idx as usize).copied(),
            _ => None,
        }
    }

    /// Set the deterministic instruction budget for subsequent invocations.
    /// `None` disables metering. The budget is *per `set_fuel` call*: it
    /// carries across invocations until exhausted or reset.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.fuel = fuel;
        self.fuel_limit = fuel;
    }

    /// Fuel remaining, if metering is enabled.
    pub fn fuel_remaining(&self) -> Option<u64> {
        self.fuel
    }

    /// Fuel consumed since the last [`Self::set_fuel`].
    pub fn fuel_consumed(&self) -> Option<u64> {
        Some(self.fuel_limit? - self.fuel?)
    }

    /// Set the wall-clock budget applied to each invocation. `None`
    /// disables the deadline.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Select which interpreter loop runs guest code (default:
    /// [`ExecMode::Compiled`]).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The currently selected interpreter loop.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// True when the module exports a function under `name`.
    pub fn has_export(&self, name: &str) -> bool {
        self.module.exported_func(name).is_some()
    }

    /// The signature of the exported function `name`.
    pub fn export_type(&self, name: &str) -> Option<&FuncType> {
        self.module.func_type(self.module.exported_func(name)?)
    }

    /// Invoke the exported function `name`. Binding failures (unknown
    /// export, argument mismatch) are reported as [`Trap::HostError`] so the
    /// plugin host has a single fault channel.
    pub fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, Trap> {
        let func = self
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::HostError(format!("no exported function `{name}`")))?;
        let ty = self
            .module
            .func_type(func)
            .ok_or_else(|| Trap::HostError(format!("export `{name}` has no type")))?;
        if ty.params.len() != args.len() || ty.params.iter().zip(args).any(|(p, a)| *p != a.ty()) {
            return Err(Trap::HostError(format!(
                "argument mismatch calling `{name}`: expected {ty}",
            )));
        }
        self.call_func(func, args)
    }

    /// Invoke by module-wide function index (used by the RIC host for table
    /// dispatch and by tests).
    pub fn call_func(&mut self, func: u32, args: &[Value]) -> Result<Option<Value>, Trap> {
        let deadline = self.deadline.map(|d| Instant::now() + d);
        let mut instrs: u64 = 0;
        let result = match self.mode {
            ExecMode::Compiled => self.exec_compiled(func, args, deadline, &mut instrs),
            ExecMode::Reference => self.exec(func, args, deadline, &mut instrs),
            ExecMode::Reg => self.exec_reg(func, args, deadline, &mut instrs),
        };
        // Flushed here unconditionally so every exit path — including the
        // out-of-fuel one, which used to skip it — counts its instructions.
        self.stats.instrs += instrs;
        match &result {
            Ok(_) => self.stats.invokes += 1,
            Err(_) => self.stats.traps += 1,
        }
        result
    }

    // ------------------------------------------------------------------
    // The interpreter.
    // ------------------------------------------------------------------

    fn exec(
        &mut self,
        entry: u32,
        args: &[Value],
        deadline: Option<Instant>,
        instrs: &mut u64,
    ) -> Result<Option<Value>, Trap> {
        let module = Arc::clone(&self.module);
        let n_imports = module.num_imported_funcs();

        // Direct host-function entry (rare but legal via re-export).
        if entry < n_imports {
            let def = &self.host_funcs[entry as usize];
            let func = Arc::clone(&def.func);
            return func(&mut self.data, &mut self.memory, args);
        }

        let mut stack: Vec<Value> = Vec::with_capacity(64);
        stack.extend_from_slice(args);
        let mut frames: Vec<Frame> = Vec::with_capacity(16);
        frames.push(Frame::enter(&module, entry - n_imports, &mut stack));

        let mut until_deadline_check = DEADLINE_CHECK_INTERVAL;

        macro_rules! pop {
            () => {
                stack.pop().expect("validated: stack non-empty")
            };
        }
        macro_rules! binop_i32 {
            ($f:expr) => {{
                let b = pop!().as_i32();
                let a = pop!().as_i32();
                stack.push(Value::I32($f(a, b)));
            }};
        }
        macro_rules! binop_i32_trap {
            ($f:expr) => {{
                let b = pop!().as_i32();
                let a = pop!().as_i32();
                stack.push(Value::I32($f(a, b)?));
            }};
        }
        macro_rules! binop_i64 {
            ($f:expr) => {{
                let b = pop!().as_i64();
                let a = pop!().as_i64();
                stack.push(Value::I64($f(a, b)));
            }};
        }
        macro_rules! binop_i64_trap {
            ($f:expr) => {{
                let b = pop!().as_i64();
                let a = pop!().as_i64();
                stack.push(Value::I64($f(a, b)?));
            }};
        }
        macro_rules! relop_i32 {
            ($f:expr) => {{
                let b = pop!().as_i32();
                let a = pop!().as_i32();
                stack.push(Value::I32($f(a, b) as i32));
            }};
        }
        macro_rules! relop_i64 {
            ($f:expr) => {{
                let b = pop!().as_i64();
                let a = pop!().as_i64();
                stack.push(Value::I32($f(a, b) as i32));
            }};
        }
        macro_rules! relop_f32 {
            ($f:expr) => {{
                let b = pop!().as_f32();
                let a = pop!().as_f32();
                stack.push(Value::I32($f(a, b) as i32));
            }};
        }
        macro_rules! relop_f64 {
            ($f:expr) => {{
                let b = pop!().as_f64();
                let a = pop!().as_f64();
                stack.push(Value::I32($f(a, b) as i32));
            }};
        }
        macro_rules! binop_f32 {
            ($f:expr) => {{
                let b = pop!().as_f32();
                let a = pop!().as_f32();
                stack.push(Value::F32($f(a, b)));
            }};
        }
        macro_rules! binop_f64 {
            ($f:expr) => {{
                let b = pop!().as_f64();
                let a = pop!().as_f64();
                stack.push(Value::F64($f(a, b)));
            }};
        }
        macro_rules! unop {
            ($as:ident, $wrap:ident, $f:expr) => {{
                let a = pop!().$as();
                stack.push(Value::$wrap($f(a)));
            }};
        }
        macro_rules! load {
            ($m:expr, $n:expr, $conv:expr) => {{
                let addr = pop!().as_u32();
                let bytes = self.memory.read::<$n>(addr, $m.offset)?;
                stack.push($conv(bytes));
            }};
        }
        macro_rules! store {
            ($m:expr, $pop:ident, $to:expr) => {{
                let v = pop!().$pop();
                let addr = pop!().as_u32();
                self.memory.write(addr, $m.offset, $to(v))?;
            }};
        }

        'outer: loop {
            // Resource accounting.
            if let Some(fuel) = self.fuel.as_mut() {
                if *fuel == 0 {
                    self.fuel = Some(0);
                    return Err(Trap::OutOfFuel);
                }
                *fuel -= 1;
            }
            *instrs += 1;
            if let Some(dl) = deadline {
                until_deadline_check -= 1;
                if until_deadline_check == 0 {
                    until_deadline_check = DEADLINE_CHECK_INTERVAL;
                    if Instant::now() > dl {
                        return Err(Trap::DeadlineExceeded);
                    }
                }
            }
            if stack.len() > self.limits.max_value_stack {
                return Err(Trap::ValueStackExhausted);
            }

            let frame = frames.last_mut().expect("at least one frame");
            let body = &module.funcs[frame.func as usize];
            let instr = &body.code[frame.pc];
            frame.pc += 1;

            match instr {
                Instr::Unreachable => {
                    return Err(Trap::Unreachable);
                }
                Instr::Nop => {}
                Instr::Block { ty, end_pc } => {
                    frame.labels.push(Label {
                        target: *end_pc,
                        stack_base: stack.len(),
                        arity: ty.arity() as u8,
                        pop_self: false,
                    });
                }
                Instr::Loop { .. } => {
                    frame.labels.push(Label {
                        target: (frame.pc - 1) as u32,
                        stack_base: stack.len(),
                        arity: 0,
                        pop_self: true,
                    });
                }
                Instr::If {
                    ty,
                    else_pc,
                    end_pc,
                } => {
                    let cond = pop!().as_i32();
                    frame.labels.push(Label {
                        target: *end_pc,
                        stack_base: stack.len(),
                        arity: ty.arity() as u8,
                        pop_self: false,
                    });
                    if cond == 0 {
                        frame.pc = if else_pc == end_pc {
                            *end_pc as usize
                        } else {
                            *else_pc as usize + 1
                        };
                    }
                }
                Instr::Else { end_pc } => {
                    // Then-arm fell through: jump to End (which pops the label).
                    frame.pc = *end_pc as usize;
                }
                Instr::End => {
                    match frame.labels.pop() {
                        Some(_) => {}
                        None => {
                            // Function-level end: return.
                            if Self::do_return(&module, &mut frames, &mut stack) {
                                break 'outer;
                            }
                        }
                    }
                }
                Instr::Br { depth } => {
                    // Depth == open-label count targets the function label
                    // itself: a return.
                    if *depth as usize == frame.labels.len() {
                        if Self::do_return(&module, &mut frames, &mut stack) {
                            break 'outer;
                        }
                    } else {
                        Self::do_branch(frame, &mut stack, *depth);
                    }
                }
                Instr::BrIf { depth } => {
                    let cond = pop!().as_i32();
                    if cond != 0 {
                        if *depth as usize == frame.labels.len() {
                            if Self::do_return(&module, &mut frames, &mut stack) {
                                break 'outer;
                            }
                        } else {
                            Self::do_branch(frame, &mut stack, *depth);
                        }
                    }
                }
                Instr::BrTable { targets, default } => {
                    let idx = pop!().as_u32() as usize;
                    let depth = targets.get(idx).copied().unwrap_or(*default);
                    if depth as usize == frame.labels.len() {
                        if Self::do_return(&module, &mut frames, &mut stack) {
                            break 'outer;
                        }
                    } else {
                        Self::do_branch(frame, &mut stack, depth);
                    }
                }
                Instr::Return => {
                    if Self::do_return(&module, &mut frames, &mut stack) {
                        break 'outer;
                    }
                }
                Instr::Call { func } => {
                    self.do_call(&module, *func, &mut frames, &mut stack, n_imports)?;
                }
                Instr::CallIndirect { type_idx } => {
                    let idx = pop!().as_u32();
                    let func = self.table.get(idx)?;
                    let expected = &module.types[*type_idx as usize];
                    let actual = module.func_type(func).ok_or(Trap::UninitializedElement)?;
                    if actual != expected {
                        return Err(Trap::IndirectCallTypeMismatch);
                    }
                    self.do_call(&module, func, &mut frames, &mut stack, n_imports)?;
                }
                Instr::Drop => {
                    pop!();
                }
                Instr::Select => {
                    let cond = pop!().as_i32();
                    let b = pop!();
                    let a = pop!();
                    stack.push(if cond != 0 { a } else { b });
                }
                Instr::LocalGet(idx) => {
                    stack.push(frame.locals[*idx as usize]);
                }
                Instr::LocalSet(idx) => {
                    frame.locals[*idx as usize] = pop!();
                }
                Instr::LocalTee(idx) => {
                    frame.locals[*idx as usize] = *stack.last().expect("validated");
                }
                Instr::GlobalGet(idx) => {
                    stack.push(self.globals[*idx as usize]);
                }
                Instr::GlobalSet(idx) => {
                    self.globals[*idx as usize] = pop!();
                }

                Instr::I32Load(m) => load!(m, 4, |b| Value::I32(i32::from_le_bytes(b))),
                Instr::I64Load(m) => load!(m, 8, |b| Value::I64(i64::from_le_bytes(b))),
                Instr::F32Load(m) => load!(m, 4, |b| Value::F32(f32::from_le_bytes(b))),
                Instr::F64Load(m) => load!(m, 8, |b| Value::F64(f64::from_le_bytes(b))),
                Instr::I32Load8S(m) => load!(m, 1, |b: [u8; 1]| Value::I32(b[0] as i8 as i32)),
                Instr::I32Load8U(m) => load!(m, 1, |b: [u8; 1]| Value::I32(b[0] as i32)),
                Instr::I32Load16S(m) => {
                    load!(m, 2, |b| Value::I32(i16::from_le_bytes(b) as i32))
                }
                Instr::I32Load16U(m) => {
                    load!(m, 2, |b| Value::I32(u16::from_le_bytes(b) as i32))
                }
                Instr::I64Load8S(m) => load!(m, 1, |b: [u8; 1]| Value::I64(b[0] as i8 as i64)),
                Instr::I64Load8U(m) => load!(m, 1, |b: [u8; 1]| Value::I64(b[0] as i64)),
                Instr::I64Load16S(m) => {
                    load!(m, 2, |b| Value::I64(i16::from_le_bytes(b) as i64))
                }
                Instr::I64Load16U(m) => {
                    load!(m, 2, |b| Value::I64(u16::from_le_bytes(b) as i64))
                }
                Instr::I64Load32S(m) => {
                    load!(m, 4, |b| Value::I64(i32::from_le_bytes(b) as i64))
                }
                Instr::I64Load32U(m) => {
                    load!(m, 4, |b| Value::I64(u32::from_le_bytes(b) as i64))
                }
                Instr::I32Store(m) => store!(m, as_i32, |v: i32| v.to_le_bytes()),
                Instr::I64Store(m) => store!(m, as_i64, |v: i64| v.to_le_bytes()),
                Instr::F32Store(m) => store!(m, as_f32, |v: f32| v.to_le_bytes()),
                Instr::F64Store(m) => store!(m, as_f64, |v: f64| v.to_le_bytes()),
                Instr::I32Store8(m) => store!(m, as_i32, |v: i32| [(v & 0xff) as u8]),
                Instr::I32Store16(m) => store!(m, as_i32, |v: i32| (v as u16).to_le_bytes()),
                Instr::I64Store8(m) => store!(m, as_i64, |v: i64| [(v & 0xff) as u8]),
                Instr::I64Store16(m) => store!(m, as_i64, |v: i64| (v as u16).to_le_bytes()),
                Instr::I64Store32(m) => store!(m, as_i64, |v: i64| (v as u32).to_le_bytes()),
                Instr::MemorySize => stack.push(Value::I32(self.memory.size_pages() as i32)),
                Instr::MemoryGrow => {
                    let delta = pop!().as_u32();
                    let result = self.memory.grow(delta).map(|p| p as i32).unwrap_or(-1);
                    stack.push(Value::I32(result));
                }
                Instr::MemoryCopy => {
                    let len = pop!().as_u32();
                    let src = pop!().as_u32();
                    let dst = pop!().as_u32();
                    self.memory.copy(dst, src, len)?;
                }
                Instr::MemoryFill => {
                    let len = pop!().as_u32();
                    let byte = pop!().as_i32() as u8;
                    let dst = pop!().as_u32();
                    self.memory.fill(dst, byte, len)?;
                }

                Instr::I32Const(v) => stack.push(Value::I32(*v)),
                Instr::I64Const(v) => stack.push(Value::I64(*v)),
                Instr::F32Const(v) => stack.push(Value::F32(*v)),
                Instr::F64Const(v) => stack.push(Value::F64(*v)),

                Instr::I32Eqz => {
                    let a = pop!().as_i32();
                    stack.push(Value::I32((a == 0) as i32));
                }
                Instr::I32Eq => relop_i32!(|a, b| a == b),
                Instr::I32Ne => relop_i32!(|a, b| a != b),
                Instr::I32LtS => relop_i32!(|a, b| a < b),
                Instr::I32LtU => relop_i32!(|a: i32, b: i32| (a as u32) < (b as u32)),
                Instr::I32GtS => relop_i32!(|a, b| a > b),
                Instr::I32GtU => relop_i32!(|a: i32, b: i32| (a as u32) > (b as u32)),
                Instr::I32LeS => relop_i32!(|a, b| a <= b),
                Instr::I32LeU => relop_i32!(|a: i32, b: i32| (a as u32) <= (b as u32)),
                Instr::I32GeS => relop_i32!(|a, b| a >= b),
                Instr::I32GeU => relop_i32!(|a: i32, b: i32| (a as u32) >= (b as u32)),
                Instr::I64Eqz => {
                    let a = pop!().as_i64();
                    stack.push(Value::I32((a == 0) as i32));
                }
                Instr::I64Eq => relop_i64!(|a, b| a == b),
                Instr::I64Ne => relop_i64!(|a, b| a != b),
                Instr::I64LtS => relop_i64!(|a, b| a < b),
                Instr::I64LtU => relop_i64!(|a: i64, b: i64| (a as u64) < (b as u64)),
                Instr::I64GtS => relop_i64!(|a, b| a > b),
                Instr::I64GtU => relop_i64!(|a: i64, b: i64| (a as u64) > (b as u64)),
                Instr::I64LeS => relop_i64!(|a, b| a <= b),
                Instr::I64LeU => relop_i64!(|a: i64, b: i64| (a as u64) <= (b as u64)),
                Instr::I64GeS => relop_i64!(|a, b| a >= b),
                Instr::I64GeU => relop_i64!(|a: i64, b: i64| (a as u64) >= (b as u64)),
                Instr::F32Eq => relop_f32!(|a, b| a == b),
                Instr::F32Ne => relop_f32!(|a, b| a != b),
                Instr::F32Lt => relop_f32!(|a, b| a < b),
                Instr::F32Gt => relop_f32!(|a, b| a > b),
                Instr::F32Le => relop_f32!(|a, b| a <= b),
                Instr::F32Ge => relop_f32!(|a, b| a >= b),
                Instr::F64Eq => relop_f64!(|a, b| a == b),
                Instr::F64Ne => relop_f64!(|a, b| a != b),
                Instr::F64Lt => relop_f64!(|a, b| a < b),
                Instr::F64Gt => relop_f64!(|a, b| a > b),
                Instr::F64Le => relop_f64!(|a, b| a <= b),
                Instr::F64Ge => relop_f64!(|a, b| a >= b),

                Instr::I32Clz => unop!(as_i32, I32, |a: i32| a.leading_zeros() as i32),
                Instr::I32Ctz => unop!(as_i32, I32, |a: i32| a.trailing_zeros() as i32),
                Instr::I32Popcnt => unop!(as_i32, I32, |a: i32| a.count_ones() as i32),
                Instr::I32Add => binop_i32!(|a: i32, b: i32| a.wrapping_add(b)),
                Instr::I32Sub => binop_i32!(|a: i32, b: i32| a.wrapping_sub(b)),
                Instr::I32Mul => binop_i32!(|a: i32, b: i32| a.wrapping_mul(b)),
                Instr::I32DivS => binop_i32_trap!(|a: i32, b: i32| {
                    if b == 0 {
                        Err(Trap::IntegerDivByZero)
                    } else if a == i32::MIN && b == -1 {
                        Err(Trap::IntegerOverflow)
                    } else {
                        Ok(a.wrapping_div(b))
                    }
                }),
                Instr::I32DivU => binop_i32_trap!(|a: i32, b: i32| {
                    if b == 0 {
                        Err(Trap::IntegerDivByZero)
                    } else {
                        Ok(((a as u32) / (b as u32)) as i32)
                    }
                }),
                Instr::I32RemS => binop_i32_trap!(|a: i32, b: i32| {
                    if b == 0 {
                        Err(Trap::IntegerDivByZero)
                    } else {
                        Ok(a.wrapping_rem(b))
                    }
                }),
                Instr::I32RemU => binop_i32_trap!(|a: i32, b: i32| {
                    if b == 0 {
                        Err(Trap::IntegerDivByZero)
                    } else {
                        Ok(((a as u32) % (b as u32)) as i32)
                    }
                }),
                Instr::I32And => binop_i32!(|a, b| a & b),
                Instr::I32Or => binop_i32!(|a, b| a | b),
                Instr::I32Xor => binop_i32!(|a, b| a ^ b),
                Instr::I32Shl => binop_i32!(|a: i32, b: i32| a.wrapping_shl(b as u32)),
                Instr::I32ShrS => binop_i32!(|a: i32, b: i32| a.wrapping_shr(b as u32)),
                Instr::I32ShrU => {
                    binop_i32!(|a: i32, b: i32| ((a as u32).wrapping_shr(b as u32)) as i32)
                }
                Instr::I32Rotl => binop_i32!(|a: i32, b: i32| a.rotate_left(b as u32 & 31)),
                Instr::I32Rotr => binop_i32!(|a: i32, b: i32| a.rotate_right(b as u32 & 31)),

                Instr::I64Clz => unop!(as_i64, I64, |a: i64| a.leading_zeros() as i64),
                Instr::I64Ctz => unop!(as_i64, I64, |a: i64| a.trailing_zeros() as i64),
                Instr::I64Popcnt => unop!(as_i64, I64, |a: i64| a.count_ones() as i64),
                Instr::I64Add => binop_i64!(|a: i64, b: i64| a.wrapping_add(b)),
                Instr::I64Sub => binop_i64!(|a: i64, b: i64| a.wrapping_sub(b)),
                Instr::I64Mul => binop_i64!(|a: i64, b: i64| a.wrapping_mul(b)),
                Instr::I64DivS => binop_i64_trap!(|a: i64, b: i64| {
                    if b == 0 {
                        Err(Trap::IntegerDivByZero)
                    } else if a == i64::MIN && b == -1 {
                        Err(Trap::IntegerOverflow)
                    } else {
                        Ok(a.wrapping_div(b))
                    }
                }),
                Instr::I64DivU => binop_i64_trap!(|a: i64, b: i64| {
                    if b == 0 {
                        Err(Trap::IntegerDivByZero)
                    } else {
                        Ok(((a as u64) / (b as u64)) as i64)
                    }
                }),
                Instr::I64RemS => binop_i64_trap!(|a: i64, b: i64| {
                    if b == 0 {
                        Err(Trap::IntegerDivByZero)
                    } else {
                        Ok(a.wrapping_rem(b))
                    }
                }),
                Instr::I64RemU => binop_i64_trap!(|a: i64, b: i64| {
                    if b == 0 {
                        Err(Trap::IntegerDivByZero)
                    } else {
                        Ok(((a as u64) % (b as u64)) as i64)
                    }
                }),
                Instr::I64And => binop_i64!(|a, b| a & b),
                Instr::I64Or => binop_i64!(|a, b| a | b),
                Instr::I64Xor => binop_i64!(|a, b| a ^ b),
                Instr::I64Shl => binop_i64!(|a: i64, b: i64| a.wrapping_shl(b as u32)),
                Instr::I64ShrS => binop_i64!(|a: i64, b: i64| a.wrapping_shr(b as u32)),
                Instr::I64ShrU => {
                    binop_i64!(|a: i64, b: i64| ((a as u64).wrapping_shr(b as u32)) as i64)
                }
                Instr::I64Rotl => binop_i64!(|a: i64, b: i64| a.rotate_left(b as u32 & 63)),
                Instr::I64Rotr => binop_i64!(|a: i64, b: i64| a.rotate_right(b as u32 & 63)),

                Instr::F32Abs => unop!(as_f32, F32, |a: f32| a.abs()),
                Instr::F32Neg => unop!(as_f32, F32, |a: f32| -a),
                Instr::F32Ceil => unop!(as_f32, F32, |a: f32| a.ceil()),
                Instr::F32Floor => unop!(as_f32, F32, |a: f32| a.floor()),
                Instr::F32Trunc => unop!(as_f32, F32, |a: f32| a.trunc()),
                Instr::F32Nearest => unop!(as_f32, F32, |a: f32| a.round_ties_even()),
                Instr::F32Sqrt => unop!(as_f32, F32, |a: f32| a.sqrt()),
                Instr::F32Add => binop_f32!(|a: f32, b: f32| a + b),
                Instr::F32Sub => binop_f32!(|a: f32, b: f32| a - b),
                Instr::F32Mul => binop_f32!(|a: f32, b: f32| a * b),
                Instr::F32Div => binop_f32!(|a: f32, b: f32| a / b),
                Instr::F32Min => binop_f32!(wasm_fmin32),
                Instr::F32Max => binop_f32!(wasm_fmax32),
                Instr::F32Copysign => binop_f32!(|a: f32, b: f32| a.copysign(b)),
                Instr::F64Abs => unop!(as_f64, F64, |a: f64| a.abs()),
                Instr::F64Neg => unop!(as_f64, F64, |a: f64| -a),
                Instr::F64Ceil => unop!(as_f64, F64, |a: f64| a.ceil()),
                Instr::F64Floor => unop!(as_f64, F64, |a: f64| a.floor()),
                Instr::F64Trunc => unop!(as_f64, F64, |a: f64| a.trunc()),
                Instr::F64Nearest => unop!(as_f64, F64, |a: f64| a.round_ties_even()),
                Instr::F64Sqrt => unop!(as_f64, F64, |a: f64| a.sqrt()),
                Instr::F64Add => binop_f64!(|a: f64, b: f64| a + b),
                Instr::F64Sub => binop_f64!(|a: f64, b: f64| a - b),
                Instr::F64Mul => binop_f64!(|a: f64, b: f64| a * b),
                Instr::F64Div => binop_f64!(|a: f64, b: f64| a / b),
                Instr::F64Min => binop_f64!(wasm_fmin64),
                Instr::F64Max => binop_f64!(wasm_fmax64),
                Instr::F64Copysign => binop_f64!(|a: f64, b: f64| a.copysign(b)),

                Instr::I32WrapI64 => {
                    let a = pop!().as_i64();
                    stack.push(Value::I32(a as i32));
                }
                Instr::I32TruncF32S => {
                    let a = pop!().as_f32();
                    stack.push(Value::I32(trunc_f32_to_i32_s(a)?));
                }
                Instr::I32TruncF32U => {
                    let a = pop!().as_f32();
                    stack.push(Value::I32(trunc_f32_to_u32(a)? as i32));
                }
                Instr::I32TruncF64S => {
                    let a = pop!().as_f64();
                    stack.push(Value::I32(trunc_f64_to_i32_s(a)?));
                }
                Instr::I32TruncF64U => {
                    let a = pop!().as_f64();
                    stack.push(Value::I32(trunc_f64_to_u32(a)? as i32));
                }
                Instr::I64ExtendI32S => {
                    let a = pop!().as_i32();
                    stack.push(Value::I64(a as i64));
                }
                Instr::I64ExtendI32U => {
                    let a = pop!().as_i32();
                    stack.push(Value::I64(a as u32 as i64));
                }
                Instr::I64TruncF32S => {
                    let a = pop!().as_f32();
                    stack.push(Value::I64(trunc_f32_to_i64_s(a)?));
                }
                Instr::I64TruncF32U => {
                    let a = pop!().as_f32();
                    stack.push(Value::I64(trunc_f32_to_u64(a)? as i64));
                }
                Instr::I64TruncF64S => {
                    let a = pop!().as_f64();
                    stack.push(Value::I64(trunc_f64_to_i64_s(a)?));
                }
                Instr::I64TruncF64U => {
                    let a = pop!().as_f64();
                    stack.push(Value::I64(trunc_f64_to_u64(a)? as i64));
                }
                Instr::F32ConvertI32S => {
                    let a = pop!().as_i32();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32ConvertI32U => {
                    let a = pop!().as_i32();
                    stack.push(Value::F32(a as u32 as f32));
                }
                Instr::F32ConvertI64S => {
                    let a = pop!().as_i64();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32ConvertI64U => {
                    let a = pop!().as_i64();
                    stack.push(Value::F32(a as u64 as f32));
                }
                Instr::F32DemoteF64 => {
                    let a = pop!().as_f64();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F64ConvertI32S => {
                    let a = pop!().as_i32();
                    stack.push(Value::F64(a as f64));
                }
                Instr::F64ConvertI32U => {
                    let a = pop!().as_i32();
                    stack.push(Value::F64(a as u32 as f64));
                }
                Instr::F64ConvertI64S => {
                    let a = pop!().as_i64();
                    stack.push(Value::F64(a as f64));
                }
                Instr::F64ConvertI64U => {
                    let a = pop!().as_i64();
                    stack.push(Value::F64(a as u64 as f64));
                }
                Instr::F64PromoteF32 => {
                    let a = pop!().as_f32();
                    stack.push(Value::F64(a as f64));
                }
                Instr::I32ReinterpretF32 => {
                    let a = pop!().as_f32();
                    stack.push(Value::I32(a.to_bits() as i32));
                }
                Instr::I64ReinterpretF64 => {
                    let a = pop!().as_f64();
                    stack.push(Value::I64(a.to_bits() as i64));
                }
                Instr::F32ReinterpretI32 => {
                    let a = pop!().as_i32();
                    stack.push(Value::F32(f32::from_bits(a as u32)));
                }
                Instr::F64ReinterpretI64 => {
                    let a = pop!().as_i64();
                    stack.push(Value::F64(f64::from_bits(a as u64)));
                }
                Instr::I32Extend8S => unop!(as_i32, I32, |a: i32| a as i8 as i32),
                Instr::I32Extend16S => unop!(as_i32, I32, |a: i32| a as i16 as i32),
                Instr::I64Extend8S => unop!(as_i64, I64, |a: i64| a as i8 as i64),
                Instr::I64Extend16S => unop!(as_i64, I64, |a: i64| a as i16 as i64),
                Instr::I64Extend32S => unop!(as_i64, I64, |a: i64| a as i32 as i64),
                Instr::I32TruncSatF32S => {
                    let a = pop!().as_f32();
                    stack.push(Value::I32(a as i32));
                }
                Instr::I32TruncSatF32U => {
                    let a = pop!().as_f32();
                    stack.push(Value::I32(a as u32 as i32));
                }
                Instr::I32TruncSatF64S => {
                    let a = pop!().as_f64();
                    stack.push(Value::I32(a as i32));
                }
                Instr::I32TruncSatF64U => {
                    let a = pop!().as_f64();
                    stack.push(Value::I32(a as u32 as i32));
                }
                Instr::I64TruncSatF32S => {
                    let a = pop!().as_f32();
                    stack.push(Value::I64(a as i64));
                }
                Instr::I64TruncSatF32U => {
                    let a = pop!().as_f32();
                    stack.push(Value::I64(a as u64 as i64));
                }
                Instr::I64TruncSatF64S => {
                    let a = pop!().as_f64();
                    stack.push(Value::I64(a as i64));
                }
                Instr::I64TruncSatF64U => {
                    let a = pop!().as_f64();
                    stack.push(Value::I64(a as u64 as i64));
                }
            }
        }

        Ok(stack.pop())
    }

    /// Branch within the current frame.
    #[inline]
    fn do_branch(frame: &mut Frame, stack: &mut Vec<Value>, depth: u32) {
        let idx = frame.labels.len() - 1 - depth as usize;
        let label = frame.labels[idx];
        let arity = label.arity as usize;
        // Carry the label's result values across the unwind.
        let carried_start = stack.len() - arity;
        // Move values down to the label's base height.
        if carried_start > label.stack_base {
            let (lo, hi) = stack.split_at_mut(carried_start);
            lo[label.stack_base..label.stack_base + arity].copy_from_slice(&hi[..arity]);
        }
        stack.truncate(label.stack_base + arity);
        let keep = if label.pop_self { idx } else { idx + 1 };
        frame.labels.truncate(keep);
        frame.pc = label.target as usize;
    }

    /// Pop the current frame; returns true when the entry frame was popped
    /// (execution is complete).
    fn do_return(module: &Module, frames: &mut Vec<Frame>, stack: &mut Vec<Value>) -> bool {
        let frame = frames.pop().expect("at least one frame");
        let ty = &module.types[module.funcs[frame.func as usize].type_idx as usize];
        let arity = ty.results.len();
        // Carry results, drop everything above the frame's base.
        if stack.len() - arity > frame.stack_base {
            let carried_start = stack.len() - arity;
            let (lo, hi) = stack.split_at_mut(carried_start);
            lo[frame.stack_base..frame.stack_base + arity].copy_from_slice(&hi[..arity]);
        }
        stack.truncate(frame.stack_base + arity);
        frames.is_empty()
    }

    /// Call a function (host or wasm) from inside the interpreter loop.
    fn do_call(
        &mut self,
        module: &Arc<Module>,
        func: u32,
        frames: &mut Vec<Frame>,
        stack: &mut Vec<Value>,
        n_imports: u32,
    ) -> Result<(), Trap> {
        if func < n_imports {
            // Host call: pop args, run closure, push result.
            let def = &self.host_funcs[func as usize];
            let ty = def.ty.clone();
            let f = Arc::clone(&def.func);
            let argc = ty.params.len();
            let args: Vec<Value> = stack.split_off(stack.len() - argc);
            let result = f(&mut self.data, &mut self.memory, &args)?;
            match (ty.results.first(), result) {
                (Some(expected), Some(v)) if *expected == v.ty() => stack.push(v),
                (None, None) => {}
                (expected, got) => {
                    return Err(Trap::HostError(format!(
                        "host function returned {got:?}, signature says {expected:?}"
                    )))
                }
            }
            Ok(())
        } else {
            if frames.len() >= self.limits.max_call_depth {
                return Err(Trap::StackOverflow);
            }
            frames.push(Frame::enter(module, func - n_imports, stack));
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // The flat-IR executor (see `crate::compile`).
    // ------------------------------------------------------------------

    /// Run `entry` on the compiled flat IR. Reuses the instance's scratch
    /// buffers so steady-state invocations perform no allocation.
    fn exec_compiled(
        &mut self,
        entry: u32,
        args: &[Value],
        deadline: Option<Instant>,
        instrs: &mut u64,
    ) -> Result<Option<Value>, Trap> {
        let module = Arc::clone(&self.module);
        let n_imports = module.num_imported_funcs();

        // Direct host-function entry (rare but legal via re-export).
        if entry < n_imports {
            let def = &self.host_funcs[entry as usize];
            let func = Arc::clone(&def.func);
            return func(&mut self.data, &mut self.memory, args);
        }

        let mut stack = std::mem::take(&mut self.scratch_stack);
        let mut locals = std::mem::take(&mut self.scratch_locals);
        let mut frames = std::mem::take(&mut self.scratch_frames);
        stack.clear();
        locals.clear();
        frames.clear();
        stack.extend_from_slice(args);

        let result = self.run_compiled(
            &module,
            entry - n_imports,
            deadline,
            instrs,
            &mut stack,
            &mut locals,
            &mut frames,
        );
        let out = result.map(|()| stack.pop());

        self.scratch_stack = stack;
        self.scratch_locals = locals;
        self.scratch_frames = frames;
        out
    }

    /// The hot loop: dispatch [`Op`]s until the entry frame returns.
    #[allow(clippy::too_many_arguments)]
    fn run_compiled(
        &mut self,
        module: &Arc<Module>,
        entry_local: u32,
        deadline: Option<Instant>,
        instrs: &mut u64,
        stack: &mut Vec<Value>,
        locals: &mut Vec<Value>,
        frames: &mut Vec<CFrame>,
    ) -> Result<(), Trap> {
        let n_imports = module.num_imported_funcs();
        let mut until_deadline_check = DEADLINE_CHECK_INTERVAL as i64;

        // Entry frame: arguments move off the stack into the locals arena.
        {
            let cf = module.compiled_func(entry_local);
            let locals_base = locals.len() as u32;
            locals.extend(stack.drain(stack.len() - cf.argc as usize..));
            locals.extend_from_slice(&cf.locals_init);
            frames.push(CFrame {
                func: entry_local,
                pc: 0,
                stack_base: stack.len() as u32,
                locals_base,
            });
        }

        'frames: loop {
            // Per-activation state, cached in locals until a call/return
            // switches frames.
            let frame = *frames.last().expect("at least one frame");
            let mut pc = frame.pc as usize;
            let stack_base = frame.stack_base as usize;
            let locals_base = frame.locals_base as usize;
            let cf = module.compiled_func(frame.func);
            let ops = &cf.ops;
            let branches = &cf.branches;

            macro_rules! pop {
                () => {
                    stack.pop().expect("validated: stack non-empty")
                };
            }
            macro_rules! local {
                ($i:expr) => {
                    locals[locals_base + $i as usize]
                };
            }
            /// Unwind to a side-table target; evaluates to the new pc.
            macro_rules! branch_to {
                ($bi:expr) => {{
                    let bt = branches[$bi as usize];
                    let arity = bt.arity as usize;
                    let dest = stack_base + bt.height as usize;
                    let src = stack.len() - arity;
                    if src > dest {
                        let (lo, hi) = stack.split_at_mut(src);
                        lo[dest..dest + arity].copy_from_slice(&hi[..arity]);
                    }
                    stack.truncate(dest + arity);
                    bt.pc as usize
                }};
            }
            macro_rules! binop_i32_trap {
                ($f:expr) => {{
                    let b = pop!().as_i32();
                    let a = pop!().as_i32();
                    stack.push(Value::I32($f(a, b)?));
                }};
            }
            macro_rules! binop_i64 {
                ($f:expr) => {{
                    let b = pop!().as_i64();
                    let a = pop!().as_i64();
                    stack.push(Value::I64($f(a, b)));
                }};
            }
            macro_rules! binop_i64_trap {
                ($f:expr) => {{
                    let b = pop!().as_i64();
                    let a = pop!().as_i64();
                    stack.push(Value::I64($f(a, b)?));
                }};
            }
            macro_rules! relop_i64 {
                ($f:expr) => {{
                    let b = pop!().as_i64();
                    let a = pop!().as_i64();
                    stack.push(Value::I32($f(a, b) as i32));
                }};
            }
            macro_rules! relop_f32 {
                ($f:expr) => {{
                    let b = pop!().as_f32();
                    let a = pop!().as_f32();
                    stack.push(Value::I32($f(a, b) as i32));
                }};
            }
            macro_rules! relop_f64 {
                ($f:expr) => {{
                    let b = pop!().as_f64();
                    let a = pop!().as_f64();
                    stack.push(Value::I32($f(a, b) as i32));
                }};
            }
            macro_rules! binop_f32 {
                ($f:expr) => {{
                    let b = pop!().as_f32();
                    let a = pop!().as_f32();
                    stack.push(Value::F32($f(a, b)));
                }};
            }
            macro_rules! binop_f64 {
                ($f:expr) => {{
                    let b = pop!().as_f64();
                    let a = pop!().as_f64();
                    stack.push(Value::F64($f(a, b)));
                }};
            }
            macro_rules! unop {
                ($as:ident, $wrap:ident, $f:expr) => {{
                    let a = pop!().$as();
                    stack.push(Value::$wrap($f(a)));
                }};
            }
            macro_rules! cload {
                ($off:expr, $n:expr, $conv:expr) => {{
                    let addr = pop!().as_u32();
                    let bytes = self.memory.read::<$n>(addr, $off)?;
                    stack.push($conv(bytes));
                }};
            }
            macro_rules! cstore {
                ($off:expr, $pop:ident, $to:expr) => {{
                    let v = pop!().$pop();
                    let addr = pop!().as_u32();
                    self.memory.write(addr, $off, $to(v))?;
                }};
            }

            loop {
                let op = ops[pc];
                pc += 1;
                match op {
                    Op::Meter { cost, peak } => {
                        if let Some(fuel) = self.fuel.as_mut() {
                            if *fuel < cost as u64 {
                                // The reference walker would retire exactly
                                // the remaining fuel before trapping.
                                *instrs += *fuel;
                                self.fuel = Some(0);
                                return Err(Trap::OutOfFuel);
                            }
                            *fuel -= cost as u64;
                        }
                        *instrs += cost as u64;
                        if let Some(dl) = deadline {
                            until_deadline_check -= cost as i64;
                            if until_deadline_check <= 0 {
                                until_deadline_check = DEADLINE_CHECK_INTERVAL as i64;
                                if Instant::now() > dl {
                                    return Err(Trap::DeadlineExceeded);
                                }
                            }
                        }
                        if stack.len() + peak as usize > self.limits.max_value_stack {
                            return Err(Trap::ValueStackExhausted);
                        }
                    }
                    Op::Unreachable => return Err(Trap::Unreachable),
                    Op::Br(b) => pc = branch_to!(b),
                    Op::BrIf(b) => {
                        if pop!().as_i32() != 0 {
                            pc = branch_to!(b);
                        }
                    }
                    Op::BrIfZ(b) => {
                        if pop!().as_i32() == 0 {
                            pc = branch_to!(b);
                        }
                    }
                    Op::BrIfCmp { op, br } => {
                        let b = pop!().as_i32();
                        let a = pop!().as_i32();
                        if op.eval(a, b) != 0 {
                            pc = branch_to!(br);
                        }
                    }
                    Op::BrIfLL { op, a, b, br } => {
                        if op.eval(local!(a).as_i32(), local!(b).as_i32()) != 0 {
                            pc = branch_to!(br);
                        }
                    }
                    Op::BrTable { start, n } => {
                        let sel = pop!().as_u32().min(n);
                        pc = branch_to!(start + sel);
                    }
                    Op::Return => {
                        let arity = cf.ret_arity as usize;
                        let src = stack.len() - arity;
                        if src > stack_base {
                            let (lo, hi) = stack.split_at_mut(src);
                            lo[stack_base..stack_base + arity].copy_from_slice(&hi[..arity]);
                        }
                        stack.truncate(stack_base + arity);
                        locals.truncate(locals_base);
                        frames.pop();
                        if frames.is_empty() {
                            return Ok(());
                        }
                        continue 'frames;
                    }
                    Op::CallWasm(f) => {
                        if frames.len() >= self.limits.max_call_depth {
                            return Err(Trap::StackOverflow);
                        }
                        frames.last_mut().expect("at least one frame").pc = pc as u32;
                        let callee = module.compiled_func(f);
                        let locals_base = locals.len() as u32;
                        locals.extend(stack.drain(stack.len() - callee.argc as usize..));
                        locals.extend_from_slice(&callee.locals_init);
                        frames.push(CFrame {
                            func: f,
                            pc: 0,
                            stack_base: stack.len() as u32,
                            locals_base,
                        });
                        continue 'frames;
                    }
                    Op::CallHost { f, argc, ret } => {
                        let expected = match ret {
                            0 => None,
                            1 => Some(ValType::I32),
                            2 => Some(ValType::I64),
                            3 => Some(ValType::F32),
                            _ => Some(ValType::F64),
                        };
                        self.call_host_compiled(f, argc as usize, expected, stack)?;
                    }
                    Op::CallIndirect(type_idx) => {
                        let idx = pop!().as_u32();
                        let func = self.table.get(idx)?;
                        let expected = &module.types[type_idx as usize];
                        let actual = module.func_type(func).ok_or(Trap::UninitializedElement)?;
                        if actual != expected {
                            return Err(Trap::IndirectCallTypeMismatch);
                        }
                        if func < n_imports {
                            let ret = expected.results.first().copied();
                            let argc = expected.params.len();
                            self.call_host_compiled(func, argc, ret, stack)?;
                        } else {
                            if frames.len() >= self.limits.max_call_depth {
                                return Err(Trap::StackOverflow);
                            }
                            frames.last_mut().expect("at least one frame").pc = pc as u32;
                            let local_func = func - n_imports;
                            let callee = module.compiled_func(local_func);
                            let locals_base = locals.len() as u32;
                            locals.extend(stack.drain(stack.len() - callee.argc as usize..));
                            locals.extend_from_slice(&callee.locals_init);
                            frames.push(CFrame {
                                func: local_func,
                                pc: 0,
                                stack_base: stack.len() as u32,
                                locals_base,
                            });
                            continue 'frames;
                        }
                    }
                    Op::Drop => {
                        pop!();
                    }
                    Op::Select => {
                        let cond = pop!().as_i32();
                        let b = pop!();
                        let a = pop!();
                        stack.push(if cond != 0 { a } else { b });
                    }
                    Op::LocalGet(i) => stack.push(local!(i)),
                    Op::LocalGet2 { a, b } => {
                        stack.push(local!(a));
                        stack.push(local!(b));
                    }
                    Op::LocalSet(i) => local!(i) = pop!(),
                    Op::LocalTee(i) => local!(i) = *stack.last().expect("validated"),
                    Op::LocalSetC { dst, k } => local!(dst) = Value::I32(k),
                    Op::LocalCopy { src, dst } => local!(dst) = local!(src),
                    Op::GlobalGet(i) => stack.push(self.globals[i as usize]),
                    Op::GlobalSet(i) => self.globals[i as usize] = pop!(),

                    Op::I32Bin(op) => {
                        let b = pop!().as_i32();
                        let a = pop!().as_i32();
                        stack.push(Value::I32(op.eval(a, b)));
                    }
                    Op::I32BinLL { op, a, b } => {
                        stack.push(Value::I32(op.eval(local!(a).as_i32(), local!(b).as_i32())));
                    }
                    Op::I32BinSL { op, b } => {
                        let a = pop!().as_i32();
                        stack.push(Value::I32(op.eval(a, local!(b).as_i32())));
                    }
                    Op::I32BinSC { op, k } => {
                        let a = pop!().as_i32();
                        stack.push(Value::I32(op.eval(a, k)));
                    }
                    Op::I32BinLC { op, a, k } => {
                        stack.push(Value::I32(op.eval(local!(a).as_i32(), k)));
                    }
                    Op::I32BinLLSet { op, a, b, dst } => {
                        local!(dst) = Value::I32(op.eval(local!(a).as_i32(), local!(b).as_i32()));
                    }
                    Op::I32BinLCSet { op, a, k, dst } => {
                        local!(dst) = Value::I32(op.eval(local!(a).as_i32(), k));
                    }
                    Op::I32BinSLSet { op, b, dst } => {
                        let a = pop!().as_i32();
                        local!(dst) = Value::I32(op.eval(a, local!(b).as_i32()));
                    }
                    Op::I32BinSCSet { op, k, dst } => {
                        let a = pop!().as_i32();
                        local!(dst) = Value::I32(op.eval(a, k));
                    }

                    Op::I32LoadL { l, off } => {
                        let addr = local!(l).as_u32();
                        let bytes = self.memory.read::<4>(addr, off)?;
                        stack.push(Value::I32(i32::from_le_bytes(bytes)));
                    }
                    Op::I64LoadL { l, off } => {
                        let addr = local!(l).as_u32();
                        let bytes = self.memory.read::<8>(addr, off)?;
                        stack.push(Value::I64(i64::from_le_bytes(bytes)));
                    }
                    Op::F64LoadL { l, off } => {
                        let addr = local!(l).as_u32();
                        let bytes = self.memory.read::<8>(addr, off)?;
                        stack.push(Value::F64(f64::from_le_bytes(bytes)));
                    }
                    Op::I32Load8UL { l, off } => {
                        let addr = local!(l).as_u32();
                        let bytes = self.memory.read::<1>(addr, off)?;
                        stack.push(Value::I32(bytes[0] as i32));
                    }
                    Op::I32LoadSet { off, dst } => {
                        let addr = pop!().as_u32();
                        let bytes = self.memory.read::<4>(addr, off)?;
                        local!(dst) = Value::I32(i32::from_le_bytes(bytes));
                    }
                    Op::I32LoadLSet { l, off, dst } => {
                        let addr = local!(l).as_u32();
                        let bytes = self.memory.read::<4>(addr, off)?;
                        local!(dst) = Value::I32(i32::from_le_bytes(bytes));
                    }

                    Op::I32Load(off) => cload!(off, 4, |b| Value::I32(i32::from_le_bytes(b))),
                    Op::I64Load(off) => cload!(off, 8, |b| Value::I64(i64::from_le_bytes(b))),
                    Op::F32Load(off) => cload!(off, 4, |b| Value::F32(f32::from_le_bytes(b))),
                    Op::F64Load(off) => cload!(off, 8, |b| Value::F64(f64::from_le_bytes(b))),
                    Op::I32Load8S(off) => {
                        cload!(off, 1, |b: [u8; 1]| Value::I32(b[0] as i8 as i32))
                    }
                    Op::I32Load8U(off) => cload!(off, 1, |b: [u8; 1]| Value::I32(b[0] as i32)),
                    Op::I32Load16S(off) => {
                        cload!(off, 2, |b| Value::I32(i16::from_le_bytes(b) as i32))
                    }
                    Op::I32Load16U(off) => {
                        cload!(off, 2, |b| Value::I32(u16::from_le_bytes(b) as i32))
                    }
                    Op::I64Load8S(off) => {
                        cload!(off, 1, |b: [u8; 1]| Value::I64(b[0] as i8 as i64))
                    }
                    Op::I64Load8U(off) => cload!(off, 1, |b: [u8; 1]| Value::I64(b[0] as i64)),
                    Op::I64Load16S(off) => {
                        cload!(off, 2, |b| Value::I64(i16::from_le_bytes(b) as i64))
                    }
                    Op::I64Load16U(off) => {
                        cload!(off, 2, |b| Value::I64(u16::from_le_bytes(b) as i64))
                    }
                    Op::I64Load32S(off) => {
                        cload!(off, 4, |b| Value::I64(i32::from_le_bytes(b) as i64))
                    }
                    Op::I64Load32U(off) => {
                        cload!(off, 4, |b| Value::I64(u32::from_le_bytes(b) as i64))
                    }
                    Op::I32Store(off) => cstore!(off, as_i32, |v: i32| v.to_le_bytes()),
                    Op::I64Store(off) => cstore!(off, as_i64, |v: i64| v.to_le_bytes()),
                    Op::F32Store(off) => cstore!(off, as_f32, |v: f32| v.to_le_bytes()),
                    Op::F64Store(off) => cstore!(off, as_f64, |v: f64| v.to_le_bytes()),
                    Op::I32Store8(off) => cstore!(off, as_i32, |v: i32| [(v & 0xff) as u8]),
                    Op::I32Store16(off) => cstore!(off, as_i32, |v: i32| (v as u16).to_le_bytes()),
                    Op::I64Store8(off) => cstore!(off, as_i64, |v: i64| [(v & 0xff) as u8]),
                    Op::I64Store16(off) => cstore!(off, as_i64, |v: i64| (v as u16).to_le_bytes()),
                    Op::I64Store32(off) => cstore!(off, as_i64, |v: i64| (v as u32).to_le_bytes()),
                    Op::MemorySize => stack.push(Value::I32(self.memory.size_pages() as i32)),
                    Op::MemoryGrow => {
                        let delta = pop!().as_u32();
                        let result = self.memory.grow(delta).map(|p| p as i32).unwrap_or(-1);
                        stack.push(Value::I32(result));
                    }
                    Op::MemoryCopy => {
                        let len = pop!().as_u32();
                        let src = pop!().as_u32();
                        let dst = pop!().as_u32();
                        self.memory.copy(dst, src, len)?;
                    }
                    Op::MemoryFill => {
                        let len = pop!().as_u32();
                        let byte = pop!().as_i32() as u8;
                        let dst = pop!().as_u32();
                        self.memory.fill(dst, byte, len)?;
                    }

                    Op::I32Const(v) => stack.push(Value::I32(v)),
                    Op::I64Const(v) => stack.push(Value::I64(v)),
                    Op::F32Const(v) => stack.push(Value::F32(v)),
                    Op::F64Const(v) => stack.push(Value::F64(v)),

                    Op::I32Eqz => {
                        let a = pop!().as_i32();
                        stack.push(Value::I32((a == 0) as i32));
                    }
                    Op::I32Clz => unop!(as_i32, I32, |a: i32| a.leading_zeros() as i32),
                    Op::I32Ctz => unop!(as_i32, I32, |a: i32| a.trailing_zeros() as i32),
                    Op::I32Popcnt => unop!(as_i32, I32, |a: i32| a.count_ones() as i32),
                    Op::I32DivS => binop_i32_trap!(|a: i32, b: i32| {
                        if b == 0 {
                            Err(Trap::IntegerDivByZero)
                        } else if a == i32::MIN && b == -1 {
                            Err(Trap::IntegerOverflow)
                        } else {
                            Ok(a.wrapping_div(b))
                        }
                    }),
                    Op::I32DivU => binop_i32_trap!(|a: i32, b: i32| {
                        if b == 0 {
                            Err(Trap::IntegerDivByZero)
                        } else {
                            Ok(((a as u32) / (b as u32)) as i32)
                        }
                    }),
                    Op::I32RemS => binop_i32_trap!(|a: i32, b: i32| {
                        if b == 0 {
                            Err(Trap::IntegerDivByZero)
                        } else {
                            Ok(a.wrapping_rem(b))
                        }
                    }),
                    Op::I32RemU => binop_i32_trap!(|a: i32, b: i32| {
                        if b == 0 {
                            Err(Trap::IntegerDivByZero)
                        } else {
                            Ok(((a as u32) % (b as u32)) as i32)
                        }
                    }),

                    Op::I64Eqz => {
                        let a = pop!().as_i64();
                        stack.push(Value::I32((a == 0) as i32));
                    }
                    Op::I64Eq => relop_i64!(|a, b| a == b),
                    Op::I64Ne => relop_i64!(|a, b| a != b),
                    Op::I64LtS => relop_i64!(|a, b| a < b),
                    Op::I64LtU => relop_i64!(|a: i64, b: i64| (a as u64) < (b as u64)),
                    Op::I64GtS => relop_i64!(|a, b| a > b),
                    Op::I64GtU => relop_i64!(|a: i64, b: i64| (a as u64) > (b as u64)),
                    Op::I64LeS => relop_i64!(|a, b| a <= b),
                    Op::I64LeU => relop_i64!(|a: i64, b: i64| (a as u64) <= (b as u64)),
                    Op::I64GeS => relop_i64!(|a, b| a >= b),
                    Op::I64GeU => relop_i64!(|a: i64, b: i64| (a as u64) >= (b as u64)),
                    Op::I64Clz => unop!(as_i64, I64, |a: i64| a.leading_zeros() as i64),
                    Op::I64Ctz => unop!(as_i64, I64, |a: i64| a.trailing_zeros() as i64),
                    Op::I64Popcnt => unop!(as_i64, I64, |a: i64| a.count_ones() as i64),
                    Op::I64Add => binop_i64!(|a: i64, b: i64| a.wrapping_add(b)),
                    Op::I64Sub => binop_i64!(|a: i64, b: i64| a.wrapping_sub(b)),
                    Op::I64Mul => binop_i64!(|a: i64, b: i64| a.wrapping_mul(b)),
                    Op::I64DivS => binop_i64_trap!(|a: i64, b: i64| {
                        if b == 0 {
                            Err(Trap::IntegerDivByZero)
                        } else if a == i64::MIN && b == -1 {
                            Err(Trap::IntegerOverflow)
                        } else {
                            Ok(a.wrapping_div(b))
                        }
                    }),
                    Op::I64DivU => binop_i64_trap!(|a: i64, b: i64| {
                        if b == 0 {
                            Err(Trap::IntegerDivByZero)
                        } else {
                            Ok(((a as u64) / (b as u64)) as i64)
                        }
                    }),
                    Op::I64RemS => binop_i64_trap!(|a: i64, b: i64| {
                        if b == 0 {
                            Err(Trap::IntegerDivByZero)
                        } else {
                            Ok(a.wrapping_rem(b))
                        }
                    }),
                    Op::I64RemU => binop_i64_trap!(|a: i64, b: i64| {
                        if b == 0 {
                            Err(Trap::IntegerDivByZero)
                        } else {
                            Ok(((a as u64) % (b as u64)) as i64)
                        }
                    }),
                    Op::I64And => binop_i64!(|a, b| a & b),
                    Op::I64Or => binop_i64!(|a, b| a | b),
                    Op::I64Xor => binop_i64!(|a, b| a ^ b),
                    Op::I64Shl => binop_i64!(|a: i64, b: i64| a.wrapping_shl(b as u32)),
                    Op::I64ShrS => binop_i64!(|a: i64, b: i64| a.wrapping_shr(b as u32)),
                    Op::I64ShrU => {
                        binop_i64!(|a: i64, b: i64| ((a as u64).wrapping_shr(b as u32)) as i64)
                    }
                    Op::I64Rotl => binop_i64!(|a: i64, b: i64| a.rotate_left(b as u32 & 63)),
                    Op::I64Rotr => binop_i64!(|a: i64, b: i64| a.rotate_right(b as u32 & 63)),

                    Op::F32Eq => relop_f32!(|a, b| a == b),
                    Op::F32Ne => relop_f32!(|a, b| a != b),
                    Op::F32Lt => relop_f32!(|a, b| a < b),
                    Op::F32Gt => relop_f32!(|a, b| a > b),
                    Op::F32Le => relop_f32!(|a, b| a <= b),
                    Op::F32Ge => relop_f32!(|a, b| a >= b),
                    Op::F64Eq => relop_f64!(|a, b| a == b),
                    Op::F64Ne => relop_f64!(|a, b| a != b),
                    Op::F64Lt => relop_f64!(|a, b| a < b),
                    Op::F64Gt => relop_f64!(|a, b| a > b),
                    Op::F64Le => relop_f64!(|a, b| a <= b),
                    Op::F64Ge => relop_f64!(|a, b| a >= b),

                    Op::F32Abs => unop!(as_f32, F32, |a: f32| a.abs()),
                    Op::F32Neg => unop!(as_f32, F32, |a: f32| -a),
                    Op::F32Ceil => unop!(as_f32, F32, |a: f32| a.ceil()),
                    Op::F32Floor => unop!(as_f32, F32, |a: f32| a.floor()),
                    Op::F32Trunc => unop!(as_f32, F32, |a: f32| a.trunc()),
                    Op::F32Nearest => unop!(as_f32, F32, |a: f32| a.round_ties_even()),
                    Op::F32Sqrt => unop!(as_f32, F32, |a: f32| a.sqrt()),
                    Op::F32Add => binop_f32!(|a: f32, b: f32| a + b),
                    Op::F32Sub => binop_f32!(|a: f32, b: f32| a - b),
                    Op::F32Mul => binop_f32!(|a: f32, b: f32| a * b),
                    Op::F32Div => binop_f32!(|a: f32, b: f32| a / b),
                    Op::F32Min => binop_f32!(wasm_fmin32),
                    Op::F32Max => binop_f32!(wasm_fmax32),
                    Op::F32Copysign => binop_f32!(|a: f32, b: f32| a.copysign(b)),
                    Op::F64Abs => unop!(as_f64, F64, |a: f64| a.abs()),
                    Op::F64Neg => unop!(as_f64, F64, |a: f64| -a),
                    Op::F64Ceil => unop!(as_f64, F64, |a: f64| a.ceil()),
                    Op::F64Floor => unop!(as_f64, F64, |a: f64| a.floor()),
                    Op::F64Trunc => unop!(as_f64, F64, |a: f64| a.trunc()),
                    Op::F64Nearest => unop!(as_f64, F64, |a: f64| a.round_ties_even()),
                    Op::F64Sqrt => unop!(as_f64, F64, |a: f64| a.sqrt()),
                    Op::F64Add => binop_f64!(|a: f64, b: f64| a + b),
                    Op::F64Sub => binop_f64!(|a: f64, b: f64| a - b),
                    Op::F64Mul => binop_f64!(|a: f64, b: f64| a * b),
                    Op::F64Div => binop_f64!(|a: f64, b: f64| a / b),
                    Op::F64Min => binop_f64!(wasm_fmin64),
                    Op::F64Max => binop_f64!(wasm_fmax64),
                    Op::F64Copysign => binop_f64!(|a: f64, b: f64| a.copysign(b)),

                    Op::I32WrapI64 => {
                        let a = pop!().as_i64();
                        stack.push(Value::I32(a as i32));
                    }
                    Op::I32TruncF32S => {
                        let a = pop!().as_f32();
                        stack.push(Value::I32(trunc_f32_to_i32_s(a)?));
                    }
                    Op::I32TruncF32U => {
                        let a = pop!().as_f32();
                        stack.push(Value::I32(trunc_f32_to_u32(a)? as i32));
                    }
                    Op::I32TruncF64S => {
                        let a = pop!().as_f64();
                        stack.push(Value::I32(trunc_f64_to_i32_s(a)?));
                    }
                    Op::I32TruncF64U => {
                        let a = pop!().as_f64();
                        stack.push(Value::I32(trunc_f64_to_u32(a)? as i32));
                    }
                    Op::I64ExtendI32S => {
                        let a = pop!().as_i32();
                        stack.push(Value::I64(a as i64));
                    }
                    Op::I64ExtendI32U => {
                        let a = pop!().as_i32();
                        stack.push(Value::I64(a as u32 as i64));
                    }
                    Op::I64TruncF32S => {
                        let a = pop!().as_f32();
                        stack.push(Value::I64(trunc_f32_to_i64_s(a)?));
                    }
                    Op::I64TruncF32U => {
                        let a = pop!().as_f32();
                        stack.push(Value::I64(trunc_f32_to_u64(a)? as i64));
                    }
                    Op::I64TruncF64S => {
                        let a = pop!().as_f64();
                        stack.push(Value::I64(trunc_f64_to_i64_s(a)?));
                    }
                    Op::I64TruncF64U => {
                        let a = pop!().as_f64();
                        stack.push(Value::I64(trunc_f64_to_u64(a)? as i64));
                    }
                    Op::F32ConvertI32S => {
                        let a = pop!().as_i32();
                        stack.push(Value::F32(a as f32));
                    }
                    Op::F32ConvertI32U => {
                        let a = pop!().as_i32();
                        stack.push(Value::F32(a as u32 as f32));
                    }
                    Op::F32ConvertI64S => {
                        let a = pop!().as_i64();
                        stack.push(Value::F32(a as f32));
                    }
                    Op::F32ConvertI64U => {
                        let a = pop!().as_i64();
                        stack.push(Value::F32(a as u64 as f32));
                    }
                    Op::F32DemoteF64 => {
                        let a = pop!().as_f64();
                        stack.push(Value::F32(a as f32));
                    }
                    Op::F64ConvertI32S => {
                        let a = pop!().as_i32();
                        stack.push(Value::F64(a as f64));
                    }
                    Op::F64ConvertI32U => {
                        let a = pop!().as_i32();
                        stack.push(Value::F64(a as u32 as f64));
                    }
                    Op::F64ConvertI64S => {
                        let a = pop!().as_i64();
                        stack.push(Value::F64(a as f64));
                    }
                    Op::F64ConvertI64U => {
                        let a = pop!().as_i64();
                        stack.push(Value::F64(a as u64 as f64));
                    }
                    Op::F64PromoteF32 => {
                        let a = pop!().as_f32();
                        stack.push(Value::F64(a as f64));
                    }
                    Op::I32ReinterpretF32 => {
                        let a = pop!().as_f32();
                        stack.push(Value::I32(a.to_bits() as i32));
                    }
                    Op::I64ReinterpretF64 => {
                        let a = pop!().as_f64();
                        stack.push(Value::I64(a.to_bits() as i64));
                    }
                    Op::F32ReinterpretI32 => {
                        let a = pop!().as_i32();
                        stack.push(Value::F32(f32::from_bits(a as u32)));
                    }
                    Op::F64ReinterpretI64 => {
                        let a = pop!().as_i64();
                        stack.push(Value::F64(f64::from_bits(a as u64)));
                    }
                    Op::I32Extend8S => unop!(as_i32, I32, |a: i32| a as i8 as i32),
                    Op::I32Extend16S => unop!(as_i32, I32, |a: i32| a as i16 as i32),
                    Op::I64Extend8S => unop!(as_i64, I64, |a: i64| a as i8 as i64),
                    Op::I64Extend16S => unop!(as_i64, I64, |a: i64| a as i16 as i64),
                    Op::I64Extend32S => unop!(as_i64, I64, |a: i64| a as i32 as i64),
                    Op::I32TruncSatF32S => {
                        let a = pop!().as_f32();
                        stack.push(Value::I32(a as i32));
                    }
                    Op::I32TruncSatF32U => {
                        let a = pop!().as_f32();
                        stack.push(Value::I32(a as u32 as i32));
                    }
                    Op::I32TruncSatF64S => {
                        let a = pop!().as_f64();
                        stack.push(Value::I32(a as i32));
                    }
                    Op::I32TruncSatF64U => {
                        let a = pop!().as_f64();
                        stack.push(Value::I32(a as u32 as i32));
                    }
                    Op::I64TruncSatF32S => {
                        let a = pop!().as_f32();
                        stack.push(Value::I64(a as i64));
                    }
                    Op::I64TruncSatF32U => {
                        let a = pop!().as_f32();
                        stack.push(Value::I64(a as u64 as i64));
                    }
                    Op::I64TruncSatF64S => {
                        let a = pop!().as_f64();
                        stack.push(Value::I64(a as i64));
                    }
                    Op::I64TruncSatF64U => {
                        let a = pop!().as_f64();
                        stack.push(Value::I64(a as u64 as i64));
                    }
                }
            }
        }
    }

    /// Host call from the compiled loop: args are passed as a stack slice
    /// (no per-call allocation), then popped.
    fn call_host_compiled(
        &mut self,
        f: u32,
        argc: usize,
        expected: Option<ValType>,
        stack: &mut Vec<Value>,
    ) -> Result<(), Trap> {
        let func = Arc::clone(&self.host_funcs[f as usize].func);
        let args_start = stack.len() - argc;
        let result = func(&mut self.data, &mut self.memory, &stack[args_start..]);
        stack.truncate(args_start);
        match (expected, result?) {
            (Some(e), Some(v)) if e == v.ty() => stack.push(v),
            (None, None) => {}
            (expected, got) => {
                return Err(Trap::HostError(format!(
                    "host function returned {got:?}, signature says {expected:?}"
                )))
            }
        }
        Ok(())
    }

    /// Run `entry` on the register-form IR. Reuses the instance's register
    /// file and frame stack so steady-state invocations allocate nothing.
    fn exec_reg(
        &mut self,
        entry: u32,
        args: &[Value],
        deadline: Option<Instant>,
        instrs: &mut u64,
    ) -> Result<Option<Value>, Trap> {
        let module = Arc::clone(&self.module);
        let n_imports = module.num_imported_funcs();

        // Direct host-function entry (rare but legal via re-export).
        if entry < n_imports {
            let def = &self.host_funcs[entry as usize];
            let func = Arc::clone(&def.func);
            return func(&mut self.data, &mut self.memory, args);
        }

        let mut regs = std::mem::take(&mut self.scratch_regs);
        let mut frames = std::mem::take(&mut self.scratch_rframes);
        regs.clear();
        frames.clear();

        let entry_local = entry - n_imports;
        let rf = module.reg_func(entry_local);
        let ret_arity = rf.ret_arity;
        regs.extend_from_slice(args);
        regs.extend_from_slice(&rf.locals_init);
        regs.resize(rf.frame_size as usize, Value::I32(0));
        frames.push(RFrame {
            func: entry_local,
            pc: 0,
            base: 0,
            vbase: 0,
        });

        let result = self.run_reg(&module, deadline, instrs, &mut regs, &mut frames);
        let out = result.map(|()| if ret_arity == 1 { Some(regs[0]) } else { None });

        self.scratch_regs = regs;
        self.scratch_rframes = frames;
        out
    }

    /// The register-tier hot loop: dispatch [`ROp`]s until the entry frame
    /// returns. Mirrors [`Self::run_compiled`] op-for-op on semantics —
    /// fuel, deadlines, stack bounds and traps are bit-identical — but all
    /// operands are frame-relative register indices; there is no value
    /// stack and no locals arena, only `regs`.
    fn run_reg(
        &mut self,
        module: &Arc<Module>,
        deadline: Option<Instant>,
        instrs: &mut u64,
        regs: &mut Vec<Value>,
        frames: &mut Vec<RFrame>,
    ) -> Result<(), Trap> {
        let n_imports = module.num_imported_funcs();
        let mut until_deadline_check = DEADLINE_CHECK_INTERVAL as i64;

        'frames: loop {
            // Per-activation state, cached in locals until a call/return
            // switches frames.
            let frame = *frames.last().expect("at least one frame");
            let mut pc = frame.pc as usize;
            let base = frame.base as usize;
            let vbase = frame.vbase as usize;
            let rf = module.reg_func(frame.func);
            let ops = &rf.ops;
            let rbranches = &rf.branches;
            let consts = &rf.consts;
            let n_locals = rf.n_locals as usize;

            macro_rules! reg {
                ($i:expr) => {
                    regs[base + $i as usize]
                };
            }
            /// Take a side-table branch; evaluates to the new pc. The
            /// carried window (`n ≤ 1` in the MVP) moves down to the
            /// target height; `n == 0` when the windows already coincide.
            macro_rules! rbranch_to {
                ($bi:expr) => {{
                    let rb = rbranches[$bi as usize];
                    if rb.n > 0 {
                        let src = base + rb.src as usize;
                        regs.copy_within(src..src + rb.n as usize, base + rb.dst as usize);
                    }
                    rb.pc as usize
                }};
            }

            loop {
                let op = ops[pc];
                pc += 1;
                match op {
                    ROp::Meter { cost, entry, peak } => {
                        if let Some(fuel) = self.fuel.as_mut() {
                            if *fuel < cost as u64 {
                                // The reference walker would retire exactly
                                // the remaining fuel before trapping.
                                *instrs += *fuel;
                                self.fuel = Some(0);
                                return Err(Trap::OutOfFuel);
                            }
                            *fuel -= cost as u64;
                        }
                        *instrs += cost as u64;
                        if let Some(dl) = deadline {
                            until_deadline_check -= cost as i64;
                            if until_deadline_check <= 0 {
                                until_deadline_check = DEADLINE_CHECK_INTERVAL as i64;
                                if Instant::now() > dl {
                                    return Err(Trap::DeadlineExceeded);
                                }
                            }
                        }
                        // `vbase + entry` is exactly the flat tier's
                        // `stack.len()` at this block header.
                        if vbase + entry as usize + peak as usize > self.limits.max_value_stack {
                            return Err(Trap::ValueStackExhausted);
                        }
                    }
                    ROp::Unreachable => return Err(Trap::Unreachable),
                    ROp::Br(b) => pc = rbranch_to!(b),
                    ROp::BrIf { cond, br } => {
                        if reg!(cond).as_i32() != 0 {
                            pc = rbranch_to!(br);
                        }
                    }
                    ROp::BrIfZ { cond, br } => {
                        if reg!(cond).as_i32() == 0 {
                            pc = rbranch_to!(br);
                        }
                    }
                    ROp::BrIfCmp { op, a, b, br } => {
                        if op.eval(reg!(a).as_i32(), reg!(b).as_i32()) != 0 {
                            pc = rbranch_to!(br);
                        }
                    }
                    ROp::BrIfCmpC { op, a, k, br } => {
                        if op.eval(reg!(a).as_i32(), k) != 0 {
                            pc = rbranch_to!(br);
                        }
                    }
                    ROp::BrTable { sel, start, n } => {
                        let s = reg!(sel).as_u32().min(n);
                        pc = rbranch_to!(start + s);
                    }
                    ROp::Return { src } => {
                        if rf.ret_arity == 1 {
                            regs[base] = regs[base + src as usize];
                        }
                        frames.pop();
                        if frames.is_empty() {
                            return Ok(());
                        }
                        continue 'frames;
                    }
                    ROp::CallWasm { f, base: wbase } => {
                        if frames.len() >= self.limits.max_call_depth {
                            return Err(Trap::StackOverflow);
                        }
                        frames.last_mut().expect("at least one frame").pc = pc as u32;
                        let callee = module.reg_func(f);
                        let abs = base + wbase as usize;
                        let need = abs + callee.frame_size as usize;
                        if regs.len() < need {
                            regs.resize(need, Value::I32(0));
                        }
                        // Arguments are already in place at `abs..abs+argc`
                        // (register-window overlap); declared locals still
                        // need their zero values.
                        regs[abs + callee.argc as usize..abs + callee.n_locals as usize]
                            .copy_from_slice(&callee.locals_init);
                        frames.push(RFrame {
                            func: f,
                            pc: 0,
                            base: abs as u32,
                            // The flat tier's stack height at this call
                            // site: `wbase - n_locals` is the caller's
                            // abstract height minus the moved args.
                            vbase: (vbase + wbase as usize - n_locals) as u32,
                        });
                        continue 'frames;
                    }
                    ROp::CallHost {
                        f,
                        base: wbase,
                        argc,
                        ret,
                    } => {
                        let expected = match ret {
                            0 => None,
                            1 => Some(ValType::I32),
                            2 => Some(ValType::I64),
                            3 => Some(ValType::F32),
                            _ => Some(ValType::F64),
                        };
                        self.call_host_reg(
                            f,
                            argc as usize,
                            expected,
                            regs,
                            base + wbase as usize,
                        )?;
                    }
                    ROp::CallIndirect { ty, base: wbase } => {
                        let abs = base + wbase as usize;
                        let expected = &module.types[ty as usize];
                        let argc = expected.params.len();
                        let idx = regs[abs + argc].as_u32();
                        let func = self.table.get(idx)?;
                        let actual = module.func_type(func).ok_or(Trap::UninitializedElement)?;
                        if actual != expected {
                            return Err(Trap::IndirectCallTypeMismatch);
                        }
                        if func < n_imports {
                            let ret = expected.results.first().copied();
                            self.call_host_reg(func, argc, ret, regs, abs)?;
                        } else {
                            if frames.len() >= self.limits.max_call_depth {
                                return Err(Trap::StackOverflow);
                            }
                            frames.last_mut().expect("at least one frame").pc = pc as u32;
                            let local_func = func - n_imports;
                            let callee = module.reg_func(local_func);
                            let need = abs + callee.frame_size as usize;
                            if regs.len() < need {
                                regs.resize(need, Value::I32(0));
                            }
                            regs[abs + callee.argc as usize..abs + callee.n_locals as usize]
                                .copy_from_slice(&callee.locals_init);
                            frames.push(RFrame {
                                func: local_func,
                                pc: 0,
                                base: abs as u32,
                                vbase: (vbase + wbase as usize - n_locals) as u32,
                            });
                            continue 'frames;
                        }
                    }
                    ROp::Copy { dst, src } => reg!(dst) = reg!(src),
                    ROp::ConstI32 { dst, k } => reg!(dst) = Value::I32(k),
                    ROp::Const { dst, idx } => reg!(dst) = consts[idx as usize],
                    ROp::Select { dst, cond, b } => {
                        // `dst` already holds the true-arm value.
                        if reg!(cond).as_i32() == 0 {
                            reg!(dst) = reg!(b);
                        }
                    }
                    ROp::GlobalGet { dst, g } => reg!(dst) = self.globals[g as usize],
                    ROp::GlobalSet { g, src } => self.globals[g as usize] = reg!(src),
                    ROp::MemorySize { dst } => {
                        reg!(dst) = Value::I32(self.memory.size_pages() as i32)
                    }
                    ROp::MemoryGrow { dst, delta } => {
                        let delta = reg!(delta).as_u32();
                        let result = self.memory.grow(delta).map(|p| p as i32).unwrap_or(-1);
                        reg!(dst) = Value::I32(result);
                    }
                    ROp::MemoryCopy { dst, src, len } => {
                        self.memory.copy(
                            reg!(dst).as_u32(),
                            reg!(src).as_u32(),
                            reg!(len).as_u32(),
                        )?;
                    }
                    ROp::MemoryFill { dst, val, len } => {
                        self.memory.fill(
                            reg!(dst).as_u32(),
                            reg!(val).as_i32() as u8,
                            reg!(len).as_u32(),
                        )?;
                    }
                    ROp::I32Bin { op, dst, a, b } => {
                        let v = op.eval(reg!(a).as_i32(), reg!(b).as_i32());
                        reg!(dst) = Value::I32(v);
                    }
                    ROp::I32BinC { op, dst, a, k } => {
                        let v = op.eval(reg!(a).as_i32(), k);
                        reg!(dst) = Value::I32(v);
                    }
                    ROp::I64Bin { op, dst, a, b } => {
                        reg!(dst) = op.eval(reg!(a).as_i64(), reg!(b).as_i64());
                    }
                    ROp::Bin { op, dst, a, b } => {
                        reg!(dst) = op.eval(reg!(a), reg!(b))?;
                    }
                    ROp::Un { op, dst, a } => {
                        reg!(dst) = op.eval(reg!(a))?;
                    }
                    ROp::Load {
                        kind,
                        dst,
                        addr,
                        off,
                    } => {
                        let a = reg!(addr).as_u32();
                        reg!(dst) = self.mem_load(kind, a, off)?;
                    }
                    ROp::Store {
                        kind,
                        addr,
                        val,
                        off,
                    } => {
                        let v = reg!(val);
                        let a = reg!(addr).as_u32();
                        self.mem_store(kind, a, off, v)?;
                    }
                    ROp::LoadAt {
                        kind,
                        dst,
                        a,
                        k,
                        off,
                    } => {
                        let a = reg!(a as u32).as_i32().wrapping_add(k) as u32;
                        reg!(dst) = self.mem_load(kind, a, off)?;
                    }
                    ROp::LoadRR {
                        kind,
                        dst,
                        a,
                        b,
                        off,
                    } => {
                        let a = reg!(a as u32)
                            .as_i32()
                            .wrapping_add(reg!(b as u32).as_i32())
                            as u32;
                        reg!(dst) = self.mem_load(kind, a, off)?;
                    }
                    ROp::StoreAt {
                        kind,
                        a,
                        k,
                        val,
                        off,
                    } => {
                        let v = reg!(val as u32);
                        let a = reg!(a as u32).as_i32().wrapping_add(k) as u32;
                        self.mem_store(kind, a, off, v)?;
                    }
                    ROp::StoreRR {
                        kind,
                        a,
                        b,
                        val,
                        off,
                    } => {
                        let v = reg!(val as u32);
                        let a = reg!(a as u32)
                            .as_i32()
                            .wrapping_add(reg!(b as u32).as_i32())
                            as u32;
                        self.mem_store(kind, a, off, v)?;
                    }
                    ROp::LoadBis {
                        kind,
                        dst,
                        a,
                        b,
                        sh,
                        k,
                        off,
                    } => {
                        let a = reg!(a as u32)
                            .as_i32()
                            .wrapping_add(reg!(b as u32).as_i32().wrapping_shl(sh as u32))
                            .wrapping_add(k as i32) as u32;
                        reg!(dst as u32) = self.mem_load(kind, a, off)?;
                    }
                    ROp::StoreBis {
                        kind,
                        a,
                        b,
                        sh,
                        k,
                        val,
                        off,
                    } => {
                        let v = reg!(val as u32);
                        let a = reg!(a as u32)
                            .as_i32()
                            .wrapping_add(reg!(b as u32).as_i32().wrapping_shl(sh as u32))
                            .wrapping_add(k as i32) as u32;
                        self.mem_store(kind, a, off, v)?;
                    }
                    ROp::StoreCAt { kind, a, k, v, off } => {
                        let a = reg!(a as u32).as_i32().wrapping_add(k) as u32;
                        let v = if matches!(kind, StoreKind::F32) {
                            Value::F32(f32::from_bits(v))
                        } else {
                            Value::I32(v as i32)
                        };
                        self.mem_store(kind, a, off, v)?;
                    }
                }
            }
        }
    }

    /// Width-dispatched load for the register loop (shared by the plain
    /// and address-fused forms; `a` is the fully computed i32 address).
    #[inline]
    fn mem_load(&mut self, kind: LoadKind, a: u32, off: u32) -> Result<Value, Trap> {
        let m = &mut self.memory;
        Ok(match kind {
            LoadKind::I32 => Value::I32(i32::from_le_bytes(m.read::<4>(a, off)?)),
            LoadKind::I64 => Value::I64(i64::from_le_bytes(m.read::<8>(a, off)?)),
            LoadKind::F32 => Value::F32(f32::from_le_bytes(m.read::<4>(a, off)?)),
            LoadKind::F64 => Value::F64(f64::from_le_bytes(m.read::<8>(a, off)?)),
            LoadKind::I32S8 => Value::I32(m.read::<1>(a, off)?[0] as i8 as i32),
            LoadKind::I32U8 => Value::I32(m.read::<1>(a, off)?[0] as i32),
            LoadKind::I32S16 => Value::I32(i16::from_le_bytes(m.read::<2>(a, off)?) as i32),
            LoadKind::I32U16 => Value::I32(u16::from_le_bytes(m.read::<2>(a, off)?) as i32),
            LoadKind::I64S8 => Value::I64(m.read::<1>(a, off)?[0] as i8 as i64),
            LoadKind::I64U8 => Value::I64(m.read::<1>(a, off)?[0] as i64),
            LoadKind::I64S16 => Value::I64(i16::from_le_bytes(m.read::<2>(a, off)?) as i64),
            LoadKind::I64U16 => Value::I64(u16::from_le_bytes(m.read::<2>(a, off)?) as i64),
            LoadKind::I64S32 => Value::I64(i32::from_le_bytes(m.read::<4>(a, off)?) as i64),
            LoadKind::I64U32 => Value::I64(u32::from_le_bytes(m.read::<4>(a, off)?) as i64),
        })
    }

    /// Width-dispatched store for the register loop.
    #[inline]
    fn mem_store(&mut self, kind: StoreKind, a: u32, off: u32, v: Value) -> Result<(), Trap> {
        match kind {
            StoreKind::I32 => self.memory.write(a, off, v.as_i32().to_le_bytes()),
            StoreKind::I64 => self.memory.write(a, off, v.as_i64().to_le_bytes()),
            StoreKind::F32 => self.memory.write(a, off, v.as_f32().to_le_bytes()),
            StoreKind::F64 => self.memory.write(a, off, v.as_f64().to_le_bytes()),
            StoreKind::I32Lo8 => self.memory.write(a, off, [(v.as_i32() & 0xff) as u8]),
            StoreKind::I32Lo16 => self.memory.write(a, off, (v.as_i32() as u16).to_le_bytes()),
            StoreKind::I64Lo8 => self.memory.write(a, off, [(v.as_i64() & 0xff) as u8]),
            StoreKind::I64Lo16 => self.memory.write(a, off, (v.as_i64() as u16).to_le_bytes()),
            StoreKind::I64Lo32 => self.memory.write(a, off, (v.as_i64() as u32).to_le_bytes()),
        }
    }

    /// Host call from the register loop: args are read from a register
    /// window (no per-call allocation); the result overwrites the window
    /// base, which the lowering pass reserved as the call's result cell.
    fn call_host_reg(
        &mut self,
        f: u32,
        argc: usize,
        expected: Option<ValType>,
        regs: &mut [Value],
        abs_base: usize,
    ) -> Result<(), Trap> {
        let func = Arc::clone(&self.host_funcs[f as usize].func);
        let result = func(
            &mut self.data,
            &mut self.memory,
            &regs[abs_base..abs_base + argc],
        );
        match (expected, result?) {
            (Some(e), Some(v)) if e == v.ty() => regs[abs_base] = v,
            (None, None) => {}
            (expected, got) => {
                return Err(Trap::HostError(format!(
                    "host function returned {got:?}, signature says {expected:?}"
                )))
            }
        }
        Ok(())
    }
}

/// A register-tier call frame: all values live in the shared register
/// file, so the frame itself is four words.
#[derive(Debug, Clone, Copy)]
struct RFrame {
    /// Index into `module.funcs` (local function space).
    func: u32,
    /// Next op index (saved across calls).
    pc: u32,
    /// Absolute base of this frame's register window.
    base: u32,
    /// The flat tier's `stack.len()` equivalent at frame entry, carried so
    /// `Meter`'s value-stack bound check stays bit-identical across tiers.
    vbase: u32,
}

/// A compiled-executor call frame: all state lives in the shared stack and
/// locals arena, so the frame itself is four words.
#[derive(Debug, Clone, Copy)]
struct CFrame {
    /// Index into `module.funcs` (local function space).
    func: u32,
    /// Next op index (saved across calls).
    pc: u32,
    /// Value-stack height at entry (after arguments were popped).
    stack_base: u32,
    /// Locals-arena base for this activation.
    locals_base: u32,
}

/// A call frame.
struct Frame {
    /// Index into `module.funcs` (local function space).
    func: u32,
    /// Parameters followed by zero-initialized locals.
    locals: Vec<Value>,
    /// Next instruction index.
    pc: usize,
    /// Open labels within this frame.
    labels: Vec<Label>,
    /// Value-stack height at entry (after arguments were popped).
    stack_base: usize,
}

impl Frame {
    /// Pop arguments off `stack` and build the frame.
    fn enter(module: &Module, local_func: u32, stack: &mut Vec<Value>) -> Frame {
        let body = &module.funcs[local_func as usize];
        let ty = &module.types[body.type_idx as usize];
        let argc = ty.params.len();
        let mut locals = Vec::with_capacity(argc + body.locals.len());
        locals.extend(stack.drain(stack.len() - argc..));
        locals.extend(body.locals.iter().map(|t| Value::zero(*t)));
        Frame {
            func: local_func,
            locals,
            pc: 0,
            labels: Vec::with_capacity(8),
            stack_base: stack.len(),
        }
    }
}

/// A control label within a frame.
#[derive(Debug, Clone, Copy)]
struct Label {
    /// Branch destination pc.
    target: u32,
    /// Value-stack height at label entry.
    stack_base: usize,
    /// Values a branch to this label carries.
    arity: u8,
    /// Loops are popped by the branch itself (the header re-pushes).
    pop_self: bool,
}

// ---------------------------------------------------------------------
// Float min/max and trapping truncation per the WebAssembly spec.
// ---------------------------------------------------------------------

pub(crate) fn wasm_fmin32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        // Distinguish ±0: min(+0,-0) = -0.
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_fmax32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_fmin64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_fmax64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

pub(crate) fn trunc_f32_to_i32_s(a: f32) -> Result<i32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    // Valid iff trunc(a) representable: -2^31 <= trunc(a) < 2^31.
    if (-2147483648.0_f32..2147483648.0_f32).contains(&a) {
        Ok(a as i32)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_f32_to_u32(a: f32) -> Result<u32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    if a < 4294967296.0_f32 && a > -1.0_f32 {
        Ok(a as u32)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_f64_to_i32_s(a: f64) -> Result<i32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    if a < 2147483648.0_f64 && a > -2147483649.0_f64 {
        Ok(a as i32)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_f64_to_u32(a: f64) -> Result<u32, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    if a < 4294967296.0_f64 && a > -1.0_f64 {
        Ok(a as u32)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_f32_to_i64_s(a: f32) -> Result<i64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    if (-9223372036854775808.0_f32..9223372036854775808.0_f32).contains(&a) {
        Ok(a as i64)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_f32_to_u64(a: f32) -> Result<u64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    if a < 18446744073709551616.0_f32 && a > -1.0_f32 {
        Ok(a as u64)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_f64_to_i64_s(a: f64) -> Result<i64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    if (-9223372036854775808.0_f64..9223372036854775808.0_f64).contains(&a) {
        Ok(a as i64)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_f64_to_u64(a: f64) -> Result<u64, Trap> {
    if a.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    if a < 18446744073709551616.0_f64 && a > -1.0_f64 {
        Ok(a as u64)
    } else {
        Err(Trap::InvalidConversion)
    }
}
