//! Module validation: the WebAssembly type system.
//!
//! Implements the stack-polymorphic validation algorithm from the spec
//! appendix — a value stack of possibly-unknown types plus a control-frame
//! stack — over the flat instruction representation. Validation is the
//! security gate of the plugin host: only validated modules can be
//! instantiated, so the interpreter may assume well-typed code and bounds
//! errors can only be *dynamic* (memory, table, fuel), never structural.

use crate::instr::Instr;
use crate::module::*;
use crate::types::*;

/// Validation error: which function (if any) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Index of the function being validated, if the error is inside a body.
    pub func: Option<u32>,
    /// Instruction index within the body, if applicable.
    pub pc: Option<usize>,
    /// The failure.
    pub kind: ValidateErrorKind,
}

/// Specific validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateErrorKind {
    /// Type index out of range.
    BadTypeIndex(u32),
    /// Function index out of range.
    BadFuncIndex(u32),
    /// Local index out of range.
    BadLocalIndex(u32),
    /// Global index out of range.
    BadGlobalIndex(u32),
    /// Write to an immutable global.
    ImmutableGlobal(u32),
    /// Branch depth exceeds the label stack.
    BadLabelDepth(u32),
    /// Memory instruction but the module declares no memory.
    NoMemory,
    /// Table instruction but the module declares no table.
    NoTable,
    /// Alignment immediate larger than the access width.
    BadAlignment { align: u32, natural: u32 },
    /// Value stack underflow.
    StackUnderflow,
    /// Type mismatch: expected vs found.
    TypeMismatch {
        expected: ValType,
        found: Option<ValType>,
    },
    /// Values left on the stack at the end of a block.
    StackHeightMismatch { expected: usize, found: usize },
    /// `else`/`end` with no matching frame (should be caught by fixup, but
    /// revalidated for defense in depth).
    ControlUnderflow,
    /// Function results do not allow more than one value (MVP).
    MultiValue,
    /// Limits with min > max, or memory limits over the 4 GiB ceiling.
    BadLimits,
    /// `br_table` targets disagree on label types.
    BrTableArityMismatch,
    /// Export refers to a missing entity.
    BadExport(String),
    /// Duplicate export name.
    DuplicateExport(String),
    /// Start function has a non-trivial signature or bad index.
    BadStart,
    /// Element segment refers to a missing function.
    BadElemFunc(u32),
    /// Segment offset expression must be i32.
    BadSegmentOffset,
    /// Global initializer type mismatch.
    BadGlobalInit,
    /// `if` with a result type but no `else` arm (the false path would
    /// produce no value).
    IfMissingElse,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(func) = self.func {
            write!(f, "in function {func}")?;
            if let Some(pc) = self.pc {
                write!(f, " at instruction {pc}")?;
            }
            write!(f, ": ")?;
        }
        write!(f, "{:?}", self.kind)
    }
}

impl std::error::Error for ValidateError {}

/// Validate a decoded module.
pub fn validate(module: &Module) -> Result<(), ValidateError> {
    let err = |kind| ValidateError {
        func: None,
        pc: None,
        kind,
    };

    // Types: MVP restricts results to at most one value.
    for ty in &module.types {
        if ty.results.len() > 1 {
            return Err(err(ValidateErrorKind::MultiValue));
        }
    }

    // Imports reference valid types.
    for imp in &module.imports {
        let ImportKind::Func { type_idx } = imp.kind;
        if type_idx as usize >= module.types.len() {
            return Err(err(ValidateErrorKind::BadTypeIndex(type_idx)));
        }
    }

    // Limits.
    if let Some(limits) = module.memory {
        if !limits.well_formed()
            || limits.min > MAX_PAGES
            || limits.max.is_some_and(|m| m > MAX_PAGES)
        {
            return Err(err(ValidateErrorKind::BadLimits));
        }
    }
    if let Some(limits) = module.table {
        if !limits.well_formed() {
            return Err(err(ValidateErrorKind::BadLimits));
        }
    }

    // Globals: initializer type must match the declared type.
    for g in &module.globals {
        if g.init.ty() != g.ty.ty {
            return Err(err(ValidateErrorKind::BadGlobalInit));
        }
    }

    // Functions reference valid types.
    for f in &module.funcs {
        if f.type_idx as usize >= module.types.len() {
            return Err(err(ValidateErrorKind::BadTypeIndex(f.type_idx)));
        }
    }

    // Exports: valid indices, unique names.
    let mut names = std::collections::HashSet::new();
    for e in &module.exports {
        if !names.insert(e.name.as_str()) {
            return Err(err(ValidateErrorKind::DuplicateExport(e.name.clone())));
        }
        match e.kind {
            ExportKind::Func(idx) => {
                if idx >= module.num_funcs() {
                    return Err(err(ValidateErrorKind::BadExport(e.name.clone())));
                }
            }
            ExportKind::Global(idx) => {
                if idx as usize >= module.globals.len() {
                    return Err(err(ValidateErrorKind::BadExport(e.name.clone())));
                }
            }
            ExportKind::Memory => {
                if module.memory.is_none() {
                    return Err(err(ValidateErrorKind::BadExport(e.name.clone())));
                }
            }
            ExportKind::Table => {
                if module.table.is_none() {
                    return Err(err(ValidateErrorKind::BadExport(e.name.clone())));
                }
            }
        }
    }

    // Start function: () -> ().
    if let Some(start) = module.start {
        match module.func_type(start) {
            Some(ty) if ty.params.is_empty() && ty.results.is_empty() => {}
            _ => return Err(err(ValidateErrorKind::BadStart)),
        }
    }

    // Element segments.
    for seg in &module.elems {
        if module.table.is_none() {
            return Err(err(ValidateErrorKind::NoTable));
        }
        if seg.offset.ty() != ValType::I32 {
            return Err(err(ValidateErrorKind::BadSegmentOffset));
        }
        for &f in &seg.funcs {
            if f >= module.num_funcs() {
                return Err(err(ValidateErrorKind::BadElemFunc(f)));
            }
        }
    }

    // Data segments.
    for seg in &module.data {
        if module.memory.is_none() {
            return Err(err(ValidateErrorKind::NoMemory));
        }
        if seg.offset.ty() != ValType::I32 {
            return Err(err(ValidateErrorKind::BadSegmentOffset));
        }
    }

    // Function bodies.
    let n_imports = module.num_imported_funcs();
    for (i, body) in module.funcs.iter().enumerate() {
        let func_idx = n_imports + i as u32;
        let ty = &module.types[body.type_idx as usize];
        FuncValidator::new(module, func_idx, ty, body).run()?;
    }

    Ok(())
}

/// A control frame on the validator's frame stack.
struct CtrlFrame {
    /// True for `loop` (branches target the start, so label types are the
    /// frame's *start* types — empty in the MVP).
    is_loop: bool,
    /// True for an `if` frame that has not (yet) seen its `else`.
    is_bare_if: bool,
    /// Result types of the frame.
    end_types: Option<ValType>,
    /// Value-stack height at frame entry.
    height: usize,
    /// Set once code in this frame became unreachable.
    unreachable: bool,
}

struct FuncValidator<'m> {
    module: &'m Module,
    func_idx: u32,
    locals: Vec<ValType>,
    results: Option<ValType>,
    body: &'m FuncBody,
    // None = unknown type (from unreachable code).
    vals: Vec<Option<ValType>>,
    ctrls: Vec<CtrlFrame>,
    pc: usize,
}

impl<'m> FuncValidator<'m> {
    fn new(module: &'m Module, func_idx: u32, ty: &'m FuncType, body: &'m FuncBody) -> Self {
        let mut locals = ty.params.clone();
        locals.extend_from_slice(&body.locals);
        FuncValidator {
            module,
            func_idx,
            locals,
            results: ty.results.first().copied(),
            body,
            vals: Vec::new(),
            ctrls: Vec::new(),
            pc: 0,
        }
    }

    fn err(&self, kind: ValidateErrorKind) -> ValidateError {
        ValidateError {
            func: Some(self.func_idx),
            pc: Some(self.pc),
            kind,
        }
    }

    fn push(&mut self, ty: ValType) {
        self.vals.push(Some(ty));
    }

    fn push_unknown(&mut self) {
        self.vals.push(None);
    }

    fn pop_any(&mut self) -> Result<Option<ValType>, ValidateError> {
        let frame = self
            .ctrls
            .last()
            .expect("frame stack never empty during body");
        if self.vals.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return Err(self.err(ValidateErrorKind::StackUnderflow));
        }
        Ok(self.vals.pop().expect("checked non-empty"))
    }

    fn pop_expect(&mut self, expected: ValType) -> Result<(), ValidateError> {
        match self.pop_any()? {
            None => Ok(()),
            Some(t) if t == expected => Ok(()),
            Some(t) => Err(self.err(ValidateErrorKind::TypeMismatch {
                expected,
                found: Some(t),
            })),
        }
    }

    fn push_ctrl(&mut self, is_loop: bool, end_types: Option<ValType>) {
        self.push_ctrl_full(is_loop, false, end_types);
    }

    fn push_ctrl_full(&mut self, is_loop: bool, is_bare_if: bool, end_types: Option<ValType>) {
        self.ctrls.push(CtrlFrame {
            is_loop,
            is_bare_if,
            end_types,
            height: self.vals.len(),
            unreachable: false,
        });
    }

    fn pop_ctrl(&mut self) -> Result<CtrlFrame, ValidateError> {
        let frame = self
            .ctrls
            .last()
            .ok_or_else(|| self.err(ValidateErrorKind::ControlUnderflow))?;
        let height = frame.height;
        let end = frame.end_types;
        if let Some(t) = end {
            self.pop_expect(t)?;
        }
        if self.vals.len() != height {
            let found = self.vals.len();
            return Err(self.err(ValidateErrorKind::StackHeightMismatch {
                expected: height,
                found,
            }));
        }
        Ok(self.ctrls.pop().expect("checked non-empty"))
    }

    fn set_unreachable(&mut self) {
        let frame = self.ctrls.last_mut().expect("frame stack never empty");
        self.vals.truncate(frame.height);
        frame.unreachable = true;
    }

    /// Types carried by a branch to the label `depth` levels up.
    fn label_types(&self, depth: u32) -> Result<Option<ValType>, ValidateError> {
        let idx = self
            .ctrls
            .len()
            .checked_sub(1 + depth as usize)
            .ok_or_else(|| self.err(ValidateErrorKind::BadLabelDepth(depth)))?;
        let frame = &self.ctrls[idx];
        Ok(if frame.is_loop { None } else { frame.end_types })
    }

    fn check_mem(&self) -> Result<(), ValidateError> {
        if self.module.memory.is_none() {
            return Err(self.err(ValidateErrorKind::NoMemory));
        }
        Ok(())
    }

    fn check_align(&self, align: u32, width_bytes: u32) -> Result<(), ValidateError> {
        let natural = width_bytes.trailing_zeros();
        if align > natural {
            return Err(self.err(ValidateErrorKind::BadAlignment { align, natural }));
        }
        Ok(())
    }

    fn local_ty(&self, idx: u32) -> Result<ValType, ValidateError> {
        self.locals
            .get(idx as usize)
            .copied()
            .ok_or_else(|| self.err(ValidateErrorKind::BadLocalIndex(idx)))
    }

    fn global_ty(&self, idx: u32) -> Result<GlobalType, ValidateError> {
        self.module
            .globals
            .get(idx as usize)
            .map(|g| g.ty)
            .ok_or_else(|| self.err(ValidateErrorKind::BadGlobalIndex(idx)))
    }

    fn load(&mut self, align: u32, width: u32, result: ValType) -> Result<(), ValidateError> {
        self.check_mem()?;
        self.check_align(align, width)?;
        self.pop_expect(ValType::I32)?;
        self.push(result);
        Ok(())
    }

    fn store(&mut self, align: u32, width: u32, operand: ValType) -> Result<(), ValidateError> {
        self.check_mem()?;
        self.check_align(align, width)?;
        self.pop_expect(operand)?;
        self.pop_expect(ValType::I32)?;
        Ok(())
    }

    fn unop(&mut self, ty: ValType) -> Result<(), ValidateError> {
        self.pop_expect(ty)?;
        self.push(ty);
        Ok(())
    }

    fn binop(&mut self, ty: ValType) -> Result<(), ValidateError> {
        self.pop_expect(ty)?;
        self.pop_expect(ty)?;
        self.push(ty);
        Ok(())
    }

    fn relop(&mut self, ty: ValType) -> Result<(), ValidateError> {
        self.pop_expect(ty)?;
        self.pop_expect(ty)?;
        self.push(ValType::I32);
        Ok(())
    }

    fn cvtop(&mut self, from: ValType, to: ValType) -> Result<(), ValidateError> {
        self.pop_expect(from)?;
        self.push(to);
        Ok(())
    }

    fn run(mut self) -> Result<(), ValidateError> {
        // The function-level frame.
        self.push_ctrl(false, self.results);

        use Instr::*;
        use ValType::*;
        let code = &self.body.code;
        while self.pc < code.len() {
            let instr = &code[self.pc];
            match instr {
                Unreachable => self.set_unreachable(),
                Nop => {}
                Block { ty, .. } => {
                    self.push_ctrl(false, ty.result());
                }
                Loop { ty } => {
                    self.push_ctrl(true, ty.result());
                }
                If { ty, .. } => {
                    self.pop_expect(I32)?;
                    self.push_ctrl_full(false, true, ty.result());
                }
                Else { .. } => {
                    let frame = self.pop_ctrl()?;
                    // Re-open a frame for the else arm with the same results.
                    self.push_ctrl(false, frame.end_types);
                }
                End => {
                    let frame = self.pop_ctrl()?;
                    if frame.is_bare_if && frame.end_types.is_some() {
                        // The false path would yield no value.
                        return Err(self.err(ValidateErrorKind::IfMissingElse));
                    }
                    if let Some(t) = frame.end_types {
                        self.push(t);
                    }
                }
                Br { depth } => {
                    if let Some(t) = self.label_types(*depth)? {
                        self.pop_expect(t)?;
                    }
                    self.set_unreachable();
                }
                BrIf { depth } => {
                    self.pop_expect(I32)?;
                    if let Some(t) = self.label_types(*depth)? {
                        self.pop_expect(t)?;
                        self.push(t);
                    }
                }
                BrTable { targets, default } => {
                    self.pop_expect(I32)?;
                    let default_tys = self.label_types(*default)?;
                    for t in targets.iter() {
                        if self.label_types(*t)? != default_tys {
                            return Err(self.err(ValidateErrorKind::BrTableArityMismatch));
                        }
                    }
                    if let Some(t) = default_tys {
                        self.pop_expect(t)?;
                    }
                    self.set_unreachable();
                }
                Return => {
                    if let Some(t) = self.results {
                        self.pop_expect(t)?;
                    }
                    self.set_unreachable();
                }
                Call { func } => {
                    let ty = self
                        .module
                        .func_type(*func)
                        .ok_or_else(|| self.err(ValidateErrorKind::BadFuncIndex(*func)))?
                        .clone();
                    for p in ty.params.iter().rev() {
                        self.pop_expect(*p)?;
                    }
                    if let Some(r) = ty.results.first() {
                        self.push(*r);
                    }
                }
                CallIndirect { type_idx } => {
                    if self.module.table.is_none() {
                        return Err(self.err(ValidateErrorKind::NoTable));
                    }
                    let ty = self
                        .module
                        .types
                        .get(*type_idx as usize)
                        .ok_or_else(|| self.err(ValidateErrorKind::BadTypeIndex(*type_idx)))?
                        .clone();
                    self.pop_expect(I32)?;
                    for p in ty.params.iter().rev() {
                        self.pop_expect(*p)?;
                    }
                    if let Some(r) = ty.results.first() {
                        self.push(*r);
                    }
                }
                Drop => {
                    self.pop_any()?;
                }
                Select => {
                    self.pop_expect(I32)?;
                    let a = self.pop_any()?;
                    let b = self.pop_any()?;
                    match (a, b) {
                        (Some(ta), Some(tb)) if ta == tb => self.push(ta),
                        (Some(t), None) | (None, Some(t)) => self.push(t),
                        (None, None) => self.push_unknown(),
                        (Some(ta), Some(_tb)) => {
                            return Err(self.err(ValidateErrorKind::TypeMismatch {
                                expected: ta,
                                found: b,
                            }))
                        }
                    }
                }
                LocalGet(idx) => {
                    let t = self.local_ty(*idx)?;
                    self.push(t);
                }
                LocalSet(idx) => {
                    let t = self.local_ty(*idx)?;
                    self.pop_expect(t)?;
                }
                LocalTee(idx) => {
                    let t = self.local_ty(*idx)?;
                    self.pop_expect(t)?;
                    self.push(t);
                }
                GlobalGet(idx) => {
                    let g = self.global_ty(*idx)?;
                    self.push(g.ty);
                }
                GlobalSet(idx) => {
                    let g = self.global_ty(*idx)?;
                    if g.mutability != Mutability::Var {
                        return Err(self.err(ValidateErrorKind::ImmutableGlobal(*idx)));
                    }
                    self.pop_expect(g.ty)?;
                }
                I32Load(m) => self.load(m.align, 4, I32)?,
                I64Load(m) => self.load(m.align, 8, I64)?,
                F32Load(m) => self.load(m.align, 4, F32)?,
                F64Load(m) => self.load(m.align, 8, F64)?,
                I32Load8S(m) | I32Load8U(m) => self.load(m.align, 1, I32)?,
                I32Load16S(m) | I32Load16U(m) => self.load(m.align, 2, I32)?,
                I64Load8S(m) | I64Load8U(m) => self.load(m.align, 1, I64)?,
                I64Load16S(m) | I64Load16U(m) => self.load(m.align, 2, I64)?,
                I64Load32S(m) | I64Load32U(m) => self.load(m.align, 4, I64)?,
                I32Store(m) => self.store(m.align, 4, I32)?,
                I64Store(m) => self.store(m.align, 8, I64)?,
                F32Store(m) => self.store(m.align, 4, F32)?,
                F64Store(m) => self.store(m.align, 8, F64)?,
                I32Store8(m) => self.store(m.align, 1, I32)?,
                I32Store16(m) => self.store(m.align, 2, I32)?,
                I64Store8(m) => self.store(m.align, 1, I64)?,
                I64Store16(m) => self.store(m.align, 2, I64)?,
                I64Store32(m) => self.store(m.align, 4, I64)?,
                MemorySize => {
                    self.check_mem()?;
                    self.push(I32);
                }
                MemoryGrow => {
                    self.check_mem()?;
                    self.pop_expect(I32)?;
                    self.push(I32);
                }
                MemoryCopy | MemoryFill => {
                    self.check_mem()?;
                    self.pop_expect(I32)?;
                    self.pop_expect(I32)?;
                    self.pop_expect(I32)?;
                }
                I32Const(_) => self.push(I32),
                I64Const(_) => self.push(I64),
                F32Const(_) => self.push(F32),
                F64Const(_) => self.push(F64),
                I32Eqz => {
                    self.pop_expect(I32)?;
                    self.push(I32);
                }
                I64Eqz => {
                    self.pop_expect(I64)?;
                    self.push(I32);
                }
                I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
                | I32GeU => self.relop(I32)?,
                I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
                | I64GeU => self.relop(I64)?,
                F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => self.relop(F32)?,
                F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => self.relop(F64)?,
                I32Clz | I32Ctz | I32Popcnt | I32Extend8S | I32Extend16S => self.unop(I32)?,
                I64Clz | I64Ctz | I64Popcnt | I64Extend8S | I64Extend16S | I64Extend32S => {
                    self.unop(I64)?
                }
                I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And
                | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => {
                    self.binop(I32)?
                }
                I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And
                | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => {
                    self.binop(I64)?
                }
                F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => {
                    self.unop(F32)?
                }
                F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => {
                    self.unop(F64)?
                }
                F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
                    self.binop(F32)?
                }
                F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
                    self.binop(F64)?
                }
                I32WrapI64 => self.cvtop(I64, I32)?,
                I32TruncF32S | I32TruncF32U | I32TruncSatF32S | I32TruncSatF32U => {
                    self.cvtop(F32, I32)?
                }
                I32TruncF64S | I32TruncF64U | I32TruncSatF64S | I32TruncSatF64U => {
                    self.cvtop(F64, I32)?
                }
                I64ExtendI32S | I64ExtendI32U => self.cvtop(I32, I64)?,
                I64TruncF32S | I64TruncF32U | I64TruncSatF32S | I64TruncSatF32U => {
                    self.cvtop(F32, I64)?
                }
                I64TruncF64S | I64TruncF64U | I64TruncSatF64S | I64TruncSatF64U => {
                    self.cvtop(F64, I64)?
                }
                F32ConvertI32S | F32ConvertI32U => self.cvtop(I32, F32)?,
                F32ConvertI64S | F32ConvertI64U => self.cvtop(I64, F32)?,
                F32DemoteF64 => self.cvtop(F64, F32)?,
                F64ConvertI32S | F64ConvertI32U => self.cvtop(I32, F64)?,
                F64ConvertI64S | F64ConvertI64U => self.cvtop(I64, F64)?,
                F64PromoteF32 => self.cvtop(F32, F64)?,
                I32ReinterpretF32 => self.cvtop(F32, I32)?,
                I64ReinterpretF64 => self.cvtop(F64, I64)?,
                F32ReinterpretI32 => self.cvtop(I32, F32)?,
                F64ReinterpretI64 => self.cvtop(I64, F64)?,
            }
            self.pc += 1;
        }

        if !self.ctrls.is_empty() {
            // The final `End` should have popped the function frame; if the
            // body was well-formed (fixup passed) this cannot happen.
            return Err(self.err(ValidateErrorKind::ControlUnderflow));
        }
        // The function frame's pop checked the result type and final height.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType::{F64, I32, I64};

    fn validate_body(
        params: &[ValType],
        results: &[ValType],
        build: impl FnOnce(&mut ModuleBuilder),
    ) -> Result<(), ValidateError> {
        let mut mb = ModuleBuilder::new();
        mb.memory(1, Some(2));
        let sig = mb.func_type(params, results);
        mb.begin_func(sig);
        build(&mut mb);
        mb.end_func().expect("structure ok");
        let module = mb.finish().expect("module builds");
        validate(&module)
    }

    #[test]
    fn accepts_add() {
        validate_body(&[I32, I32], &[I32], |mb| {
            mb.code().local_get(0).local_get(1).i32_add();
        })
        .unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let err = validate_body(&[I32], &[I32], |mb| {
            mb.code().local_get(0).f64_const(1.0).i32_add();
        })
        .unwrap_err();
        assert!(matches!(
            err.kind,
            ValidateErrorKind::TypeMismatch { expected: I32, .. }
        ));
    }

    #[test]
    fn rejects_stack_underflow() {
        let err = validate_body(&[], &[I32], |mb| {
            mb.code().i32_add();
        })
        .unwrap_err();
        assert_eq!(err.kind, ValidateErrorKind::StackUnderflow);
    }

    #[test]
    fn rejects_missing_result() {
        let err = validate_body(&[], &[I32], |mb| {
            mb.code().nop();
        })
        .unwrap_err();
        assert_eq!(err.kind, ValidateErrorKind::StackUnderflow);
    }

    #[test]
    fn rejects_excess_values() {
        let err = validate_body(&[], &[], |mb| {
            mb.code().i32_const(1);
        })
        .unwrap_err();
        assert!(matches!(
            err.kind,
            ValidateErrorKind::StackHeightMismatch { .. }
        ));
    }

    #[test]
    fn accepts_unreachable_polymorphism() {
        // After `unreachable` anything type-checks, including popping values
        // that were never pushed.
        validate_body(&[], &[I32], |mb| {
            mb.code().unreachable().i32_add();
        })
        .unwrap();
    }

    #[test]
    fn accepts_br_in_block_with_result() {
        validate_body(&[], &[I32], |mb| {
            mb.code()
                .block(BlockType::Value(I32))
                .i32_const(7)
                .br(0)
                .end();
        })
        .unwrap();
    }

    #[test]
    fn rejects_bad_label_depth() {
        let err = validate_body(&[], &[], |mb| {
            mb.code().block(BlockType::Empty).br(5).end();
        })
        .unwrap_err();
        assert_eq!(err.kind, ValidateErrorKind::BadLabelDepth(5));
    }

    #[test]
    fn loop_branch_carries_no_values() {
        // Branching to a loop label targets its start: no values expected
        // even when the loop has a result type.
        validate_body(&[I32], &[I32], |mb| {
            mb.code()
                .loop_(BlockType::Value(I32))
                .local_get(0)
                .i32_eqz()
                .br_if(0)
                .i32_const(3)
                .end();
        })
        .unwrap();
    }

    #[test]
    fn rejects_write_to_immutable_global() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global(I32, Mutability::Const, ConstExpr::I32(1));
        let sig = mb.func_type(&[], &[]);
        mb.begin_func(sig);
        mb.code().i32_const(2).global_set(g);
        mb.end_func().unwrap();
        let module = mb.finish().unwrap();
        let err = validate(&module).unwrap_err();
        assert_eq!(err.kind, ValidateErrorKind::ImmutableGlobal(0));
    }

    #[test]
    fn rejects_memory_op_without_memory() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[], &[I32]);
        mb.begin_func(sig);
        mb.code().i32_const(0).i32_load(0);
        mb.end_func().unwrap();
        let module = mb.finish().unwrap();
        let err = validate(&module).unwrap_err();
        assert_eq!(err.kind, ValidateErrorKind::NoMemory);
    }

    #[test]
    fn rejects_overaligned_access() {
        let mut mb = ModuleBuilder::new();
        mb.memory(1, None);
        let sig = mb.func_type(&[], &[I32]);
        mb.begin_func(sig);
        mb.code()
            .i32_const(0)
            .raw(crate::instr::Instr::I32Load(crate::instr::MemArg {
                align: 3, // 2^3 = 8 > 4-byte access
                offset: 0,
            }));
        mb.end_func().unwrap();
        let module = mb.finish().unwrap();
        let err = validate(&module).unwrap_err();
        assert!(matches!(
            err.kind,
            ValidateErrorKind::BadAlignment {
                align: 3,
                natural: 2
            }
        ));
    }

    #[test]
    fn rejects_bad_call_index() {
        let err = validate_body(&[], &[], |mb| {
            mb.code().call(99);
        })
        .unwrap_err();
        assert_eq!(err.kind, ValidateErrorKind::BadFuncIndex(99));
    }

    #[test]
    fn rejects_call_indirect_without_table() {
        let err = validate_body(&[], &[], |mb| {
            mb.code().i32_const(0).call_indirect(0);
        })
        .unwrap_err();
        assert_eq!(err.kind, ValidateErrorKind::NoTable);
    }

    #[test]
    fn validates_call_arguments() {
        let mut mb = ModuleBuilder::new();
        let callee_sig = mb.func_type(&[I64, F64], &[I64]);
        let caller_sig = mb.func_type(&[], &[I64]);
        let callee = mb.begin_func(callee_sig);
        mb.code().local_get(0);
        mb.end_func().unwrap();
        mb.begin_func(caller_sig);
        // Wrong argument order: f64 then i64.
        mb.code().f64_const(1.0).i64_const(2).call(callee);
        mb.end_func().unwrap();
        let module = mb.finish().unwrap();
        assert!(validate(&module).is_err());
    }

    #[test]
    fn if_else_arms_must_agree() {
        let err = validate_body(&[I32], &[I32], |mb| {
            mb.code()
                .local_get(0)
                .if_(BlockType::Value(I32))
                .i32_const(1)
                .else_()
                .f64_const(2.0) // wrong type in else arm
                .end();
        })
        .unwrap_err();
        assert!(matches!(
            err.kind,
            ValidateErrorKind::TypeMismatch { expected: I32, .. }
        ));
    }

    #[test]
    fn select_requires_matching_types() {
        let err = validate_body(&[], &[I32], |mb| {
            mb.code().i32_const(1).i64_const(2).i32_const(0).select();
        })
        .unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_export_rejected() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[], &[]);
        let f = mb.begin_func(sig);
        mb.end_func().unwrap();
        mb.export_func("x", f);
        mb.export_func("x", f);
        let module = mb.finish().unwrap();
        let err = validate(&module).unwrap_err();
        assert!(matches!(err.kind, ValidateErrorKind::DuplicateExport(_)));
    }

    #[test]
    fn start_must_be_nullary() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[I32], &[]);
        let f = mb.begin_func(sig);
        mb.code().local_get(0).drop();
        mb.end_func().unwrap();
        mb.start(f);
        let module = mb.finish().unwrap();
        let err = validate(&module).unwrap_err();
        assert_eq!(err.kind, ValidateErrorKind::BadStart);
    }

    #[test]
    fn br_table_checked() {
        validate_body(&[I32], &[], |mb| {
            mb.code()
                .block(BlockType::Empty)
                .block(BlockType::Empty)
                .local_get(0)
                .br_table(&[0, 1], 0)
                .end()
                .end();
        })
        .unwrap();
    }
}
