//! WAT-style disassembler.
//!
//! Renders a decoded [`Module`] as readable WAT-flavoured text — the
//! operator-side tool for inspecting third-party plugins before deploying
//! them into a RAN (the paper's §3.A: "MNOs can perform static analysis on
//! the MVNO scheduler plugin before deployment"). The output uses the flat
//! instruction syntax this crate's [`crate::wat`] assembler accepts for
//! the supported subset.

use std::fmt::Write as _;

use crate::compile::{CompiledFunc, Op};
use crate::instr::Instr;
use crate::module::{ConstExpr, ExportKind, ImportKind, Module};
use crate::regalloc::{RBranch, ROp, RegFunc};
use crate::types::{BlockType, FuncType, Mutability, ValType};

/// Render a module as WAT-style text.
pub fn disassemble(module: &Module) -> String {
    let mut out = String::new();
    out.push_str("(module\n");

    for imp in &module.imports {
        let ImportKind::Func { type_idx } = imp.kind;
        let ty = &module.types[type_idx as usize];
        let _ = writeln!(
            out,
            "  (import \"{}\" \"{}\" (func {}))",
            imp.module,
            imp.name,
            signature(ty)
        );
    }

    if let Some(mem) = module.memory {
        let max = mem.max.map(|m| format!(" {m}")).unwrap_or_default();
        let _ = writeln!(out, "  (memory {}{})", mem.min, max);
    }
    if let Some(table) = module.table {
        let max = table.max.map(|m| format!(" {m}")).unwrap_or_default();
        let _ = writeln!(out, "  (table {}{} funcref)", table.min, max);
    }

    for (i, g) in module.globals.iter().enumerate() {
        let ty = match g.ty.mutability {
            Mutability::Var => format!("(mut {})", g.ty.ty),
            Mutability::Const => g.ty.ty.to_string(),
        };
        let _ = writeln!(out, "  (global $g{i} {ty} ({}))", const_expr(&g.init));
    }

    let n_imports = module.num_imported_funcs();
    for (i, body) in module.funcs.iter().enumerate() {
        let func_idx = n_imports + i as u32;
        let ty = &module.types[body.type_idx as usize];
        let export = module
            .exports
            .iter()
            .find(|e| e.kind == ExportKind::Func(func_idx))
            .map(|e| format!(" (export \"{}\")", e.name))
            .unwrap_or_default();
        let _ = writeln!(out, "  (func $f{func_idx}{export} {}", signature(ty));
        if !body.locals.is_empty() {
            let locals: Vec<String> = body.locals.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(out, "    (local {})", locals.join(" "));
        }
        // Instruction listing with nesting-aware indentation; the trailing
        // function-level `end` is implied by the closing paren.
        let mut depth = 1usize;
        for (pc, instr) in body.code.iter().enumerate() {
            if pc == body.code.len() - 1 && matches!(instr, Instr::End) {
                break;
            }
            match instr {
                Instr::End => depth = depth.saturating_sub(1),
                Instr::Else { .. } => depth = depth.saturating_sub(1),
                _ => {}
            }
            let _ = writeln!(
                out,
                "    {}{}",
                "  ".repeat(depth.saturating_sub(1)),
                render(instr)
            );
            match instr {
                Instr::Block { .. }
                | Instr::Loop { .. }
                | Instr::If { .. }
                | Instr::Else { .. } => depth += 1,
                _ => {}
            }
        }
        out.push_str("  )\n");
    }

    for e in &module.exports {
        match e.kind {
            ExportKind::Memory => {
                let _ = writeln!(out, "  (export \"{}\" (memory 0))", e.name);
            }
            ExportKind::Global(idx) => {
                let _ = writeln!(out, "  (export \"{}\" (global $g{idx}))", e.name);
            }
            _ => {} // function exports rendered inline, table exports elided
        }
    }

    if let Some(start) = module.start {
        let _ = writeln!(out, "  (start $f{start})");
    }
    for seg in &module.elems {
        let funcs: Vec<String> = seg.funcs.iter().map(|f| format!("$f{f}")).collect();
        let _ = writeln!(
            out,
            "  (elem ({}) {})",
            const_expr(&seg.offset),
            funcs.join(" ")
        );
    }
    for seg in &module.data {
        let _ = writeln!(
            out,
            "  (data ({}) \"{}\")",
            const_expr(&seg.offset),
            escape_bytes(&seg.bytes)
        );
    }

    out.push_str(")\n");
    out
}

fn signature(ty: &FuncType) -> String {
    let mut s = String::new();
    if !ty.params.is_empty() {
        let params: Vec<String> = ty.params.iter().map(ValType::to_string).collect();
        let _ = write!(s, "(param {})", params.join(" "));
    }
    if let Some(r) = ty.results.first() {
        if !s.is_empty() {
            s.push(' ');
        }
        let _ = write!(s, "(result {r})");
    }
    s
}

fn const_expr(e: &ConstExpr) -> String {
    match e {
        ConstExpr::I32(v) => format!("i32.const {v}"),
        ConstExpr::I64(v) => format!("i64.const {v}"),
        ConstExpr::F32(v) => format!("f32.const {v}"),
        ConstExpr::F64(v) => format!("f64.const {v}"),
    }
}

fn escape_bytes(bytes: &[u8]) -> String {
    let mut s = String::new();
    for &b in bytes {
        match b {
            b'"' => s.push_str("\\\""),
            b'\\' => s.push_str("\\\\"),
            0x20..=0x7e => s.push(b as char),
            other => {
                let _ = write!(s, "\\{other:02x}");
            }
        }
    }
    s
}

fn blocktype(bt: &BlockType) -> String {
    match bt {
        BlockType::Empty => String::new(),
        BlockType::Value(t) => format!(" (result {t})"),
    }
}

fn memarg(name: &str, m: &crate::instr::MemArg) -> String {
    if m.offset == 0 {
        name.to_string()
    } else {
        format!("{name} offset={}", m.offset)
    }
}

/// Render one instruction in flat WAT syntax.
pub fn render(instr: &Instr) -> String {
    use Instr::*;
    match instr {
        Unreachable => "unreachable".into(),
        Nop => "nop".into(),
        Block { ty, .. } => format!("block{}", blocktype(ty)),
        Loop { ty } => format!("loop{}", blocktype(ty)),
        If { ty, .. } => format!("if{}", blocktype(ty)),
        Else { .. } => "else".into(),
        End => "end".into(),
        Br { depth } => format!("br {depth}"),
        BrIf { depth } => format!("br_if {depth}"),
        BrTable { targets, default } => {
            let mut s = String::from("br_table");
            for t in targets.iter() {
                let _ = write!(s, " {t}");
            }
            let _ = write!(s, " {default}");
            s
        }
        Return => "return".into(),
        Call { func } => format!("call $f{func}"),
        CallIndirect { type_idx } => format!("call_indirect (type {type_idx})"),
        Drop => "drop".into(),
        Select => "select".into(),
        LocalGet(i) => format!("local.get {i}"),
        LocalSet(i) => format!("local.set {i}"),
        LocalTee(i) => format!("local.tee {i}"),
        GlobalGet(i) => format!("global.get $g{i}"),
        GlobalSet(i) => format!("global.set $g{i}"),
        I32Load(m) => memarg("i32.load", m),
        I64Load(m) => memarg("i64.load", m),
        F32Load(m) => memarg("f32.load", m),
        F64Load(m) => memarg("f64.load", m),
        I32Load8S(m) => memarg("i32.load8_s", m),
        I32Load8U(m) => memarg("i32.load8_u", m),
        I32Load16S(m) => memarg("i32.load16_s", m),
        I32Load16U(m) => memarg("i32.load16_u", m),
        I64Load8S(m) => memarg("i64.load8_s", m),
        I64Load8U(m) => memarg("i64.load8_u", m),
        I64Load16S(m) => memarg("i64.load16_s", m),
        I64Load16U(m) => memarg("i64.load16_u", m),
        I64Load32S(m) => memarg("i64.load32_s", m),
        I64Load32U(m) => memarg("i64.load32_u", m),
        I32Store(m) => memarg("i32.store", m),
        I64Store(m) => memarg("i64.store", m),
        F32Store(m) => memarg("f32.store", m),
        F64Store(m) => memarg("f64.store", m),
        I32Store8(m) => memarg("i32.store8", m),
        I32Store16(m) => memarg("i32.store16", m),
        I64Store8(m) => memarg("i64.store8", m),
        I64Store16(m) => memarg("i64.store16", m),
        I64Store32(m) => memarg("i64.store32", m),
        MemorySize => "memory.size".into(),
        MemoryGrow => "memory.grow".into(),
        MemoryCopy => "memory.copy".into(),
        MemoryFill => "memory.fill".into(),
        I32Const(v) => format!("i32.const {v}"),
        I64Const(v) => format!("i64.const {v}"),
        F32Const(v) => format!("f32.const {v}"),
        F64Const(v) => format!("f64.const {v}"),
        other => {
            // Numeric operators: derive the WAT name from the variant name,
            // e.g. I32DivS -> i32.div_s, F64PromoteF32 -> f64.promote_f32.
            let name = format!("{other:?}");
            variant_to_wat(&name)
        }
    }
}

/// Render every function's register-form lowering ([`crate::regalloc`])
/// as a stable, line-oriented listing — the debugging companion to
/// [`disassemble`] for the `ExecMode::Reg` tier. Registers print as
/// `r{n}`; `r0..r{n_locals}` are the locals, the rest are stack slots.
/// Forces lowering of every body.
pub fn disassemble_reg(module: &Module) -> String {
    let mut out = String::new();
    let n_imports = module.num_imported_funcs();
    for i in 0..module.funcs.len() as u32 {
        let rf = module.reg_func(i);
        let _ = writeln!(
            out,
            "func $f{} (args {} -> {}, locals r0..r{}, frame {}):",
            n_imports + i,
            rf.argc,
            rf.ret_arity,
            rf.n_locals,
            rf.frame_size
        );
        for (pc, op) in rf.ops.iter().enumerate() {
            let _ = writeln!(out, "  {pc:>4}  {}", render_rop(op, rf));
        }
    }
    out
}

/// Render a branch descriptor: destination pc plus the carried-value move.
fn render_rbranch(rb: &RBranch) -> String {
    if rb.n == 0 {
        format!("->{}", rb.pc)
    } else {
        format!("->{} (r{}..+{} => r{})", rb.pc, rb.src, rb.n, rb.dst)
    }
}

/// Render one register-form op. One line, stable format.
fn render_rop(op: &ROp, rf: &RegFunc) -> String {
    let br = |bi: u32| render_rbranch(&rf.branches[bi as usize]);
    match *op {
        ROp::Meter { cost, entry, peak } => {
            format!("meter cost={cost} entry={entry} peak={peak}")
        }
        ROp::Unreachable => "unreachable".into(),
        ROp::Br(b) => format!("br {}", br(b)),
        ROp::BrIf { cond, br: b } => format!("br_if r{cond} {}", br(b)),
        ROp::BrIfZ { cond, br: b } => format!("br_ifz r{cond} {}", br(b)),
        ROp::BrIfCmp { op, a, b, br: bi } => {
            format!("br_if (i32.{op:?} r{a} r{b}) {}", br(bi))
        }
        ROp::BrIfCmpC { op, a, k, br: bi } => {
            format!("br_if (i32.{op:?} r{a} {k}) {}", br(bi))
        }
        ROp::BrTable { sel, start, n } => {
            let arms: Vec<String> = (start..=start + n).map(br).collect();
            format!("br_table r{sel} [{}]", arms.join(", "))
        }
        ROp::Return { src } => format!("return r{src}"),
        ROp::CallWasm { f, base } => format!("call $f{f} window=r{base}"),
        ROp::CallHost { f, base, argc, ret } => {
            format!("call_host {f} window=r{base} argc={argc} ret={ret}")
        }
        ROp::CallIndirect { ty, base } => {
            format!("call_indirect (type {ty}) window=r{base}")
        }
        ROp::Copy { dst, src } => format!("r{dst} = r{src}"),
        ROp::ConstI32 { dst, k } => format!("r{dst} = i32.const {k}"),
        ROp::Const { dst, idx } => {
            format!("r{dst} = const[{idx}] ; {:?}", rf.consts[idx as usize])
        }
        ROp::Select { dst, cond, b } => {
            format!("r{dst} = select r{cond} ? r{dst} : r{b}")
        }
        ROp::GlobalGet { dst, g } => format!("r{dst} = global.get {g}"),
        ROp::GlobalSet { g, src } => format!("global.set {g} = r{src}"),
        ROp::MemorySize { dst } => format!("r{dst} = memory.size"),
        ROp::MemoryGrow { dst, delta } => format!("r{dst} = memory.grow r{delta}"),
        ROp::MemoryCopy { dst, src, len } => {
            format!("memory.copy r{dst} r{src} r{len}")
        }
        ROp::MemoryFill { dst, val, len } => {
            format!("memory.fill r{dst} r{val} r{len}")
        }
        ROp::I32Bin { op, dst, a, b } => format!("r{dst} = i32.{op:?} r{a} r{b}"),
        ROp::I32BinC { op, dst, a, k } => format!("r{dst} = i32.{op:?} r{a} {k}"),
        ROp::I64Bin { op, dst, a, b } => format!("r{dst} = {op:?} r{a} r{b}"),
        ROp::Bin { op, dst, a, b } => format!("r{dst} = {op:?} r{a} r{b}"),
        ROp::Un { op, dst, a } => format!("r{dst} = {op:?} r{a}"),
        ROp::Load {
            kind,
            dst,
            addr,
            off,
        } => {
            format!("r{dst} = load.{kind:?} [r{addr}+{off}]")
        }
        ROp::Store {
            kind,
            addr,
            val,
            off,
        } => {
            format!("store.{kind:?} [r{addr}+{off}] = r{val}")
        }
        ROp::LoadAt {
            kind,
            dst,
            a,
            k,
            off,
        } => {
            format!("r{dst} = load.{kind:?} [r{a}{k:+}+{off}]")
        }
        ROp::LoadRR {
            kind,
            dst,
            a,
            b,
            off,
        } => {
            format!("r{dst} = load.{kind:?} [r{a}+r{b}+{off}]")
        }
        ROp::StoreAt {
            kind,
            a,
            k,
            val,
            off,
        } => {
            format!("store.{kind:?} [r{a}{k:+}+{off}] = r{val}")
        }
        ROp::StoreRR {
            kind,
            a,
            b,
            val,
            off,
        } => {
            format!("store.{kind:?} [r{a}+r{b}+{off}] = r{val}")
        }
        ROp::LoadBis {
            kind,
            dst,
            a,
            b,
            sh,
            k,
            off,
        } => {
            format!("r{dst} = load.{kind:?} [r{a}+(r{b}<<{sh}){k:+}+{off}]")
        }
        ROp::StoreBis {
            kind,
            a,
            b,
            sh,
            k,
            val,
            off,
        } => {
            format!("store.{kind:?} [r{a}+(r{b}<<{sh}){k:+}+{off}] = r{val}")
        }
        ROp::StoreCAt { kind, a, k, v, off } => {
            format!("store.{kind:?} [r{a}{k:+}+{off}] = const {v:#x}")
        }
    }
}

/// Render every function's flat-IR lowering ([`crate::compile`]) as a
/// stable, line-oriented listing — the `ExecMode::Compiled` companion to
/// [`disassemble_reg`]. Forces compilation of every body.
pub fn disassemble_flat(module: &Module) -> String {
    let mut out = String::new();
    let n_imports = module.num_imported_funcs();
    for i in 0..module.funcs.len() as u32 {
        let cf = module.compiled_func(i);
        let _ = writeln!(
            out,
            "func $f{} (args {} -> {}, locals {}):",
            n_imports + i,
            cf.argc,
            cf.ret_arity,
            cf.argc as usize + cf.locals_init.len()
        );
        for (pc, op) in cf.ops.iter().enumerate() {
            let _ = writeln!(out, "  {pc:>4}  {}", render_op(op, cf));
        }
    }
    out
}

/// Render a flat branch target: destination pc plus the stack the target
/// expects (`height` slots below `arity` carried values).
fn render_branch(bt: &crate::compile::BranchTarget) -> String {
    if bt.height == 0 && bt.arity == 0 {
        format!("->{}", bt.pc)
    } else {
        format!("->{} (h={} n={})", bt.pc, bt.height, bt.arity)
    }
}

/// Render one flat-IR op. The match is deliberately exhaustive (no `_`
/// arm): a new [`Op`] variant fails compilation here until it is given a
/// rendering, so new ops cannot silently skip the operator tooling.
fn render_op(op: &Op, cf: &CompiledFunc) -> String {
    let br = |bi: u32| render_branch(&cf.branches[bi as usize]);
    match *op {
        Op::Meter { cost, peak } => format!("meter cost={cost} peak={peak}"),
        Op::Unreachable => "unreachable".into(),
        Op::Br(b) => format!("br {}", br(b)),
        Op::BrIf(b) => format!("br_if {}", br(b)),
        Op::BrIfZ(b) => format!("br_ifz {}", br(b)),
        Op::BrIfCmp { op, br: b } => format!("br_if (i32.{op:?}) {}", br(b)),
        Op::BrIfLL { op, a, b, br: bi } => {
            format!("br_if (i32.{op:?} l{a} l{b}) {}", br(bi))
        }
        Op::BrTable { start, n } => {
            let arms: Vec<String> = (start..=start + n).map(br).collect();
            format!("br_table [{}]", arms.join(", "))
        }
        Op::Return => "return".into(),
        Op::CallWasm(f) => format!("call $f{f}"),
        Op::CallHost { f, argc, ret } => format!("call_host {f} argc={argc} ret={ret}"),
        Op::CallIndirect(ty) => format!("call_indirect (type {ty})"),
        Op::Drop => "drop".into(),
        Op::Select => "select".into(),
        Op::LocalGet(l) => format!("local.get {l}"),
        Op::LocalGet2 { a, b } => format!("local.get2 {a} {b}"),
        Op::LocalSet(l) => format!("local.set {l}"),
        Op::LocalTee(l) => format!("local.tee {l}"),
        Op::LocalSetC { dst, k } => format!("l{dst} = i32.const {k}"),
        Op::LocalCopy { src, dst } => format!("l{dst} = l{src}"),
        Op::GlobalGet(g) => format!("global.get {g}"),
        Op::GlobalSet(g) => format!("global.set {g}"),
        Op::I32Bin(op) => format!("i32.{op:?}"),
        Op::I32BinLL { op, a, b } => format!("i32.{op:?} l{a} l{b}"),
        Op::I32BinSL { op, b } => format!("i32.{op:?} s l{b}"),
        Op::I32BinSC { op, k } => format!("i32.{op:?} s {k}"),
        Op::I32BinLC { op, a, k } => format!("i32.{op:?} l{a} {k}"),
        Op::I32BinLLSet { op, a, b, dst } => format!("l{dst} = i32.{op:?} l{a} l{b}"),
        Op::I32BinLCSet { op, a, k, dst } => format!("l{dst} = i32.{op:?} l{a} {k}"),
        Op::I32BinSLSet { op, b, dst } => format!("l{dst} = i32.{op:?} s l{b}"),
        Op::I32BinSCSet { op, k, dst } => format!("l{dst} = i32.{op:?} s {k}"),
        Op::I32LoadL { l, off } => format!("i32.load [l{l}+{off}]"),
        Op::I64LoadL { l, off } => format!("i64.load [l{l}+{off}]"),
        Op::F64LoadL { l, off } => format!("f64.load [l{l}+{off}]"),
        Op::I32Load8UL { l, off } => format!("i32.load8_u [l{l}+{off}]"),
        Op::I32LoadSet { off, dst } => format!("l{dst} = i32.load [s+{off}]"),
        Op::I32LoadLSet { l, off, dst } => format!("l{dst} = i32.load [l{l}+{off}]"),
        Op::I32Load(off) => format!("i32.load offset={off}"),
        Op::I64Load(off) => format!("i64.load offset={off}"),
        Op::F32Load(off) => format!("f32.load offset={off}"),
        Op::F64Load(off) => format!("f64.load offset={off}"),
        Op::I32Load8S(off) => format!("i32.load8_s offset={off}"),
        Op::I32Load8U(off) => format!("i32.load8_u offset={off}"),
        Op::I32Load16S(off) => format!("i32.load16_s offset={off}"),
        Op::I32Load16U(off) => format!("i32.load16_u offset={off}"),
        Op::I64Load8S(off) => format!("i64.load8_s offset={off}"),
        Op::I64Load8U(off) => format!("i64.load8_u offset={off}"),
        Op::I64Load16S(off) => format!("i64.load16_s offset={off}"),
        Op::I64Load16U(off) => format!("i64.load16_u offset={off}"),
        Op::I64Load32S(off) => format!("i64.load32_s offset={off}"),
        Op::I64Load32U(off) => format!("i64.load32_u offset={off}"),
        Op::I32Store(off) => format!("i32.store offset={off}"),
        Op::I64Store(off) => format!("i64.store offset={off}"),
        Op::F32Store(off) => format!("f32.store offset={off}"),
        Op::F64Store(off) => format!("f64.store offset={off}"),
        Op::I32Store8(off) => format!("i32.store8 offset={off}"),
        Op::I32Store16(off) => format!("i32.store16 offset={off}"),
        Op::I64Store8(off) => format!("i64.store8 offset={off}"),
        Op::I64Store16(off) => format!("i64.store16 offset={off}"),
        Op::I64Store32(off) => format!("i64.store32 offset={off}"),
        Op::MemorySize => "memory.size".into(),
        Op::MemoryGrow => "memory.grow".into(),
        Op::MemoryCopy => "memory.copy".into(),
        Op::MemoryFill => "memory.fill".into(),
        Op::I32Const(v) => format!("i32.const {v}"),
        Op::I64Const(v) => format!("i64.const {v}"),
        Op::F32Const(v) => format!("f32.const {v}"),
        Op::F64Const(v) => format!("f64.const {v}"),
        // The numeric long tail: unit variants whose WAT name derives
        // mechanically from the variant name. Listed — not wildcarded —
        // so exhaustiveness still holds.
        Op::I32Eqz
        | Op::I32Clz
        | Op::I32Ctz
        | Op::I32Popcnt
        | Op::I32DivS
        | Op::I32DivU
        | Op::I32RemS
        | Op::I32RemU
        | Op::I64Eqz
        | Op::I64Eq
        | Op::I64Ne
        | Op::I64LtS
        | Op::I64LtU
        | Op::I64GtS
        | Op::I64GtU
        | Op::I64LeS
        | Op::I64LeU
        | Op::I64GeS
        | Op::I64GeU
        | Op::I64Clz
        | Op::I64Ctz
        | Op::I64Popcnt
        | Op::I64Add
        | Op::I64Sub
        | Op::I64Mul
        | Op::I64DivS
        | Op::I64DivU
        | Op::I64RemS
        | Op::I64RemU
        | Op::I64And
        | Op::I64Or
        | Op::I64Xor
        | Op::I64Shl
        | Op::I64ShrS
        | Op::I64ShrU
        | Op::I64Rotl
        | Op::I64Rotr
        | Op::F32Eq
        | Op::F32Ne
        | Op::F32Lt
        | Op::F32Gt
        | Op::F32Le
        | Op::F32Ge
        | Op::F64Eq
        | Op::F64Ne
        | Op::F64Lt
        | Op::F64Gt
        | Op::F64Le
        | Op::F64Ge
        | Op::F32Abs
        | Op::F32Neg
        | Op::F32Ceil
        | Op::F32Floor
        | Op::F32Trunc
        | Op::F32Nearest
        | Op::F32Sqrt
        | Op::F32Add
        | Op::F32Sub
        | Op::F32Mul
        | Op::F32Div
        | Op::F32Min
        | Op::F32Max
        | Op::F32Copysign
        | Op::F64Abs
        | Op::F64Neg
        | Op::F64Ceil
        | Op::F64Floor
        | Op::F64Trunc
        | Op::F64Nearest
        | Op::F64Sqrt
        | Op::F64Add
        | Op::F64Sub
        | Op::F64Mul
        | Op::F64Div
        | Op::F64Min
        | Op::F64Max
        | Op::F64Copysign
        | Op::I32WrapI64
        | Op::I32TruncF32S
        | Op::I32TruncF32U
        | Op::I32TruncF64S
        | Op::I32TruncF64U
        | Op::I64ExtendI32S
        | Op::I64ExtendI32U
        | Op::I64TruncF32S
        | Op::I64TruncF32U
        | Op::I64TruncF64S
        | Op::I64TruncF64U
        | Op::F32ConvertI32S
        | Op::F32ConvertI32U
        | Op::F32ConvertI64S
        | Op::F32ConvertI64U
        | Op::F32DemoteF64
        | Op::F64ConvertI32S
        | Op::F64ConvertI32U
        | Op::F64ConvertI64S
        | Op::F64ConvertI64U
        | Op::F64PromoteF32
        | Op::I32ReinterpretF32
        | Op::I64ReinterpretF64
        | Op::F32ReinterpretI32
        | Op::F64ReinterpretI64
        | Op::I32Extend8S
        | Op::I32Extend16S
        | Op::I64Extend8S
        | Op::I64Extend16S
        | Op::I64Extend32S
        | Op::I32TruncSatF32S
        | Op::I32TruncSatF32U
        | Op::I32TruncSatF64S
        | Op::I32TruncSatF64U
        | Op::I64TruncSatF32S
        | Op::I64TruncSatF32U
        | Op::I64TruncSatF64S
        | Op::I64TruncSatF64U => variant_to_wat(&format!("{op:?}")),
    }
}

/// `I32TruncSatF64U` → `i32.trunc_sat_f64_u`, etc.
fn variant_to_wat(variant: &str) -> String {
    let mut out = String::new();
    let chars: Vec<char> = variant.chars().collect();
    let mut i = 0;
    // Leading type prefix: I32/I64/F32/F64.
    if chars.len() >= 3 && (chars[0] == 'I' || chars[0] == 'F') {
        out.push(chars[0].to_ascii_lowercase());
        out.push(chars[1]);
        out.push(chars[2]);
        out.push('.');
        i = 3;
    }
    let mut word_break = false;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_uppercase() {
            if word_break {
                out.push('_');
            }
            // Embedded operand types (I32/F64…) keep their digits attached.
            if (c == 'I' || c == 'F')
                && i + 2 < chars.len()
                && chars[i + 1].is_ascii_digit()
                && chars[i + 2].is_ascii_digit()
            {
                out.push(c.to_ascii_lowercase());
                out.push(chars[i + 1]);
                out.push(chars[i + 2]);
                i += 3;
                word_break = true;
                continue;
            }
            out.push(c.to_ascii_lowercase());
            word_break = false;
        } else {
            out.push(c);
            word_break = true;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wat;

    #[test]
    fn variant_names_map_to_wat() {
        use crate::instr::Instr::*;
        assert_eq!(render(&I32DivS), "i32.div_s");
        assert_eq!(render(&I64ShrU), "i64.shr_u");
        assert_eq!(render(&F64PromoteF32), "f64.promote_f32");
        assert_eq!(render(&I32TruncSatF64U), "i32.trunc_sat_f64_u");
        assert_eq!(render(&I64ExtendI32S), "i64.extend_i32_s");
        assert_eq!(render(&F32Copysign), "f32.copysign");
        assert_eq!(render(&I32Extend8S), "i32.extend8_s");
        assert_eq!(render(&I32Clz), "i32.clz");
    }

    #[test]
    fn disassembles_a_module() {
        let bytes = wat::assemble(
            r#"(module
                 (import "env" "log" (func (param i32)))
                 (memory (export "memory") 1 4)
                 (global $g (mut i64) (i64.const 5))
                 (data (i32.const 8) "hi\00")
                 (func $f (export "work") (param i32 i32) (result i32)
                   (local i64)
                   block (result i32)
                     local.get 0
                     local.get 1
                     i32.add
                   end))"#,
        )
        .unwrap();
        let module = crate::load_module(&bytes).unwrap();
        let text = disassemble(&module);
        for needle in [
            "(import \"env\" \"log\" (func (param i32)))",
            "(memory 1 4)",
            "(global $g0 (mut i64) (i64.const 5))",
            "(export \"work\")",
            "(param i32 i32) (result i32)",
            "(local i64)",
            "block (result i32)",
            "i32.add",
            "(data (i32.const 8) \"hi\\00\")",
            "(export \"memory\" (memory 0))",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn disassembly_of_standard_shapes_is_stable() {
        // The round structure survives: block/loop indentation nests and
        // every opened construct closes.
        let bytes = wat::assemble(
            r#"(module
                 (func (export "f") (param i32) (result i32)
                   block $b (result i32)
                     loop $l
                       i32.const 7
                       local.get 0
                       i32.eqz
                       br_if 1
                       drop
                       br $l
                     end
                     unreachable
                   end))"#,
        )
        .unwrap();
        let module = crate::load_module(&bytes).unwrap();
        let text = disassemble(&module);
        let opens = text.matches("block").count() + text.matches("loop").count();
        let ends = text.matches("\n    end").count() + text.matches("  end").count();
        assert!(ends >= opens, "unbalanced disassembly:\n{text}");
    }

    #[test]
    fn escape_bytes_printable_and_hex() {
        assert_eq!(escape_bytes(b"a\"b\\c\x01"), "a\\\"b\\\\c\\01");
    }

    #[test]
    fn flat_form_snapshot_is_stable() {
        // Snapshot of the flat-IR listing for the same two functions as
        // the register-form snapshot below: fused three-address arithmetic
        // and the if/else diamond with its interned branch targets. The
        // exact text is load-bearing for debugging the flat compiler;
        // update it deliberately when the lowering changes.
        let bytes = wat::assemble(
            r#"(module
                 (func (export "madd") (param i32 i32) (result i32)
                   local.get 0
                   local.get 1
                   i32.mul
                   i32.const 3
                   i32.add)
                 (func (export "pick") (param i32) (result i32)
                   local.get 0
                   if (result i32)
                     i32.const 7
                   else
                     i32.const 9
                   end))"#,
        )
        .unwrap();
        let module = crate::load_module(&bytes).unwrap();
        let text = disassemble_flat(&module);
        assert_eq!(
            text,
            "\
func $f0 (args 2 -> 1, locals 2):
     0  meter cost=6 peak=2
     1  i32.Mul l0 l1
     2  i32.Add s 3
     3  return
func $f1 (args 1 -> 1, locals 1):
     0  meter cost=2 peak=1
     1  local.get 0
     2  br_ifz ->6
     3  meter cost=2 peak=1
     4  i32.const 7
     5  br ->8 (h=0 n=1)
     6  meter cost=1 peak=1
     7  i32.const 9
     8  meter cost=2 peak=0
     9  return
"
        );
    }

    #[test]
    fn flat_numeric_tail_renders_wat_names() {
        // The long-tail arm derives names mechanically; spot-check the
        // tricky shapes (operand-type suffixes, sat-conversions, extends).
        let cf = crate::compile::CompiledFunc {
            ops: Box::new([]),
            branches: Box::new([]),
            locals_init: Box::new([]),
            argc: 0,
            ret_arity: 0,
        };
        for (op, want) in [
            (Op::I64Rotl, "i64.rotl"),
            (Op::I32DivS, "i32.div_s"),
            (Op::F64PromoteF32, "f64.promote_f32"),
            (Op::I32TruncSatF64U, "i32.trunc_sat_f64_u"),
            (Op::I64ExtendI32S, "i64.extend_i32_s"),
            (Op::I64Extend32S, "i64.extend32_s"),
            (Op::F32Copysign, "f32.copysign"),
            (Op::I32ReinterpretF32, "i32.reinterpret_f32"),
        ] {
            assert_eq!(render_op(&op, &cf), want);
        }
        assert_eq!(render_op(&Op::MemoryGrow, &cf), "memory.grow");
        assert_eq!(render_op(&Op::Select, &cf), "select");
    }

    #[test]
    fn register_form_snapshot_is_stable() {
        // Snapshot of the register-form listing for two tiny functions:
        // straight-line arithmetic (constant fused, local reused in place)
        // and an if/else diamond (fused compare-and-branch, join flush).
        // The exact text is load-bearing for debugging the lowering pass;
        // update it deliberately when the lowering changes.
        let bytes = wat::assemble(
            r#"(module
                 (func (export "madd") (param i32 i32) (result i32)
                   local.get 0
                   local.get 1
                   i32.mul
                   i32.const 3
                   i32.add)
                 (func (export "pick") (param i32) (result i32)
                   local.get 0
                   if (result i32)
                     i32.const 7
                   else
                     i32.const 9
                   end))"#,
        )
        .unwrap();
        let module = crate::load_module(&bytes).unwrap();
        let text = disassemble_reg(&module);
        assert_eq!(
            text,
            "\
func $f0 (args 2 -> 1, locals r0..r2, frame 3):
     0  meter cost=6 entry=0 peak=2
     1  r2 = i32.Mul r0 r1
     2  r2 = i32.Add r2 3
     3  return r2
func $f1 (args 1 -> 1, locals r0..r1, frame 2):
     0  meter cost=2 entry=0 peak=1
     1  br_ifz r0 ->5
     2  meter cost=2 entry=0 peak=1
     3  r1 = i32.const 7
     4  br ->7
     5  meter cost=1 entry=0 peak=1
     6  r1 = i32.const 9
     7  meter cost=2 entry=1 peak=0
     8  return r1
"
        );
    }
}
