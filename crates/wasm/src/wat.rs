//! A WAT-subset text assembler.
//!
//! Supports the flat (non-folded) instruction syntax and the module fields
//! WA-RAN plugins need: function imports, memories (with inline exports),
//! tables + element segments, globals, data segments, start functions and
//! `$name` identifiers for functions, locals, globals and labels. Folded
//! expressions, inline `(type …)` declarations and `call_indirect` type
//! annotations are not supported — use [`crate::builder`] for those.
//!
//! ```
//! let bytes = waran_wasm::wat::assemble(r#"
//!   (module
//!     (memory (export "memory") 1)
//!     (func $sum (export "sum") (param $n i32) (result i32)
//!       (local $acc i32)
//!       block $exit
//!         loop $top
//!           local.get $n
//!           i32.eqz
//!           br_if $exit
//!           local.get $acc
//!           local.get $n
//!           i32.add
//!           local.set $acc
//!           local.get $n
//!           i32.const 1
//!           i32.sub
//!           local.set $n
//!           br $top
//!         end
//!       end
//!       local.get $acc))
//! "#).unwrap();
//! let module = waran_wasm::load_module(&bytes).unwrap();
//! assert!(module.exported_func("sum").is_some());
//! ```

use std::collections::HashMap;

use crate::builder::ModuleBuilder;
use crate::instr::{Instr, MemArg};
use crate::module::ConstExpr;
use crate::types::{BlockType, Mutability, ValType};

/// Assembly error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for WatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for WatError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, WatError> {
    Err(WatError {
        line,
        msg: msg.into(),
    })
}

// ---------------------------------------------------------------------
// Tokenizer + S-expression parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Atom(String, usize),
    Str(Vec<u8>, usize),
    List(Vec<Node>, usize),
}

impl Node {
    fn line(&self) -> usize {
        match self {
            Node::Atom(_, l) | Node::Str(_, l) | Node::List(_, l) => *l,
        }
    }

    fn as_atom(&self) -> Option<&str> {
        match self {
            Node::Atom(s, _) => Some(s),
            _ => None,
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<Node>, WatError> {
    let mut stack: Vec<(Vec<Node>, usize)> = vec![(Vec::new(), 1)];
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;

    while let Some((_, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            ';' => {
                // Line comment: ";;" to end of line.
                if chars.peek().map(|(_, c)| *c) == Some(';') {
                    for (_, c) in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return err(line, "stray ';'");
                }
            }
            '(' => {
                // Block comment "(;" … ";)"
                if chars.peek().map(|(_, c)| *c) == Some(';') {
                    chars.next();
                    let mut depth = 1;
                    let mut prev = ' ';
                    for (_, c) in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                        }
                        if prev == '(' && c == ';' {
                            depth += 1;
                        }
                        if prev == ';' && c == ')' {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        prev = c;
                    }
                    if depth != 0 {
                        return err(line, "unterminated block comment");
                    }
                } else {
                    stack.push((Vec::new(), line));
                }
            }
            ')' => {
                let (items, open_line) = stack.pop().ok_or(WatError {
                    line,
                    msg: "unbalanced ')'".into(),
                })?;
                if stack.is_empty() {
                    return err(line, "unbalanced ')'");
                }
                stack
                    .last_mut()
                    .expect("checked")
                    .0
                    .push(Node::List(items, open_line));
            }
            '"' => {
                let mut bytes = Vec::new();
                loop {
                    let Some((_, c)) = chars.next() else {
                        return err(line, "unterminated string");
                    };
                    match c {
                        '"' => break,
                        '\\' => {
                            let Some((_, esc)) = chars.next() else {
                                return err(line, "unterminated escape");
                            };
                            match esc {
                                'n' => bytes.push(b'\n'),
                                't' => bytes.push(b'\t'),
                                'r' => bytes.push(b'\r'),
                                '\\' => bytes.push(b'\\'),
                                '"' => bytes.push(b'"'),
                                '0'..='9' | 'a'..='f' | 'A'..='F' => {
                                    let hi = esc.to_digit(16).expect("hex digit");
                                    let Some((_, lo_c)) = chars.next() else {
                                        return err(line, "truncated hex escape");
                                    };
                                    let Some(lo) = lo_c.to_digit(16) else {
                                        return err(line, "bad hex escape");
                                    };
                                    bytes.push((hi * 16 + lo) as u8);
                                }
                                other => return err(line, format!("bad escape '\\{other}'")),
                            }
                        }
                        '\n' => return err(line, "newline in string"),
                        c => {
                            let mut buf = [0u8; 4];
                            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                    }
                }
                stack
                    .last_mut()
                    .expect("non-empty")
                    .0
                    .push(Node::Str(bytes, line));
            }
            c => {
                let mut atom = String::new();
                atom.push(c);
                while let Some((_, nc)) = chars.peek() {
                    if nc.is_whitespace() || *nc == '(' || *nc == ')' || *nc == '"' {
                        break;
                    }
                    atom.push(*nc);
                    chars.next();
                }
                stack
                    .last_mut()
                    .expect("non-empty")
                    .0
                    .push(Node::Atom(atom, line));
            }
        }
    }

    if stack.len() != 1 {
        return err(line, "unbalanced '('");
    }
    Ok(stack.pop().expect("root").0)
}

// ---------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------

/// Assemble WAT source text into a binary `.wasm` module.
pub fn assemble(src: &str) -> Result<Vec<u8>, WatError> {
    let roots = tokenize(src)?;
    let module_node = match roots.as_slice() {
        [Node::List(items, line)] => match items.first().and_then(Node::as_atom) {
            Some("module") => (&items[1..], *line),
            _ => return err(*line, "expected (module …)"),
        },
        _ => return err(1, "expected a single (module …) form"),
    };
    Assembler::default().run(module_node.0)
}

#[derive(Default)]
struct Assembler {
    func_names: HashMap<String, u32>,
    global_names: HashMap<String, u32>,
    n_funcs: u32,
}

struct FuncDecl<'a> {
    name: Option<String>,
    exports: Vec<String>,
    params: Vec<(Option<String>, ValType)>,
    results: Vec<ValType>,
    locals: Vec<(Option<String>, ValType)>,
    body: Vec<&'a Node>,
    line: usize,
}

impl Assembler {
    fn run(mut self, fields: &[Node]) -> Result<Vec<u8>, WatError> {
        let mut mb = ModuleBuilder::new();
        let mut funcs: Vec<FuncDecl<'_>> = Vec::new();
        let mut deferred_exports: Vec<(String, String, usize)> = Vec::new(); // (name, $func, line)
        let mut elems: Vec<(i32, Vec<Node>, usize)> = Vec::new();
        let mut start: Option<(String, usize)> = None;

        // Pass 1: declare everything, assign indices; imports must be
        // processed before defined functions per the binary format.
        for field in fields {
            let Node::List(items, line) = field else {
                return err(field.line(), "expected a (…) module field");
            };
            let head = items.first().and_then(Node::as_atom).unwrap_or("");
            if head == "import" {
                let [_, Node::Str(module, _), Node::Str(name, _), Node::List(desc, dline)] =
                    items.as_slice()
                else {
                    return err(*line, "import: expected (import \"m\" \"n\" (func …))");
                };
                let module = String::from_utf8(module.clone()).map_err(|_| WatError {
                    line: *line,
                    msg: "bad utf8".into(),
                })?;
                let name = String::from_utf8(name.clone()).map_err(|_| WatError {
                    line: *line,
                    msg: "bad utf8".into(),
                })?;
                if desc.first().and_then(Node::as_atom) != Some("func") {
                    return err(*dline, "only function imports are supported");
                }
                let mut fname = None;
                let mut params = Vec::new();
                let mut results = Vec::new();
                for part in &desc[1..] {
                    match part {
                        Node::Atom(a, _) if a.starts_with('$') => fname = Some(a.clone()),
                        Node::List(sig, sline) => {
                            parse_sig_part(sig, *sline, &mut params, &mut results)?
                        }
                        other => return err(other.line(), "bad import descriptor"),
                    }
                }
                let tys: Vec<ValType> = params.iter().map(|(_, t)| *t).collect();
                let sig = mb.func_type(&tys, &results);
                let idx = mb.import_func(&module, &name, sig).map_err(|e| WatError {
                    line: *line,
                    msg: e.to_string(),
                })?;
                if let Some(fname) = fname {
                    self.func_names.insert(fname, idx);
                }
                self.n_funcs += 1;
            }
        }

        for field in fields {
            let Node::List(items, line) = field else {
                return err(field.line(), "expected a (…) module field");
            };
            let head = items.first().and_then(Node::as_atom).unwrap_or("");
            match head {
                "import" => {} // handled above
                "func" => {
                    let decl = self.parse_func_decl(items, *line)?;
                    let idx = self.n_funcs;
                    self.n_funcs += 1;
                    if let Some(name) = &decl.name {
                        self.func_names.insert(name.clone(), idx);
                    }
                    funcs.push(decl);
                }
                "memory" => {
                    let mut rest = &items[1..];
                    // Optional inline export.
                    if let Some(Node::List(exp, eline)) = rest.first() {
                        if exp.first().and_then(Node::as_atom) == Some("export") {
                            let Some(Node::Str(name, _)) = exp.get(1) else {
                                return err(*eline, "export: expected a name string");
                            };
                            mb.export_memory(&String::from_utf8_lossy(name));
                            rest = &rest[1..];
                        }
                    }
                    let min = parse_u32_node(rest.first(), *line)?;
                    let max = match rest.get(1) {
                        Some(node) => Some(parse_u32_node(Some(node), *line)?),
                        None => None,
                    };
                    mb.memory(min, max);
                }
                "table" => {
                    let min = parse_u32_node(items.get(1), *line)?;
                    let (max, fr_idx) = match items.get(2).and_then(Node::as_atom) {
                        Some("funcref") => (None, 2),
                        _ => (Some(parse_u32_node(items.get(2), *line)?), 3),
                    };
                    if items.get(fr_idx).and_then(Node::as_atom) != Some("funcref") {
                        return err(*line, "table: expected 'funcref'");
                    }
                    mb.table(min, max);
                }
                "global" => {
                    let mut idx = 1;
                    let mut gname = None;
                    if let Some(a) = items.get(idx).and_then(Node::as_atom) {
                        if a.starts_with('$') {
                            gname = Some(a.to_string());
                            idx += 1;
                        }
                    }
                    let (ty, mutability) = match items.get(idx) {
                        Some(Node::Atom(a, _)) => (
                            parse_valtype(a).ok_or_else(|| WatError {
                                line: *line,
                                msg: format!("bad type {a}"),
                            })?,
                            Mutability::Const,
                        ),
                        Some(Node::List(l, lline)) => {
                            if l.first().and_then(Node::as_atom) != Some("mut") {
                                return err(*lline, "global: expected (mut t)");
                            }
                            let a = l.get(1).and_then(Node::as_atom).unwrap_or("");
                            (
                                parse_valtype(a).ok_or_else(|| WatError {
                                    line: *lline,
                                    msg: format!("bad type {a}"),
                                })?,
                                Mutability::Var,
                            )
                        }
                        _ => return err(*line, "global: missing type"),
                    };
                    idx += 1;
                    let Some(Node::List(init, iline)) = items.get(idx) else {
                        return err(*line, "global: missing initializer");
                    };
                    let init = parse_const_expr(init, *iline)?;
                    if init.ty() != ty {
                        return err(*iline, "global initializer type mismatch");
                    }
                    let g = mb.global(ty, mutability, init);
                    if let Some(gname) = gname {
                        self.global_names.insert(gname, g);
                    }
                }
                "export" => {
                    let [_, Node::Str(name, _), Node::List(desc, dline)] = items.as_slice() else {
                        return err(*line, "export: expected (export \"n\" (func $f))");
                    };
                    let name = String::from_utf8_lossy(name).into_owned();
                    match desc.first().and_then(Node::as_atom) {
                        Some("func") => {
                            let target = desc.get(1).and_then(Node::as_atom).unwrap_or("");
                            deferred_exports.push((name, target.to_string(), *dline));
                        }
                        Some("memory") => mb.export_memory(&name),
                        Some("global") => {
                            let target = desc.get(1).and_then(Node::as_atom).unwrap_or("");
                            let idx = self.resolve_global(target, *dline)?;
                            mb.export_global(&name, idx);
                        }
                        _ => return err(*dline, "unsupported export kind"),
                    }
                }
                "start" => {
                    let target = items.get(1).and_then(Node::as_atom).unwrap_or("");
                    start = Some((target.to_string(), *line));
                }
                "elem" => {
                    let Some(Node::List(off, oline)) = items.get(1) else {
                        return err(*line, "elem: expected offset expr");
                    };
                    let ConstExpr::I32(offset) = parse_const_expr(off, *oline)? else {
                        return err(*oline, "elem offset must be i32.const");
                    };
                    elems.push((offset, items[2..].to_vec(), *line));
                }
                "data" => {
                    let Some(Node::List(off, oline)) = items.get(1) else {
                        return err(*line, "data: expected offset expr");
                    };
                    let ConstExpr::I32(offset) = parse_const_expr(off, *oline)? else {
                        return err(*oline, "data offset must be i32.const");
                    };
                    let mut bytes = Vec::new();
                    for part in &items[2..] {
                        match part {
                            Node::Str(b, _) => bytes.extend_from_slice(b),
                            other => return err(other.line(), "data: expected string"),
                        }
                    }
                    mb.data(offset, &bytes);
                }
                other => return err(*line, format!("unknown module field '{other}'")),
            }
        }

        // Pass 2: compile function bodies.
        for decl in &funcs {
            let param_tys: Vec<ValType> = decl.params.iter().map(|(_, t)| *t).collect();
            let sig = mb.func_type(&param_tys, &decl.results);
            let idx = mb.begin_func(sig);
            // Local name table: params then locals.
            let mut local_names: HashMap<String, u32> = HashMap::new();
            for (i, (name, _)) in decl.params.iter().enumerate() {
                if let Some(n) = name {
                    local_names.insert(n.clone(), i as u32);
                }
            }
            for (name, ty) in &decl.locals {
                let li = mb.local(*ty);
                if let Some(n) = name {
                    local_names.insert(n.clone(), li);
                }
            }
            self.compile_body(&mut mb, decl, &local_names)?;
            mb.end_func().map_err(|e| WatError {
                line: decl.line,
                msg: e.to_string(),
            })?;
            for export in &decl.exports {
                mb.export_func(export, idx);
            }
        }

        // Deferred exports / start / elems (now that all names are known).
        for (name, target, line) in deferred_exports {
            let idx = self.resolve_func(&target, line)?;
            mb.export_func(&name, idx);
        }
        if let Some((target, line)) = start {
            let idx = self.resolve_func(&target, line)?;
            mb.start(idx);
        }
        for (offset, nodes, line) in elems {
            let mut func_indices = Vec::new();
            for node in &nodes {
                let target = node.as_atom().unwrap_or("");
                func_indices.push(self.resolve_func(target, line)?);
            }
            mb.elem(offset, &func_indices);
        }

        mb.finish_bytes().map_err(|e| WatError {
            line: 1,
            msg: e.to_string(),
        })
    }

    fn resolve_func(&self, target: &str, line: usize) -> Result<u32, WatError> {
        if let Some(stripped) = target.strip_prefix('$') {
            let _ = stripped;
            self.func_names
                .get(target)
                .copied()
                .ok_or_else(|| WatError {
                    line,
                    msg: format!("unknown function {target}"),
                })
        } else {
            target.parse().map_err(|_| WatError {
                line,
                msg: format!("bad function index {target}"),
            })
        }
    }

    fn resolve_global(&self, target: &str, line: usize) -> Result<u32, WatError> {
        if target.starts_with('$') {
            self.global_names
                .get(target)
                .copied()
                .ok_or_else(|| WatError {
                    line,
                    msg: format!("unknown global {target}"),
                })
        } else {
            target.parse().map_err(|_| WatError {
                line,
                msg: format!("bad global index {target}"),
            })
        }
    }

    fn parse_func_decl<'a>(
        &self,
        items: &'a [Node],
        line: usize,
    ) -> Result<FuncDecl<'a>, WatError> {
        let mut decl = FuncDecl {
            name: None,
            exports: Vec::new(),
            params: Vec::new(),
            results: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
            line,
        };
        let mut rest = &items[1..];
        if let Some(a) = rest.first().and_then(Node::as_atom) {
            if a.starts_with('$') {
                decl.name = Some(a.to_string());
                rest = &rest[1..];
            }
        }
        // Header lists: export/param/result/local, in order; the first
        // non-header node starts the body.
        let mut i = 0;
        while i < rest.len() {
            match &rest[i] {
                Node::List(l, lline) => match l.first().and_then(Node::as_atom) {
                    Some("export") => {
                        let Some(Node::Str(name, _)) = l.get(1) else {
                            return err(*lline, "export: expected name string");
                        };
                        decl.exports
                            .push(String::from_utf8_lossy(name).into_owned());
                    }
                    Some("param") => {
                        parse_named_valtypes(&l[1..], *lline, &mut decl.params)?;
                    }
                    Some("result") => {
                        for part in &l[1..] {
                            let a = part.as_atom().unwrap_or("");
                            decl.results.push(parse_valtype(a).ok_or_else(|| WatError {
                                line: *lline,
                                msg: format!("bad result type {a}"),
                            })?);
                        }
                    }
                    Some("local") => {
                        parse_named_valtypes(&l[1..], *lline, &mut decl.locals)?;
                    }
                    _ => break,
                },
                _ => break,
            }
            i += 1;
        }
        decl.body = rest[i..].iter().collect();
        Ok(decl)
    }

    fn compile_body(
        &self,
        mb: &mut ModuleBuilder,
        decl: &FuncDecl<'_>,
        local_names: &HashMap<String, u32>,
    ) -> Result<(), WatError> {
        // Label stack: innermost last.
        let mut labels: Vec<Option<String>> = Vec::new();
        let mut nodes = decl.body.iter().peekable();

        let resolve_local = |target: &str, line: usize| -> Result<u32, WatError> {
            if target.starts_with('$') {
                local_names.get(target).copied().ok_or_else(|| WatError {
                    line,
                    msg: format!("unknown local {target}"),
                })
            } else {
                target.parse().map_err(|_| WatError {
                    line,
                    msg: format!("bad local index {target}"),
                })
            }
        };

        while let Some(node) = nodes.next() {
            let Node::Atom(op, line) = node else {
                return err(node.line(), "folded expressions are not supported");
            };
            let line = *line;

            // Immediate helpers.
            macro_rules! next_atom {
                () => {{
                    match nodes.peek() {
                        Some(Node::Atom(a, _)) => {
                            let a = a.clone();
                            nodes.next();
                            Some(a)
                        }
                        _ => None,
                    }
                }};
            }

            let resolve_label = |labels: &[Option<String>], t: &str| -> Result<u32, WatError> {
                if t.starts_with('$') {
                    for (depth, l) in labels.iter().rev().enumerate() {
                        if l.as_deref() == Some(t) {
                            return Ok(depth as u32);
                        }
                    }
                    err(line, format!("unknown label {t}"))
                } else {
                    t.parse().map_err(|_| WatError {
                        line,
                        msg: format!("bad label {t}"),
                    })
                }
            };

            match op.as_str() {
                "block" | "loop" | "if" => {
                    let mut label = None;
                    if let Some(Node::Atom(a, _)) = nodes.peek() {
                        if a.starts_with('$') {
                            label = Some(a.clone());
                            nodes.next();
                        }
                    }
                    let mut bt = BlockType::Empty;
                    if let Some(Node::List(l, lline)) = nodes.peek() {
                        if l.first().and_then(Node::as_atom) == Some("result") {
                            let a = l.get(1).and_then(Node::as_atom).unwrap_or("");
                            bt = BlockType::Value(parse_valtype(a).ok_or_else(|| WatError {
                                line: *lline,
                                msg: format!("bad result type {a}"),
                            })?);
                            nodes.next();
                        }
                    }
                    labels.push(label);
                    match op.as_str() {
                        "block" => mb.code().block(bt),
                        "loop" => mb.code().loop_(bt),
                        _ => mb.code().if_(bt),
                    };
                }
                "else" => {
                    mb.code().else_();
                }
                "end" => {
                    if labels.pop().is_none() {
                        return err(line, "'end' with no open block");
                    }
                    mb.code().end();
                }
                "br" | "br_if" => {
                    let t = next_atom!().ok_or_else(|| WatError {
                        line,
                        msg: "br: missing label".into(),
                    })?;
                    let depth = resolve_label(&labels, &t)?;
                    if op == "br" {
                        mb.code().br(depth);
                    } else {
                        mb.code().br_if(depth);
                    }
                }
                "br_table" => {
                    let mut targets = Vec::new();
                    while let Some(Node::Atom(a, _)) = nodes.peek() {
                        if is_instr_name(a) {
                            break;
                        }
                        let a = a.clone();
                        nodes.next();
                        targets.push(resolve_label(&labels, &a)?);
                    }
                    let default = targets.pop().ok_or_else(|| WatError {
                        line,
                        msg: "br_table: missing targets".into(),
                    })?;
                    mb.code().br_table(&targets, default);
                }
                "call" => {
                    let t = next_atom!().ok_or_else(|| WatError {
                        line,
                        msg: "call: missing target".into(),
                    })?;
                    let idx = self.resolve_func(&t, line)?;
                    mb.code().call(idx);
                }
                "local.get" | "local.set" | "local.tee" => {
                    let t = next_atom!().ok_or_else(|| WatError {
                        line,
                        msg: format!("{op}: missing index"),
                    })?;
                    let idx = resolve_local(&t, line)?;
                    match op.as_str() {
                        "local.get" => mb.code().local_get(idx),
                        "local.set" => mb.code().local_set(idx),
                        _ => mb.code().local_tee(idx),
                    };
                }
                "global.get" | "global.set" => {
                    let t = next_atom!().ok_or_else(|| WatError {
                        line,
                        msg: format!("{op}: missing index"),
                    })?;
                    let idx = self.resolve_global(&t, line)?;
                    if op == "global.get" {
                        mb.code().global_get(idx);
                    } else {
                        mb.code().global_set(idx);
                    }
                }
                "i32.const" => {
                    let t = next_atom!().ok_or_else(|| WatError {
                        line,
                        msg: "missing constant".into(),
                    })?;
                    mb.code().i32_const(parse_i32(&t, line)?);
                }
                "i64.const" => {
                    let t = next_atom!().ok_or_else(|| WatError {
                        line,
                        msg: "missing constant".into(),
                    })?;
                    mb.code().i64_const(parse_i64(&t, line)?);
                }
                "f32.const" => {
                    let t = next_atom!().ok_or_else(|| WatError {
                        line,
                        msg: "missing constant".into(),
                    })?;
                    mb.code().f32_const(t.parse::<f32>().map_err(|_| WatError {
                        line,
                        msg: format!("bad f32 {t}"),
                    })?);
                }
                "f64.const" => {
                    let t = next_atom!().ok_or_else(|| WatError {
                        line,
                        msg: "missing constant".into(),
                    })?;
                    mb.code().f64_const(t.parse::<f64>().map_err(|_| WatError {
                        line,
                        msg: format!("bad f64 {t}"),
                    })?);
                }
                _ => {
                    // Memory instructions take optional offset=N align=N.
                    if let Some(make) = memory_instr(op) {
                        let mut memarg = MemArg::default();
                        while let Some(Node::Atom(a, _)) = nodes.peek() {
                            if let Some(v) = a.strip_prefix("offset=") {
                                memarg.offset = parse_u32(v, line)?;
                                nodes.next();
                            } else if let Some(v) = a.strip_prefix("align=") {
                                let align = parse_u32(v, line)?;
                                memarg.align = align.trailing_zeros();
                                nodes.next();
                            } else {
                                break;
                            }
                        }
                        mb.code().raw(make(memarg));
                    } else if let Some(instr) = simple_instr(op) {
                        mb.code().raw(instr);
                    } else {
                        return err(line, format!("unknown instruction '{op}'"));
                    }
                }
            }
        }

        if !labels.is_empty() {
            return err(decl.line, "unclosed block in function body");
        }
        Ok(())
    }
}

fn parse_sig_part(
    sig: &[Node],
    line: usize,
    params: &mut Vec<(Option<String>, ValType)>,
    results: &mut Vec<ValType>,
) -> Result<(), WatError> {
    match sig.first().and_then(Node::as_atom) {
        Some("param") => parse_named_valtypes(&sig[1..], line, params),
        Some("result") => {
            for part in &sig[1..] {
                let a = part.as_atom().unwrap_or("");
                results.push(parse_valtype(a).ok_or_else(|| WatError {
                    line,
                    msg: format!("bad type {a}"),
                })?);
            }
            Ok(())
        }
        _ => err(line, "expected (param …) or (result …)"),
    }
}

fn parse_named_valtypes(
    nodes: &[Node],
    line: usize,
    out: &mut Vec<(Option<String>, ValType)>,
) -> Result<(), WatError> {
    let mut pending_name: Option<String> = None;
    for node in nodes {
        let a = node.as_atom().unwrap_or("");
        if a.starts_with('$') {
            if pending_name.is_some() {
                return err(line, "two names in a row");
            }
            pending_name = Some(a.to_string());
        } else {
            let ty = parse_valtype(a).ok_or_else(|| WatError {
                line,
                msg: format!("bad type {a}"),
            })?;
            out.push((pending_name.take(), ty));
        }
    }
    if pending_name.is_some() {
        return err(line, "name without type");
    }
    Ok(())
}

fn parse_valtype(s: &str) -> Option<ValType> {
    match s {
        "i32" => Some(ValType::I32),
        "i64" => Some(ValType::I64),
        "f32" => Some(ValType::F32),
        "f64" => Some(ValType::F64),
        _ => None,
    }
}

fn parse_const_expr(nodes: &[Node], line: usize) -> Result<ConstExpr, WatError> {
    let op = nodes.first().and_then(Node::as_atom).unwrap_or("");
    let arg = nodes.get(1).and_then(Node::as_atom).unwrap_or("");
    match op {
        "i32.const" => Ok(ConstExpr::I32(parse_i32(arg, line)?)),
        "i64.const" => Ok(ConstExpr::I64(parse_i64(arg, line)?)),
        "f32.const" => Ok(ConstExpr::F32(arg.parse().map_err(|_| WatError {
            line,
            msg: format!("bad f32 {arg}"),
        })?)),
        "f64.const" => Ok(ConstExpr::F64(arg.parse().map_err(|_| WatError {
            line,
            msg: format!("bad f64 {arg}"),
        })?)),
        _ => err(line, "expected a (t.const …) expression"),
    }
}

fn parse_u32(s: &str, line: usize) -> Result<u32, WatError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        s.replace('_', "").parse()
    };
    parsed.map_err(|_| WatError {
        line,
        msg: format!("bad integer {s}"),
    })
}

fn parse_u32_node(node: Option<&Node>, line: usize) -> Result<u32, WatError> {
    let a = node.and_then(Node::as_atom).ok_or_else(|| WatError {
        line,
        msg: "expected an integer".into(),
    })?;
    parse_u32(a, line)
}

fn parse_i32(s: &str, line: usize) -> Result<i32, WatError> {
    let s2 = s.replace('_', "");
    let parsed = if let Some(hex) = s2.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).map(|v| v as i32)
    } else if let Some(hex) = s2.strip_prefix("-0x") {
        u32::from_str_radix(hex, 16).map(|v| (v as i32).wrapping_neg())
    } else {
        s2.parse()
    };
    parsed.map_err(|_| WatError {
        line,
        msg: format!("bad i32 {s}"),
    })
}

fn parse_i64(s: &str, line: usize) -> Result<i64, WatError> {
    let s2 = s.replace('_', "");
    let parsed = if let Some(hex) = s2.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else if let Some(hex) = s2.strip_prefix("-0x") {
        u64::from_str_radix(hex, 16).map(|v| (v as i64).wrapping_neg())
    } else {
        s2.parse()
    };
    parsed.map_err(|_| WatError {
        line,
        msg: format!("bad i64 {s}"),
    })
}

fn is_instr_name(s: &str) -> bool {
    !s.starts_with('$')
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
        && !s.chars().all(|c| c.is_ascii_digit())
}

fn memory_instr(op: &str) -> Option<fn(MemArg) -> Instr> {
    Some(match op {
        "i32.load" => Instr::I32Load,
        "i64.load" => Instr::I64Load,
        "f32.load" => Instr::F32Load,
        "f64.load" => Instr::F64Load,
        "i32.load8_s" => Instr::I32Load8S,
        "i32.load8_u" => Instr::I32Load8U,
        "i32.load16_s" => Instr::I32Load16S,
        "i32.load16_u" => Instr::I32Load16U,
        "i64.load8_s" => Instr::I64Load8S,
        "i64.load8_u" => Instr::I64Load8U,
        "i64.load16_s" => Instr::I64Load16S,
        "i64.load16_u" => Instr::I64Load16U,
        "i64.load32_s" => Instr::I64Load32S,
        "i64.load32_u" => Instr::I64Load32U,
        "i32.store" => Instr::I32Store,
        "i64.store" => Instr::I64Store,
        "f32.store" => Instr::F32Store,
        "f64.store" => Instr::F64Store,
        "i32.store8" => Instr::I32Store8,
        "i32.store16" => Instr::I32Store16,
        "i64.store8" => Instr::I64Store8,
        "i64.store16" => Instr::I64Store16,
        "i64.store32" => Instr::I64Store32,
        _ => return None,
    })
}

fn simple_instr(op: &str) -> Option<Instr> {
    use Instr::*;
    Some(match op {
        "unreachable" => Unreachable,
        "nop" => Nop,
        "return" => Return,
        "drop" => Drop,
        "select" => Select,
        "memory.size" => MemorySize,
        "memory.grow" => MemoryGrow,
        "memory.copy" => MemoryCopy,
        "memory.fill" => MemoryFill,
        "i32.eqz" => I32Eqz,
        "i32.eq" => I32Eq,
        "i32.ne" => I32Ne,
        "i32.lt_s" => I32LtS,
        "i32.lt_u" => I32LtU,
        "i32.gt_s" => I32GtS,
        "i32.gt_u" => I32GtU,
        "i32.le_s" => I32LeS,
        "i32.le_u" => I32LeU,
        "i32.ge_s" => I32GeS,
        "i32.ge_u" => I32GeU,
        "i64.eqz" => I64Eqz,
        "i64.eq" => I64Eq,
        "i64.ne" => I64Ne,
        "i64.lt_s" => I64LtS,
        "i64.lt_u" => I64LtU,
        "i64.gt_s" => I64GtS,
        "i64.gt_u" => I64GtU,
        "i64.le_s" => I64LeS,
        "i64.le_u" => I64LeU,
        "i64.ge_s" => I64GeS,
        "i64.ge_u" => I64GeU,
        "f32.eq" => F32Eq,
        "f32.ne" => F32Ne,
        "f32.lt" => F32Lt,
        "f32.gt" => F32Gt,
        "f32.le" => F32Le,
        "f32.ge" => F32Ge,
        "f64.eq" => F64Eq,
        "f64.ne" => F64Ne,
        "f64.lt" => F64Lt,
        "f64.gt" => F64Gt,
        "f64.le" => F64Le,
        "f64.ge" => F64Ge,
        "i32.clz" => I32Clz,
        "i32.ctz" => I32Ctz,
        "i32.popcnt" => I32Popcnt,
        "i32.add" => I32Add,
        "i32.sub" => I32Sub,
        "i32.mul" => I32Mul,
        "i32.div_s" => I32DivS,
        "i32.div_u" => I32DivU,
        "i32.rem_s" => I32RemS,
        "i32.rem_u" => I32RemU,
        "i32.and" => I32And,
        "i32.or" => I32Or,
        "i32.xor" => I32Xor,
        "i32.shl" => I32Shl,
        "i32.shr_s" => I32ShrS,
        "i32.shr_u" => I32ShrU,
        "i32.rotl" => I32Rotl,
        "i32.rotr" => I32Rotr,
        "i64.clz" => I64Clz,
        "i64.ctz" => I64Ctz,
        "i64.popcnt" => I64Popcnt,
        "i64.add" => I64Add,
        "i64.sub" => I64Sub,
        "i64.mul" => I64Mul,
        "i64.div_s" => I64DivS,
        "i64.div_u" => I64DivU,
        "i64.rem_s" => I64RemS,
        "i64.rem_u" => I64RemU,
        "i64.and" => I64And,
        "i64.or" => I64Or,
        "i64.xor" => I64Xor,
        "i64.shl" => I64Shl,
        "i64.shr_s" => I64ShrS,
        "i64.shr_u" => I64ShrU,
        "i64.rotl" => I64Rotl,
        "i64.rotr" => I64Rotr,
        "f32.abs" => F32Abs,
        "f32.neg" => F32Neg,
        "f32.ceil" => F32Ceil,
        "f32.floor" => F32Floor,
        "f32.trunc" => F32Trunc,
        "f32.nearest" => F32Nearest,
        "f32.sqrt" => F32Sqrt,
        "f32.add" => F32Add,
        "f32.sub" => F32Sub,
        "f32.mul" => F32Mul,
        "f32.div" => F32Div,
        "f32.min" => F32Min,
        "f32.max" => F32Max,
        "f32.copysign" => F32Copysign,
        "f64.abs" => F64Abs,
        "f64.neg" => F64Neg,
        "f64.ceil" => F64Ceil,
        "f64.floor" => F64Floor,
        "f64.trunc" => F64Trunc,
        "f64.nearest" => F64Nearest,
        "f64.sqrt" => F64Sqrt,
        "f64.add" => F64Add,
        "f64.sub" => F64Sub,
        "f64.mul" => F64Mul,
        "f64.div" => F64Div,
        "f64.min" => F64Min,
        "f64.max" => F64Max,
        "f64.copysign" => F64Copysign,
        "i32.wrap_i64" => I32WrapI64,
        "i32.trunc_f32_s" => I32TruncF32S,
        "i32.trunc_f32_u" => I32TruncF32U,
        "i32.trunc_f64_s" => I32TruncF64S,
        "i32.trunc_f64_u" => I32TruncF64U,
        "i64.extend_i32_s" => I64ExtendI32S,
        "i64.extend_i32_u" => I64ExtendI32U,
        "i64.trunc_f32_s" => I64TruncF32S,
        "i64.trunc_f32_u" => I64TruncF32U,
        "i64.trunc_f64_s" => I64TruncF64S,
        "i64.trunc_f64_u" => I64TruncF64U,
        "f32.convert_i32_s" => F32ConvertI32S,
        "f32.convert_i32_u" => F32ConvertI32U,
        "f32.convert_i64_s" => F32ConvertI64S,
        "f32.convert_i64_u" => F32ConvertI64U,
        "f32.demote_f64" => F32DemoteF64,
        "f64.convert_i32_s" => F64ConvertI32S,
        "f64.convert_i32_u" => F64ConvertI32U,
        "f64.convert_i64_s" => F64ConvertI64S,
        "f64.convert_i64_u" => F64ConvertI64U,
        "f64.promote_f32" => F64PromoteF32,
        "i32.reinterpret_f32" => I32ReinterpretF32,
        "i64.reinterpret_f64" => I64ReinterpretF64,
        "f32.reinterpret_i32" => F32ReinterpretI32,
        "f64.reinterpret_i64" => F64ReinterpretI64,
        "i32.extend8_s" => I32Extend8S,
        "i32.extend16_s" => I32Extend16S,
        "i64.extend8_s" => I64Extend8S,
        "i64.extend16_s" => I64Extend16S,
        "i64.extend32_s" => I64Extend32S,
        "i32.trunc_sat_f32_s" => I32TruncSatF32S,
        "i32.trunc_sat_f32_u" => I32TruncSatF32U,
        "i32.trunc_sat_f64_s" => I32TruncSatF64S,
        "i32.trunc_sat_f64_u" => I32TruncSatF64U,
        "i64.trunc_sat_f32_s" => I64TruncSatF32S,
        "i64.trunc_sat_f32_u" => I64TruncSatF32U,
        "i64.trunc_sat_f64_s" => I64TruncSatF64S,
        "i64.trunc_sat_f64_u" => I64TruncSatF64U,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_minimal_module() {
        let bytes = assemble("(module)").unwrap();
        let m = crate::decode::decode_module(&bytes).unwrap();
        assert!(m.funcs.is_empty());
    }

    #[test]
    fn assembles_add_with_names() {
        let bytes = assemble(
            r#"(module
                 (func $add (export "add") (param $a i32) (param $b i32) (result i32)
                   local.get $a
                   local.get $b
                   i32.add))"#,
        )
        .unwrap();
        let m = crate::load_module(&bytes).unwrap();
        assert!(m.exported_func("add").is_some());
    }

    #[test]
    fn labels_resolve_by_name_and_depth() {
        let bytes = assemble(
            r#"(module
                 (func (export "f") (param i32) (result i32)
                   block $out (result i32)
                     i32.const 1
                     local.get 0
                     br_if $out
                     drop
                     i32.const 2
                     br 0
                   end))"#,
        )
        .unwrap();
        crate::load_module(&bytes).unwrap();
    }

    #[test]
    fn imports_and_globals() {
        let bytes = assemble(
            r#"(module
                 (import "env" "log" (func $log (param i32)))
                 (global $count (mut i32) (i32.const 0))
                 (func (export "tick")
                   global.get $count
                   i32.const 1
                   i32.add
                   global.set $count
                   global.get $count
                   call $log))"#,
        )
        .unwrap();
        let m = crate::load_module(&bytes).unwrap();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.globals.len(), 1);
    }

    #[test]
    fn memory_data_and_offsets() {
        let bytes = assemble(
            r#"(module
                 (memory (export "memory") 1 4)
                 (data (i32.const 16) "hi\00")
                 (func (export "peek") (result i32)
                   i32.const 0
                   i32.load offset=16))"#,
        )
        .unwrap();
        let m = crate::load_module(&bytes).unwrap();
        assert_eq!(m.data[0].bytes, b"hi\0");
    }

    #[test]
    fn comments_are_skipped() {
        let bytes = assemble(
            r#"(module
                 ;; a line comment
                 (; a block
                    comment ;)
                 (func (export "f") (result i32)
                   i32.const 7))"#,
        )
        .unwrap();
        crate::load_module(&bytes).unwrap();
    }

    #[test]
    fn table_and_elem() {
        let bytes = assemble(
            r#"(module
                 (table 2 funcref)
                 (func $a (result i32) i32.const 1)
                 (func $b (result i32) i32.const 2)
                 (elem (i32.const 0) $a $b))"#,
        )
        .unwrap();
        let m = crate::load_module(&bytes).unwrap();
        assert_eq!(m.elems[0].funcs, vec![0, 1]);
    }

    #[test]
    fn error_reports_line() {
        let e = assemble("(module\n  (func (export \"f\")\n    bogus.instr))").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(assemble("(module").is_err());
        assert!(assemble("(module))").is_err());
    }

    #[test]
    fn hex_and_underscore_literals() {
        let bytes = assemble(
            r#"(module
                 (func (export "f") (result i64)
                   i64.const 0xff_ff))"#,
        )
        .unwrap();
        crate::load_module(&bytes).unwrap();
    }

    #[test]
    fn start_function() {
        let bytes = assemble(
            r#"(module
                 (global $g (mut i32) (i32.const 0))
                 (func $init global.get $g i32.const 1 i32.add global.set $g)
                 (start $init))"#,
        )
        .unwrap();
        let m = crate::load_module(&bytes).unwrap();
        assert_eq!(m.start, Some(0));
    }
}
