//! Runtime state: values, sandboxed linear memory and funcref tables.
//!
//! The execution engine itself lives in [`crate::instance`]; this module
//! holds the data structures it operates on. [`Memory`] is the security
//! boundary the paper's §5.D experiments exercise: every access is bounds
//! checked against the current size, growth is capped by both the module's
//! declared limits and the embedder's policy, and out-of-bounds access is a
//! recoverable [`Trap`], never host UB.

use crate::trap::Trap;
use crate::types::{Limits, ValType, MAX_PAGES, PAGE_SIZE};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The value's type.
    pub fn ty(self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// Zero value of the given type (locals initialize to this).
    pub fn zero(ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    /// Extract an i32; panics on type confusion (validated code cannot
    /// trigger this).
    pub fn as_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            other => panic!("expected i32, got {other:?}"),
        }
    }

    /// Extract an i64.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => panic!("expected i64, got {other:?}"),
        }
    }

    /// Extract an f32.
    pub fn as_f32(self) -> f32 {
        match self {
            Value::F32(v) => v,
            other => panic!("expected f32, got {other:?}"),
        }
    }

    /// Extract an f64.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            other => panic!("expected f64, got {other:?}"),
        }
    }

    /// Extract an i32 as u32 (wasm integers are sign-agnostic).
    pub fn as_u32(self) -> u32 {
        self.as_i32() as u32
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}_i32"),
            Value::I64(v) => write!(f, "{v}_i64"),
            Value::F32(v) => write!(f, "{v}_f32"),
            Value::F64(v) => write!(f, "{v}_f64"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I32(v as i32)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

/// Sandboxed linear memory.
///
/// Growth is bounded by `min(module max, embedder policy max, spec 4 GiB)`.
/// All accesses are bounds checked; failures surface as
/// [`Trap::MemoryOutOfBounds`].
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    /// Effective maximum size in pages.
    max_pages: u32,
    /// High-water mark of pages ever reached (for host-side accounting).
    peak_pages: u32,
    /// High-water mark of *written* bytes: every byte at index
    /// `>= dirty_max` is still zero (conservative — writes of zero bytes
    /// advance it too). Template pools use this to re-zero only the
    /// touched prefix when recycling a buffer, which is what keeps
    /// snapshot stamp-out from paying a full-memory memset per instance.
    dirty_max: usize,
}

impl Memory {
    /// Create a memory from the module's declared limits, additionally
    /// capped by the embedder's `policy_max_pages`.
    pub fn new(limits: Limits, policy_max_pages: u32) -> Result<Memory, Trap> {
        let max_pages = limits
            .max
            .unwrap_or(MAX_PAGES)
            .min(policy_max_pages)
            .min(MAX_PAGES);
        if limits.min > max_pages {
            return Err(Trap::MemoryLimitExceeded);
        }
        Ok(Memory {
            data: vec![0; limits.min as usize * PAGE_SIZE],
            max_pages,
            peak_pages: limits.min,
            dirty_max: 0,
        })
    }

    /// An absent memory (modules may declare none).
    pub fn empty() -> Memory {
        Memory {
            data: Vec::new(),
            max_pages: 0,
            peak_pages: 0,
            dirty_max: 0,
        }
    }

    /// High-water mark of written bytes: everything at and past this
    /// index is guaranteed zero.
    pub fn dirty_max(&self) -> usize {
        self.dirty_max
    }

    #[inline]
    fn mark_dirty(&mut self, end: usize) {
        if end > self.dirty_max {
            self.dirty_max = end;
        }
    }

    /// Surrender the backing buffer (for template-pool recycling); the
    /// memory is left empty.
    pub(crate) fn take_data(&mut self) -> Vec<u8> {
        self.dirty_max = 0;
        std::mem::take(&mut self.data)
    }

    /// Rebuild a memory around a pristine all-zero `data` buffer, copying
    /// the first `init_len` bytes from `image` (the template's captured
    /// post-segment-init state). Limits and accounting come from `image`;
    /// the buffer must already match its size.
    pub(crate) fn from_recycled(data: Vec<u8>, image: &Memory, init_len: usize) -> Memory {
        debug_assert_eq!(data.len(), image.data.len());
        let mut mem = Memory {
            data,
            max_pages: image.max_pages,
            peak_pages: image.peak_pages,
            dirty_max: 0,
        };
        mem.data[..init_len].copy_from_slice(&image.data[..init_len]);
        mem.mark_dirty(init_len);
        mem
    }

    /// Current size in pages.
    pub fn size_pages(&self) -> u32 {
        (self.data.len() / PAGE_SIZE) as u32
    }

    /// Current size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// High-water mark in pages.
    pub fn peak_pages(&self) -> u32 {
        self.peak_pages
    }

    /// Effective maximum size in pages.
    pub fn max_pages(&self) -> u32 {
        self.max_pages
    }

    /// Grow by `delta` pages. Returns the previous size in pages, or `None`
    /// when the growth would exceed the effective maximum (the instruction
    /// then pushes -1, per spec — growth failure is *not* a trap).
    pub fn grow(&mut self, delta: u32) -> Option<u32> {
        let old = self.size_pages();
        let new = old.checked_add(delta)?;
        if new > self.max_pages {
            return None;
        }
        self.data.resize(new as usize * PAGE_SIZE, 0);
        self.peak_pages = self.peak_pages.max(new);
        Some(old)
    }

    #[inline]
    fn check(&self, addr: u32, offset: u32, len: u32) -> Result<usize, Trap> {
        // addr + offset can exceed u32; compute in u64.
        let start = addr as u64 + offset as u64;
        let end = start + len as u64;
        if end > self.data.len() as u64 {
            return Err(Trap::MemoryOutOfBounds {
                addr: start,
                len: len as u64,
                size: self.data.len() as u64,
            });
        }
        Ok(start as usize)
    }

    /// Read `N` bytes at `addr + offset`.
    #[inline]
    pub fn read<const N: usize>(&self, addr: u32, offset: u32) -> Result<[u8; N], Trap> {
        let start = self.check(addr, offset, N as u32)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[start..start + N]);
        Ok(out)
    }

    /// Write `N` bytes at `addr + offset`.
    #[inline]
    pub fn write<const N: usize>(
        &mut self,
        addr: u32,
        offset: u32,
        bytes: [u8; N],
    ) -> Result<(), Trap> {
        let start = self.check(addr, offset, N as u32)?;
        self.data[start..start + N].copy_from_slice(&bytes);
        self.mark_dirty(start + N);
        Ok(())
    }

    /// Read an arbitrary byte range (host-side ABI transfers).
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], Trap> {
        let start = self.check(addr, 0, len)?;
        Ok(&self.data[start..start + len as usize])
    }

    /// Write an arbitrary byte range (host-side ABI transfers).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Trap> {
        let len = u32::try_from(bytes.len()).map_err(|_| Trap::MemoryOutOfBounds {
            addr: addr as u64,
            len: bytes.len() as u64,
            size: self.data.len() as u64,
        })?;
        let start = self.check(addr, 0, len)?;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        self.mark_dirty(start + bytes.len());
        Ok(())
    }

    /// `memory.fill`: set `len` bytes at `dst` to `byte`.
    pub fn fill(&mut self, dst: u32, byte: u8, len: u32) -> Result<(), Trap> {
        let start = self.check(dst, 0, len)?;
        self.data[start..start + len as usize].fill(byte);
        self.mark_dirty(start + len as usize);
        Ok(())
    }

    /// `memory.copy`: overlapping-safe copy of `len` bytes from `src` to `dst`.
    pub fn copy(&mut self, dst: u32, src: u32, len: u32) -> Result<(), Trap> {
        let s = self.check(src, 0, len)?;
        let d = self.check(dst, 0, len)?;
        self.data.copy_within(s..s + len as usize, d);
        self.mark_dirty(d + len as usize);
        Ok(())
    }

    /// Reset all memory contents to zero without changing the size.
    /// Used by the plugin host when recycling an instance.
    pub fn zero_all(&mut self) {
        // Only the written prefix can be nonzero.
        let dirty = self.dirty_max.min(self.data.len());
        self.data[..dirty].fill(0);
        self.dirty_max = 0;
    }
}

/// A funcref table: each slot is `None` (uninitialized) or a function index.
#[derive(Debug, Clone, Default)]
pub struct Table {
    elems: Vec<Option<u32>>,
}

impl Table {
    /// Create a table with `min` null slots.
    pub fn new(limits: Limits) -> Table {
        Table {
            elems: vec![None; limits.min as usize],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Install a function index at `idx` (instantiation-time element
    /// segments; grows never happen in the MVP).
    pub fn set(&mut self, idx: u32, func: u32) -> Result<(), Trap> {
        let slot = self
            .elems
            .get_mut(idx as usize)
            .ok_or(Trap::TableOutOfBounds)?;
        *slot = Some(func);
        Ok(())
    }

    /// Read the function index at `idx`.
    pub fn get(&self, idx: u32) -> Result<u32, Trap> {
        self.elems
            .get(idx as usize)
            .ok_or(Trap::TableOutOfBounds)?
            .ok_or(Trap::UninitializedElement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5i32).ty(), ValType::I32);
        assert_eq!(Value::from(5u32), Value::I32(5));
        assert_eq!(Value::from(u32::MAX), Value::I32(-1));
        assert_eq!(Value::zero(ValType::F64), Value::F64(0.0));
        assert_eq!(Value::I64(9).as_i64(), 9);
    }

    #[test]
    fn memory_bounds_checked() {
        let mut mem = Memory::new(Limits::new(1, Some(2)), u32::MAX).unwrap();
        assert_eq!(mem.size_pages(), 1);
        mem.write::<4>(0, 0, [1, 2, 3, 4]).unwrap();
        assert_eq!(mem.read::<4>(0, 0).unwrap(), [1, 2, 3, 4]);
        // Last valid 4-byte slot.
        mem.write::<4>(PAGE_SIZE as u32 - 4, 0, [9; 4]).unwrap();
        // One past the end.
        let err = mem.write::<4>(PAGE_SIZE as u32 - 3, 0, [9; 4]).unwrap_err();
        assert!(matches!(err, Trap::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn memory_offset_overflow_is_oob_not_wrap() {
        let mem = Memory::new(Limits::new(1, None), u32::MAX).unwrap();
        // addr + offset overflows u32; must be OOB, not wrap to 3.
        let err = mem.read::<4>(u32::MAX, 4).unwrap_err();
        assert!(matches!(err, Trap::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn memory_grow_respects_module_max() {
        let mut mem = Memory::new(Limits::new(1, Some(2)), u32::MAX).unwrap();
        assert_eq!(mem.grow(1), Some(1));
        assert_eq!(mem.grow(1), None);
        assert_eq!(mem.size_pages(), 2);
    }

    #[test]
    fn memory_grow_respects_policy_cap() {
        // Module allows 100 pages but the host policy caps at 3.
        let mut mem = Memory::new(Limits::new(1, Some(100)), 3).unwrap();
        assert_eq!(mem.grow(2), Some(1));
        assert_eq!(mem.grow(1), None);
        assert_eq!(mem.peak_pages(), 3);
    }

    #[test]
    fn memory_min_over_policy_rejected() {
        assert_eq!(
            Memory::new(Limits::new(10, None), 5).unwrap_err(),
            Trap::MemoryLimitExceeded
        );
    }

    #[test]
    fn memory_fill_and_copy() {
        let mut mem = Memory::new(Limits::new(1, None), u32::MAX).unwrap();
        mem.fill(10, 0xab, 4).unwrap();
        assert_eq!(mem.read::<4>(10, 0).unwrap(), [0xab; 4]);
        mem.copy(100, 10, 4).unwrap();
        assert_eq!(mem.read::<4>(100, 0).unwrap(), [0xab; 4]);
        // Overlapping copy.
        mem.copy(11, 10, 4).unwrap();
        assert_eq!(mem.read::<4>(11, 0).unwrap(), [0xab; 4]);
        // OOB fill.
        assert!(mem.fill(PAGE_SIZE as u32 - 1, 0, 2).is_err());
    }

    #[test]
    fn zero_length_access_at_boundary_ok() {
        let mem = Memory::new(Limits::new(1, None), u32::MAX).unwrap();
        assert!(mem.read_bytes(PAGE_SIZE as u32, 0).is_ok());
        assert!(mem.read_bytes(PAGE_SIZE as u32 + 1, 0).is_err());
    }

    #[test]
    fn table_semantics() {
        let mut t = Table::new(Limits::new(2, None));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), Err(Trap::UninitializedElement));
        t.set(0, 7).unwrap();
        assert_eq!(t.get(0), Ok(7));
        assert_eq!(t.get(5), Err(Trap::TableOutOfBounds));
        assert_eq!(t.set(5, 1), Err(Trap::TableOutOfBounds));
    }
}
