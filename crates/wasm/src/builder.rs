//! Programmatic module construction.
//!
//! [`ModuleBuilder`] is how WA-RAN synthesizes plugins in-process: the PlugC
//! compiler and the standard plugin library both target it, and its output
//! is a standard `.wasm` binary (via [`crate::encode`]) that any conformant
//! runtime can load.
//!
//! ```
//! use waran_wasm::builder::ModuleBuilder;
//! use waran_wasm::types::ValType::I32;
//!
//! let mut mb = ModuleBuilder::new();
//! let sig = mb.func_type(&[I32, I32], &[I32]);
//! let f = mb.begin_func(sig);
//! mb.code().local_get(0).local_get(1).i32_add();
//! mb.end_func().unwrap();
//! mb.export_func("add", f);
//! let module = mb.finish().unwrap();
//! assert!(waran_wasm::validate::validate(&module).is_ok());
//! ```

use crate::instr::{fixup_block_targets, FixupError, Instr, MemArg};
use crate::module::*;
use crate::types::{BlockType, FuncType, GlobalType, Limits, Mutability, ValType};

/// Builder error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `end_func` called with no function in progress, or `finish` with one
    /// still open.
    FunctionState,
    /// Structured control instructions do not nest properly.
    Fixup(FixupError),
    /// Imports must be declared before any function is defined (the binary
    /// format numbers imported functions first).
    ImportAfterFunc,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::FunctionState => write!(f, "mismatched begin_func/end_func"),
            BuildError::Fixup(e) => write!(f, "bad block structure: {e}"),
            BuildError::ImportAfterFunc => {
                write!(f, "imports must be declared before defining functions")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally builds a [`Module`].
#[derive(Default)]
pub struct ModuleBuilder {
    module: Module,
    current: Option<FuncInProgress>,
}

struct FuncInProgress {
    type_idx: u32,
    locals: Vec<ValType>,
    code: CodeEmitter,
}

impl ModuleBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a function type, returning its type index (deduplicated).
    pub fn func_type(&mut self, params: &[ValType], results: &[ValType]) -> u32 {
        let ft = FuncType::new(params, results);
        if let Some(pos) = self.module.types.iter().position(|t| *t == ft) {
            return pos as u32;
        }
        self.module.types.push(ft);
        (self.module.types.len() - 1) as u32
    }

    /// Import a host function. Returns its function index. Must precede all
    /// `begin_func` calls.
    pub fn import_func(
        &mut self,
        module: &str,
        name: &str,
        type_idx: u32,
    ) -> Result<u32, BuildError> {
        if !self.module.funcs.is_empty() || self.current.is_some() {
            return Err(BuildError::ImportAfterFunc);
        }
        self.module.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            kind: ImportKind::Func { type_idx },
        });
        Ok(self.module.num_imported_funcs() - 1)
    }

    /// Begin a new function of the given type. Returns its (module-wide)
    /// function index. Emit code via [`Self::code`], then call
    /// [`Self::end_func`].
    pub fn begin_func(&mut self, type_idx: u32) -> u32 {
        let idx = self.module.num_imported_funcs() + self.module.funcs.len() as u32;
        self.current = Some(FuncInProgress {
            type_idx,
            locals: Vec::new(),
            code: CodeEmitter::default(),
        });
        idx
    }

    /// Declare a local in the current function; returns its local index
    /// (parameters occupy the first indices).
    ///
    /// # Panics
    /// Panics if no function is in progress — that is a programming error in
    /// the embedder, not a data-dependent condition.
    pub fn local(&mut self, ty: ValType) -> u32 {
        let cur = self
            .current
            .as_mut()
            .expect("local() outside begin_func/end_func");
        let n_params = self.module.types[cur.type_idx as usize].params.len() as u32;
        cur.locals.push(ty);
        n_params + cur.locals.len() as u32 - 1
    }

    /// The instruction emitter for the current function.
    ///
    /// # Panics
    /// Panics if no function is in progress.
    pub fn code(&mut self) -> &mut CodeEmitter {
        &mut self
            .current
            .as_mut()
            .expect("code() outside begin_func/end_func")
            .code
    }

    /// Finish the current function: appends the function-level `End`,
    /// resolves block targets and adds the body to the module.
    pub fn end_func(&mut self) -> Result<(), BuildError> {
        let mut cur = self.current.take().ok_or(BuildError::FunctionState)?;
        cur.code.instrs.push(Instr::End);
        fixup_block_targets(&mut cur.code.instrs).map_err(BuildError::Fixup)?;
        self.module
            .funcs
            .push(FuncBody::new(cur.type_idx, cur.locals, cur.code.instrs));
        Ok(())
    }

    /// Declare the (single) linear memory.
    pub fn memory(&mut self, min_pages: u32, max_pages: Option<u32>) {
        self.module.memory = Some(Limits::new(min_pages, max_pages));
    }

    /// Declare the (single) funcref table.
    pub fn table(&mut self, min: u32, max: Option<u32>) {
        self.module.table = Some(Limits::new(min, max));
    }

    /// Define a global; returns its index.
    pub fn global(&mut self, ty: ValType, mutability: Mutability, init: ConstExpr) -> u32 {
        self.module.globals.push(Global {
            ty: GlobalType { ty, mutability },
            init,
        });
        (self.module.globals.len() - 1) as u32
    }

    /// Export a function under `name`.
    pub fn export_func(&mut self, name: &str, func_idx: u32) {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Func(func_idx),
        });
    }

    /// Export the memory under `name`.
    pub fn export_memory(&mut self, name: &str) {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Memory,
        });
    }

    /// Export a global under `name`.
    pub fn export_global(&mut self, name: &str, global_idx: u32) {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Global(global_idx),
        });
    }

    /// Set the start function.
    pub fn start(&mut self, func_idx: u32) {
        self.module.start = Some(func_idx);
    }

    /// Add an active data segment.
    pub fn data(&mut self, offset: i32, bytes: &[u8]) {
        self.module.data.push(DataSegment {
            offset: ConstExpr::I32(offset),
            bytes: bytes.to_vec(),
        });
    }

    /// Add an active element segment.
    pub fn elem(&mut self, offset: i32, funcs: &[u32]) {
        self.module.elems.push(ElemSegment {
            offset: ConstExpr::I32(offset),
            funcs: funcs.to_vec(),
        });
    }

    /// Produce the finished [`Module`].
    pub fn finish(self) -> Result<Module, BuildError> {
        if self.current.is_some() {
            return Err(BuildError::FunctionState);
        }
        Ok(self.module)
    }

    /// Produce the finished module as encoded `.wasm` bytes.
    pub fn finish_bytes(self) -> Result<Vec<u8>, BuildError> {
        Ok(crate::encode::encode_module(&self.finish()?))
    }
}

/// Emits instructions for one function body. Every method returns `&mut
/// Self` so call chains read like assembly listings.
#[derive(Default)]
pub struct CodeEmitter {
    instrs: Vec<Instr>,
}

macro_rules! emit_simple {
    ($( $(#[$doc:meta])* $name:ident => $variant:ident ),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self) -> &mut Self {
                self.instrs.push(Instr::$variant);
                self
            }
        )+
    };
}

macro_rules! emit_mem {
    ($( $name:ident => $variant:ident ),+ $(,)?) => {
        $(
            /// Memory access with the given constant offset.
            pub fn $name(&mut self, offset: u32) -> &mut Self {
                self.instrs.push(Instr::$variant(MemArg::offset(offset)));
                self
            }
        )+
    };
}

impl CodeEmitter {
    /// Push a raw instruction.
    pub fn raw(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Begin a block.
    pub fn block(&mut self, ty: BlockType) -> &mut Self {
        self.instrs.push(Instr::Block {
            ty,
            end_pc: u32::MAX,
        });
        self
    }

    /// Begin a loop.
    pub fn loop_(&mut self, ty: BlockType) -> &mut Self {
        self.instrs.push(Instr::Loop { ty });
        self
    }

    /// Begin an if.
    pub fn if_(&mut self, ty: BlockType) -> &mut Self {
        self.instrs.push(Instr::If {
            ty,
            else_pc: u32::MAX,
            end_pc: u32::MAX,
        });
        self
    }

    /// Else arm.
    pub fn else_(&mut self) -> &mut Self {
        self.instrs.push(Instr::Else { end_pc: u32::MAX });
        self
    }

    /// Close the innermost block/loop/if.
    pub fn end(&mut self) -> &mut Self {
        self.instrs.push(Instr::End);
        self
    }

    /// Branch to the label `depth` levels up.
    pub fn br(&mut self, depth: u32) -> &mut Self {
        self.instrs.push(Instr::Br { depth });
        self
    }

    /// Conditional branch.
    pub fn br_if(&mut self, depth: u32) -> &mut Self {
        self.instrs.push(Instr::BrIf { depth });
        self
    }

    /// Indexed branch.
    pub fn br_table(&mut self, targets: &[u32], default: u32) -> &mut Self {
        self.instrs.push(Instr::BrTable {
            targets: targets.to_vec().into_boxed_slice(),
            default,
        });
        self
    }

    /// Call a function by index.
    pub fn call(&mut self, func: u32) -> &mut Self {
        self.instrs.push(Instr::Call { func });
        self
    }

    /// Indirect call with the given expected type.
    pub fn call_indirect(&mut self, type_idx: u32) -> &mut Self {
        self.instrs.push(Instr::CallIndirect { type_idx });
        self
    }

    /// Push a local.
    pub fn local_get(&mut self, idx: u32) -> &mut Self {
        self.instrs.push(Instr::LocalGet(idx));
        self
    }

    /// Pop into a local.
    pub fn local_set(&mut self, idx: u32) -> &mut Self {
        self.instrs.push(Instr::LocalSet(idx));
        self
    }

    /// Copy top of stack into a local.
    pub fn local_tee(&mut self, idx: u32) -> &mut Self {
        self.instrs.push(Instr::LocalTee(idx));
        self
    }

    /// Push a global.
    pub fn global_get(&mut self, idx: u32) -> &mut Self {
        self.instrs.push(Instr::GlobalGet(idx));
        self
    }

    /// Pop into a global.
    pub fn global_set(&mut self, idx: u32) -> &mut Self {
        self.instrs.push(Instr::GlobalSet(idx));
        self
    }

    /// Push an i32 constant.
    pub fn i32_const(&mut self, v: i32) -> &mut Self {
        self.instrs.push(Instr::I32Const(v));
        self
    }

    /// Push an i64 constant.
    pub fn i64_const(&mut self, v: i64) -> &mut Self {
        self.instrs.push(Instr::I64Const(v));
        self
    }

    /// Push an f32 constant.
    pub fn f32_const(&mut self, v: f32) -> &mut Self {
        self.instrs.push(Instr::F32Const(v));
        self
    }

    /// Push an f64 constant.
    pub fn f64_const(&mut self, v: f64) -> &mut Self {
        self.instrs.push(Instr::F64Const(v));
        self
    }

    emit_simple! {
        /// Trap unconditionally.
        unreachable => Unreachable,
        /// No-op.
        nop => Nop,
        /// Return from the function.
        return_ => Return,
        /// Drop the top operand.
        drop => Drop,
        /// Select by the top i32 condition.
        select => Select,
        /// Memory size in pages.
        memory_size => MemorySize,
        /// Grow memory.
        memory_grow => MemoryGrow,
        /// Copy within memory.
        memory_copy => MemoryCopy,
        /// Fill memory.
        memory_fill => MemoryFill,
        i32_eqz => I32Eqz, i32_eq => I32Eq, i32_ne => I32Ne,
        i32_lt_s => I32LtS, i32_lt_u => I32LtU, i32_gt_s => I32GtS, i32_gt_u => I32GtU,
        i32_le_s => I32LeS, i32_le_u => I32LeU, i32_ge_s => I32GeS, i32_ge_u => I32GeU,
        i64_eqz => I64Eqz, i64_eq => I64Eq, i64_ne => I64Ne,
        i64_lt_s => I64LtS, i64_lt_u => I64LtU, i64_gt_s => I64GtS, i64_gt_u => I64GtU,
        i64_le_s => I64LeS, i64_le_u => I64LeU, i64_ge_s => I64GeS, i64_ge_u => I64GeU,
        f32_eq => F32Eq, f32_ne => F32Ne, f32_lt => F32Lt, f32_gt => F32Gt,
        f32_le => F32Le, f32_ge => F32Ge,
        f64_eq => F64Eq, f64_ne => F64Ne, f64_lt => F64Lt, f64_gt => F64Gt,
        f64_le => F64Le, f64_ge => F64Ge,
        i32_clz => I32Clz, i32_ctz => I32Ctz, i32_popcnt => I32Popcnt,
        i32_add => I32Add, i32_sub => I32Sub, i32_mul => I32Mul,
        i32_div_s => I32DivS, i32_div_u => I32DivU, i32_rem_s => I32RemS, i32_rem_u => I32RemU,
        i32_and => I32And, i32_or => I32Or, i32_xor => I32Xor,
        i32_shl => I32Shl, i32_shr_s => I32ShrS, i32_shr_u => I32ShrU,
        i32_rotl => I32Rotl, i32_rotr => I32Rotr,
        i64_clz => I64Clz, i64_ctz => I64Ctz, i64_popcnt => I64Popcnt,
        i64_add => I64Add, i64_sub => I64Sub, i64_mul => I64Mul,
        i64_div_s => I64DivS, i64_div_u => I64DivU, i64_rem_s => I64RemS, i64_rem_u => I64RemU,
        i64_and => I64And, i64_or => I64Or, i64_xor => I64Xor,
        i64_shl => I64Shl, i64_shr_s => I64ShrS, i64_shr_u => I64ShrU,
        i64_rotl => I64Rotl, i64_rotr => I64Rotr,
        f32_abs => F32Abs, f32_neg => F32Neg, f32_ceil => F32Ceil, f32_floor => F32Floor,
        f32_trunc => F32Trunc, f32_nearest => F32Nearest, f32_sqrt => F32Sqrt,
        f32_add => F32Add, f32_sub => F32Sub, f32_mul => F32Mul, f32_div => F32Div,
        f32_min => F32Min, f32_max => F32Max, f32_copysign => F32Copysign,
        f64_abs => F64Abs, f64_neg => F64Neg, f64_ceil => F64Ceil, f64_floor => F64Floor,
        f64_trunc => F64Trunc, f64_nearest => F64Nearest, f64_sqrt => F64Sqrt,
        f64_add => F64Add, f64_sub => F64Sub, f64_mul => F64Mul, f64_div => F64Div,
        f64_min => F64Min, f64_max => F64Max, f64_copysign => F64Copysign,
        i32_wrap_i64 => I32WrapI64,
        i32_trunc_f32_s => I32TruncF32S, i32_trunc_f32_u => I32TruncF32U,
        i32_trunc_f64_s => I32TruncF64S, i32_trunc_f64_u => I32TruncF64U,
        i64_extend_i32_s => I64ExtendI32S, i64_extend_i32_u => I64ExtendI32U,
        i64_trunc_f32_s => I64TruncF32S, i64_trunc_f32_u => I64TruncF32U,
        i64_trunc_f64_s => I64TruncF64S, i64_trunc_f64_u => I64TruncF64U,
        f32_convert_i32_s => F32ConvertI32S, f32_convert_i32_u => F32ConvertI32U,
        f32_convert_i64_s => F32ConvertI64S, f32_convert_i64_u => F32ConvertI64U,
        f32_demote_f64 => F32DemoteF64,
        f64_convert_i32_s => F64ConvertI32S, f64_convert_i32_u => F64ConvertI32U,
        f64_convert_i64_s => F64ConvertI64S, f64_convert_i64_u => F64ConvertI64U,
        f64_promote_f32 => F64PromoteF32,
        i32_reinterpret_f32 => I32ReinterpretF32, i64_reinterpret_f64 => I64ReinterpretF64,
        f32_reinterpret_i32 => F32ReinterpretI32, f64_reinterpret_i64 => F64ReinterpretI64,
        i32_extend8_s => I32Extend8S, i32_extend16_s => I32Extend16S,
        i64_extend8_s => I64Extend8S, i64_extend16_s => I64Extend16S,
        i64_extend32_s => I64Extend32S,
        i32_trunc_sat_f32_s => I32TruncSatF32S, i32_trunc_sat_f32_u => I32TruncSatF32U,
        i32_trunc_sat_f64_s => I32TruncSatF64S, i32_trunc_sat_f64_u => I32TruncSatF64U,
        i64_trunc_sat_f32_s => I64TruncSatF32S, i64_trunc_sat_f32_u => I64TruncSatF32U,
        i64_trunc_sat_f64_s => I64TruncSatF64S, i64_trunc_sat_f64_u => I64TruncSatF64U,
    }

    emit_mem! {
        i32_load => I32Load, i64_load => I64Load, f32_load => F32Load, f64_load => F64Load,
        i32_load8_s => I32Load8S, i32_load8_u => I32Load8U,
        i32_load16_s => I32Load16S, i32_load16_u => I32Load16U,
        i64_load8_s => I64Load8S, i64_load8_u => I64Load8U,
        i64_load16_s => I64Load16S, i64_load16_u => I64Load16U,
        i64_load32_s => I64Load32S, i64_load32_u => I64Load32U,
        i32_store => I32Store, i64_store => I64Store, f32_store => F32Store, f64_store => F64Store,
        i32_store8 => I32Store8, i32_store16 => I32Store16,
        i64_store8 => I64Store8, i64_store16 => I64Store16, i64_store32 => I64Store32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValType::{F64, I32};

    #[test]
    fn build_add_function() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[I32, I32], &[I32]);
        let f = mb.begin_func(sig);
        mb.code().local_get(0).local_get(1).i32_add();
        mb.end_func().unwrap();
        mb.export_func("add", f);
        let module = mb.finish().unwrap();
        assert_eq!(module.funcs.len(), 1);
        assert_eq!(module.exported_func("add"), Some(0));
        crate::validate::validate(&module).unwrap();
    }

    #[test]
    fn type_dedup() {
        let mut mb = ModuleBuilder::new();
        let a = mb.func_type(&[I32], &[F64]);
        let b = mb.func_type(&[I32], &[F64]);
        let c = mb.func_type(&[F64], &[I32]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn import_before_func_enforced() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[], &[]);
        mb.begin_func(sig);
        mb.end_func().unwrap();
        assert_eq!(
            mb.import_func("env", "f", sig),
            Err(BuildError::ImportAfterFunc)
        );
    }

    #[test]
    fn import_indices_precede_local_funcs() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[], &[]);
        let imp = mb.import_func("env", "f", sig).unwrap();
        let loc = mb.begin_func(sig);
        mb.end_func().unwrap();
        assert_eq!(imp, 0);
        assert_eq!(loc, 1);
    }

    #[test]
    fn locals_start_after_params() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[I32, I32], &[]);
        mb.begin_func(sig);
        let l0 = mb.local(F64);
        let l1 = mb.local(I32);
        assert_eq!(l0, 2);
        assert_eq!(l1, 3);
        mb.code().local_get(l0).drop().local_get(l1).drop();
        mb.end_func().unwrap();
        mb.finish().unwrap();
    }

    #[test]
    fn unbalanced_blocks_rejected() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[], &[]);
        mb.begin_func(sig);
        mb.code().block(BlockType::Empty); // never closed
        assert!(matches!(mb.end_func(), Err(BuildError::Fixup(_))));
    }

    #[test]
    fn finish_with_open_func_rejected() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[], &[]);
        mb.begin_func(sig);
        assert_eq!(mb.finish().err(), Some(BuildError::FunctionState));
    }

    #[test]
    fn builder_roundtrips_through_binary() {
        let mut mb = ModuleBuilder::new();
        mb.memory(1, Some(4));
        let sig = mb.func_type(&[I32], &[I32]);
        let f = mb.begin_func(sig);
        mb.code()
            .local_get(0)
            .i32_const(10)
            .i32_lt_s()
            .if_(BlockType::Value(I32))
            .i32_const(1)
            .else_()
            .i32_const(0)
            .end();
        mb.end_func().unwrap();
        mb.export_func("lt10", f);
        let bytes = mb.finish_bytes().unwrap();
        let module = crate::decode::decode_module(&bytes).unwrap();
        crate::validate::validate(&module).unwrap();
    }
}
