//! WebAssembly binary-format encoder: the exact inverse of [`crate::decode`].
//!
//! WA-RAN generates plugins in-process (via [`crate::builder`] or the PlugC
//! compiler) and ships them as standard `.wasm` binaries, so the encoder is
//! a first-class part of the toolchain, not a test helper. Round-tripping
//! (`encode(decode(x)) == canonical(x)`) is covered by property tests.

use crate::instr::Instr;
use crate::leb128::{write_signed, write_unsigned};
use crate::module::*;
use crate::types::{BlockType, FuncType, Limits, Mutability, ValType};

/// Encode a module to its binary representation.
pub fn encode_module(module: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(b"\0asm");
    out.extend_from_slice(&1u32.to_le_bytes());

    // Section 1: types
    if !module.types.is_empty() {
        section(&mut out, 1, |buf| {
            write_unsigned(buf, module.types.len() as u64);
            for ty in &module.types {
                encode_functype(buf, ty);
            }
        });
    }
    // Section 2: imports
    if !module.imports.is_empty() {
        section(&mut out, 2, |buf| {
            write_unsigned(buf, module.imports.len() as u64);
            for imp in &module.imports {
                encode_name(buf, &imp.module);
                encode_name(buf, &imp.name);
                match imp.kind {
                    ImportKind::Func { type_idx } => {
                        buf.push(0x00);
                        write_unsigned(buf, type_idx as u64);
                    }
                }
            }
        });
    }
    // Section 3: function type indices
    if !module.funcs.is_empty() {
        section(&mut out, 3, |buf| {
            write_unsigned(buf, module.funcs.len() as u64);
            for f in &module.funcs {
                write_unsigned(buf, f.type_idx as u64);
            }
        });
    }
    // Section 4: table
    if let Some(limits) = module.table {
        section(&mut out, 4, |buf| {
            write_unsigned(buf, 1);
            buf.push(0x70); // funcref
            encode_limits(buf, limits);
        });
    }
    // Section 5: memory
    if let Some(limits) = module.memory {
        section(&mut out, 5, |buf| {
            write_unsigned(buf, 1);
            encode_limits(buf, limits);
        });
    }
    // Section 6: globals
    if !module.globals.is_empty() {
        section(&mut out, 6, |buf| {
            write_unsigned(buf, module.globals.len() as u64);
            for g in &module.globals {
                buf.push(g.ty.ty.to_byte());
                buf.push(match g.ty.mutability {
                    Mutability::Const => 0x00,
                    Mutability::Var => 0x01,
                });
                encode_const_expr(buf, g.init);
            }
        });
    }
    // Section 7: exports
    if !module.exports.is_empty() {
        section(&mut out, 7, |buf| {
            write_unsigned(buf, module.exports.len() as u64);
            for e in &module.exports {
                encode_name(buf, &e.name);
                match e.kind {
                    ExportKind::Func(idx) => {
                        buf.push(0x00);
                        write_unsigned(buf, idx as u64);
                    }
                    ExportKind::Table => {
                        buf.push(0x01);
                        write_unsigned(buf, 0);
                    }
                    ExportKind::Memory => {
                        buf.push(0x02);
                        write_unsigned(buf, 0);
                    }
                    ExportKind::Global(idx) => {
                        buf.push(0x03);
                        write_unsigned(buf, idx as u64);
                    }
                }
            }
        });
    }
    // Section 8: start
    if let Some(start) = module.start {
        section(&mut out, 8, |buf| {
            write_unsigned(buf, start as u64);
        });
    }
    // Section 9: element segments
    if !module.elems.is_empty() {
        section(&mut out, 9, |buf| {
            write_unsigned(buf, module.elems.len() as u64);
            for seg in &module.elems {
                write_unsigned(buf, 0); // flags: active, table 0
                encode_const_expr(buf, seg.offset);
                write_unsigned(buf, seg.funcs.len() as u64);
                for &f in &seg.funcs {
                    write_unsigned(buf, f as u64);
                }
            }
        });
    }
    // Section 10: code
    if !module.funcs.is_empty() {
        section(&mut out, 10, |buf| {
            write_unsigned(buf, module.funcs.len() as u64);
            for f in &module.funcs {
                let mut body = Vec::new();
                encode_locals(&mut body, &f.locals);
                for instr in &f.code {
                    encode_instr(&mut body, instr);
                }
                write_unsigned(buf, body.len() as u64);
                buf.extend_from_slice(&body);
            }
        });
    }
    // Section 11: data segments
    if !module.data.is_empty() {
        section(&mut out, 11, |buf| {
            write_unsigned(buf, module.data.len() as u64);
            for seg in &module.data {
                write_unsigned(buf, 0); // flags: active, memory 0
                encode_const_expr(buf, seg.offset);
                write_unsigned(buf, seg.bytes.len() as u64);
                buf.extend_from_slice(&seg.bytes);
            }
        });
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, body: impl FnOnce(&mut Vec<u8>)) {
    let mut buf = Vec::new();
    body(&mut buf);
    out.push(id);
    write_unsigned(out, buf.len() as u64);
    out.extend_from_slice(&buf);
}

fn encode_name(out: &mut Vec<u8>, name: &str) {
    write_unsigned(out, name.len() as u64);
    out.extend_from_slice(name.as_bytes());
}

fn encode_functype(out: &mut Vec<u8>, ty: &FuncType) {
    out.push(0x60);
    write_unsigned(out, ty.params.len() as u64);
    for p in &ty.params {
        out.push(p.to_byte());
    }
    write_unsigned(out, ty.results.len() as u64);
    for r in &ty.results {
        out.push(r.to_byte());
    }
}

fn encode_limits(out: &mut Vec<u8>, limits: Limits) {
    match limits.max {
        None => {
            out.push(0x00);
            write_unsigned(out, limits.min as u64);
        }
        Some(max) => {
            out.push(0x01);
            write_unsigned(out, limits.min as u64);
            write_unsigned(out, max as u64);
        }
    }
}

fn encode_const_expr(out: &mut Vec<u8>, expr: ConstExpr) {
    match expr {
        ConstExpr::I32(v) => {
            out.push(0x41);
            write_signed(out, v as i64);
        }
        ConstExpr::I64(v) => {
            out.push(0x42);
            write_signed(out, v);
        }
        ConstExpr::F32(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ConstExpr::F64(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out.push(0x0b);
}

fn encode_locals(out: &mut Vec<u8>, locals: &[ValType]) {
    // Run-length encode consecutive equal types.
    let mut groups: Vec<(u32, ValType)> = Vec::new();
    for &ty in locals {
        match groups.last_mut() {
            Some((n, t)) if *t == ty => *n += 1,
            _ => groups.push((1, ty)),
        }
    }
    write_unsigned(out, groups.len() as u64);
    for (n, ty) in groups {
        write_unsigned(out, n as u64);
        out.push(ty.to_byte());
    }
}

fn encode_blocktype(out: &mut Vec<u8>, ty: BlockType) {
    match ty {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.to_byte()),
    }
}

fn encode_memarg(out: &mut Vec<u8>, m: crate::instr::MemArg) {
    write_unsigned(out, m.align as u64);
    write_unsigned(out, m.offset as u64);
}

/// Encode one instruction (used by the code section writer).
pub fn encode_instr(out: &mut Vec<u8>, instr: &Instr) {
    use Instr::*;
    match instr {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block { ty, .. } => {
            out.push(0x02);
            encode_blocktype(out, *ty);
        }
        Loop { ty } => {
            out.push(0x03);
            encode_blocktype(out, *ty);
        }
        If { ty, .. } => {
            out.push(0x04);
            encode_blocktype(out, *ty);
        }
        Else { .. } => out.push(0x05),
        End => out.push(0x0b),
        Br { depth } => {
            out.push(0x0c);
            write_unsigned(out, *depth as u64);
        }
        BrIf { depth } => {
            out.push(0x0d);
            write_unsigned(out, *depth as u64);
        }
        BrTable { targets, default } => {
            out.push(0x0e);
            write_unsigned(out, targets.len() as u64);
            for t in targets.iter() {
                write_unsigned(out, *t as u64);
            }
            write_unsigned(out, *default as u64);
        }
        Return => out.push(0x0f),
        Call { func } => {
            out.push(0x10);
            write_unsigned(out, *func as u64);
        }
        CallIndirect { type_idx } => {
            out.push(0x11);
            write_unsigned(out, *type_idx as u64);
            out.push(0x00);
        }
        Drop => out.push(0x1a),
        Select => out.push(0x1b),
        LocalGet(i) => {
            out.push(0x20);
            write_unsigned(out, *i as u64);
        }
        LocalSet(i) => {
            out.push(0x21);
            write_unsigned(out, *i as u64);
        }
        LocalTee(i) => {
            out.push(0x22);
            write_unsigned(out, *i as u64);
        }
        GlobalGet(i) => {
            out.push(0x23);
            write_unsigned(out, *i as u64);
        }
        GlobalSet(i) => {
            out.push(0x24);
            write_unsigned(out, *i as u64);
        }
        I32Load(m) => {
            out.push(0x28);
            encode_memarg(out, *m);
        }
        I64Load(m) => {
            out.push(0x29);
            encode_memarg(out, *m);
        }
        F32Load(m) => {
            out.push(0x2a);
            encode_memarg(out, *m);
        }
        F64Load(m) => {
            out.push(0x2b);
            encode_memarg(out, *m);
        }
        I32Load8S(m) => {
            out.push(0x2c);
            encode_memarg(out, *m);
        }
        I32Load8U(m) => {
            out.push(0x2d);
            encode_memarg(out, *m);
        }
        I32Load16S(m) => {
            out.push(0x2e);
            encode_memarg(out, *m);
        }
        I32Load16U(m) => {
            out.push(0x2f);
            encode_memarg(out, *m);
        }
        I64Load8S(m) => {
            out.push(0x30);
            encode_memarg(out, *m);
        }
        I64Load8U(m) => {
            out.push(0x31);
            encode_memarg(out, *m);
        }
        I64Load16S(m) => {
            out.push(0x32);
            encode_memarg(out, *m);
        }
        I64Load16U(m) => {
            out.push(0x33);
            encode_memarg(out, *m);
        }
        I64Load32S(m) => {
            out.push(0x34);
            encode_memarg(out, *m);
        }
        I64Load32U(m) => {
            out.push(0x35);
            encode_memarg(out, *m);
        }
        I32Store(m) => {
            out.push(0x36);
            encode_memarg(out, *m);
        }
        I64Store(m) => {
            out.push(0x37);
            encode_memarg(out, *m);
        }
        F32Store(m) => {
            out.push(0x38);
            encode_memarg(out, *m);
        }
        F64Store(m) => {
            out.push(0x39);
            encode_memarg(out, *m);
        }
        I32Store8(m) => {
            out.push(0x3a);
            encode_memarg(out, *m);
        }
        I32Store16(m) => {
            out.push(0x3b);
            encode_memarg(out, *m);
        }
        I64Store8(m) => {
            out.push(0x3c);
            encode_memarg(out, *m);
        }
        I64Store16(m) => {
            out.push(0x3d);
            encode_memarg(out, *m);
        }
        I64Store32(m) => {
            out.push(0x3e);
            encode_memarg(out, *m);
        }
        MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        MemoryCopy => {
            out.push(0xfc);
            write_unsigned(out, 10);
            out.push(0x00);
            out.push(0x00);
        }
        MemoryFill => {
            out.push(0xfc);
            write_unsigned(out, 11);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            write_signed(out, *v as i64);
        }
        I64Const(v) => {
            out.push(0x42);
            write_signed(out, *v);
        }
        F32Const(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        F64Const(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        I32Eqz => out.push(0x45),
        I32Eq => out.push(0x46),
        I32Ne => out.push(0x47),
        I32LtS => out.push(0x48),
        I32LtU => out.push(0x49),
        I32GtS => out.push(0x4a),
        I32GtU => out.push(0x4b),
        I32LeS => out.push(0x4c),
        I32LeU => out.push(0x4d),
        I32GeS => out.push(0x4e),
        I32GeU => out.push(0x4f),
        I64Eqz => out.push(0x50),
        I64Eq => out.push(0x51),
        I64Ne => out.push(0x52),
        I64LtS => out.push(0x53),
        I64LtU => out.push(0x54),
        I64GtS => out.push(0x55),
        I64GtU => out.push(0x56),
        I64LeS => out.push(0x57),
        I64LeU => out.push(0x58),
        I64GeS => out.push(0x59),
        I64GeU => out.push(0x5a),
        F32Eq => out.push(0x5b),
        F32Ne => out.push(0x5c),
        F32Lt => out.push(0x5d),
        F32Gt => out.push(0x5e),
        F32Le => out.push(0x5f),
        F32Ge => out.push(0x60),
        F64Eq => out.push(0x61),
        F64Ne => out.push(0x62),
        F64Lt => out.push(0x63),
        F64Gt => out.push(0x64),
        F64Le => out.push(0x65),
        F64Ge => out.push(0x66),
        I32Clz => out.push(0x67),
        I32Ctz => out.push(0x68),
        I32Popcnt => out.push(0x69),
        I32Add => out.push(0x6a),
        I32Sub => out.push(0x6b),
        I32Mul => out.push(0x6c),
        I32DivS => out.push(0x6d),
        I32DivU => out.push(0x6e),
        I32RemS => out.push(0x6f),
        I32RemU => out.push(0x70),
        I32And => out.push(0x71),
        I32Or => out.push(0x72),
        I32Xor => out.push(0x73),
        I32Shl => out.push(0x74),
        I32ShrS => out.push(0x75),
        I32ShrU => out.push(0x76),
        I32Rotl => out.push(0x77),
        I32Rotr => out.push(0x78),
        I64Clz => out.push(0x79),
        I64Ctz => out.push(0x7a),
        I64Popcnt => out.push(0x7b),
        I64Add => out.push(0x7c),
        I64Sub => out.push(0x7d),
        I64Mul => out.push(0x7e),
        I64DivS => out.push(0x7f),
        I64DivU => out.push(0x80),
        I64RemS => out.push(0x81),
        I64RemU => out.push(0x82),
        I64And => out.push(0x83),
        I64Or => out.push(0x84),
        I64Xor => out.push(0x85),
        I64Shl => out.push(0x86),
        I64ShrS => out.push(0x87),
        I64ShrU => out.push(0x88),
        I64Rotl => out.push(0x89),
        I64Rotr => out.push(0x8a),
        F32Abs => out.push(0x8b),
        F32Neg => out.push(0x8c),
        F32Ceil => out.push(0x8d),
        F32Floor => out.push(0x8e),
        F32Trunc => out.push(0x8f),
        F32Nearest => out.push(0x90),
        F32Sqrt => out.push(0x91),
        F32Add => out.push(0x92),
        F32Sub => out.push(0x93),
        F32Mul => out.push(0x94),
        F32Div => out.push(0x95),
        F32Min => out.push(0x96),
        F32Max => out.push(0x97),
        F32Copysign => out.push(0x98),
        F64Abs => out.push(0x99),
        F64Neg => out.push(0x9a),
        F64Ceil => out.push(0x9b),
        F64Floor => out.push(0x9c),
        F64Trunc => out.push(0x9d),
        F64Nearest => out.push(0x9e),
        F64Sqrt => out.push(0x9f),
        F64Add => out.push(0xa0),
        F64Sub => out.push(0xa1),
        F64Mul => out.push(0xa2),
        F64Div => out.push(0xa3),
        F64Min => out.push(0xa4),
        F64Max => out.push(0xa5),
        F64Copysign => out.push(0xa6),
        I32WrapI64 => out.push(0xa7),
        I32TruncF32S => out.push(0xa8),
        I32TruncF32U => out.push(0xa9),
        I32TruncF64S => out.push(0xaa),
        I32TruncF64U => out.push(0xab),
        I64ExtendI32S => out.push(0xac),
        I64ExtendI32U => out.push(0xad),
        I64TruncF32S => out.push(0xae),
        I64TruncF32U => out.push(0xaf),
        I64TruncF64S => out.push(0xb0),
        I64TruncF64U => out.push(0xb1),
        F32ConvertI32S => out.push(0xb2),
        F32ConvertI32U => out.push(0xb3),
        F32ConvertI64S => out.push(0xb4),
        F32ConvertI64U => out.push(0xb5),
        F32DemoteF64 => out.push(0xb6),
        F64ConvertI32S => out.push(0xb7),
        F64ConvertI32U => out.push(0xb8),
        F64ConvertI64S => out.push(0xb9),
        F64ConvertI64U => out.push(0xba),
        F64PromoteF32 => out.push(0xbb),
        I32ReinterpretF32 => out.push(0xbc),
        I64ReinterpretF64 => out.push(0xbd),
        F32ReinterpretI32 => out.push(0xbe),
        F64ReinterpretI64 => out.push(0xbf),
        I32Extend8S => out.push(0xc0),
        I32Extend16S => out.push(0xc1),
        I64Extend8S => out.push(0xc2),
        I64Extend16S => out.push(0xc3),
        I64Extend32S => out.push(0xc4),
        I32TruncSatF32S => {
            out.push(0xfc);
            write_unsigned(out, 0);
        }
        I32TruncSatF32U => {
            out.push(0xfc);
            write_unsigned(out, 1);
        }
        I32TruncSatF64S => {
            out.push(0xfc);
            write_unsigned(out, 2);
        }
        I32TruncSatF64U => {
            out.push(0xfc);
            write_unsigned(out, 3);
        }
        I64TruncSatF32S => {
            out.push(0xfc);
            write_unsigned(out, 4);
        }
        I64TruncSatF32U => {
            out.push(0xfc);
            write_unsigned(out, 5);
        }
        I64TruncSatF64S => {
            out.push(0xfc);
            write_unsigned(out, 6);
        }
        I64TruncSatF64U => {
            out.push(0xfc);
            write_unsigned(out, 7);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_module;
    use crate::instr::MemArg;
    use crate::types::GlobalType;

    #[test]
    fn roundtrip_minimal() {
        let mut m = Module::default();
        m.types.push(FuncType::new(&[], &[ValType::I32]));
        m.funcs.push(FuncBody::new(
            0,
            vec![],
            vec![Instr::I32Const(42), Instr::End],
        ));
        m.exports.push(Export {
            name: "f".into(),
            kind: ExportKind::Func(0),
        });
        let bytes = encode_module(&m);
        let back = decode_module(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_rich_module() {
        let mut m = Module::default();
        m.types.push(FuncType::new(
            &[ValType::I32, ValType::F64],
            &[ValType::I64],
        ));
        m.types.push(FuncType::new(&[], &[]));
        m.imports.push(Import {
            module: "env".into(),
            name: "host_fn".into(),
            kind: ImportKind::Func { type_idx: 1 },
        });
        m.memory = Some(Limits::new(1, Some(16)));
        m.table = Some(Limits::new(2, None));
        m.globals.push(Global {
            ty: GlobalType {
                ty: ValType::F64,
                mutability: Mutability::Var,
            },
            init: ConstExpr::F64(3.25),
        });
        m.funcs.push(FuncBody::new(
            0,
            vec![ValType::I32, ValType::I32, ValType::F64],
            vec![
                Instr::Block {
                    ty: BlockType::Value(ValType::I64),
                    end_pc: 3,
                },
                Instr::I64Const(-5),
                Instr::Br { depth: 0 },
                Instr::End,
                Instr::LocalGet(0),
                Instr::I64ExtendI32S,
                Instr::I64Add,
                Instr::I32Const(0),
                Instr::I64Load(MemArg {
                    align: 3,
                    offset: 8,
                }),
                Instr::I64Add,
                Instr::End,
            ],
        ));
        m.exports.push(Export {
            name: "go".into(),
            kind: ExportKind::Func(1),
        });
        m.exports.push(Export {
            name: "mem".into(),
            kind: ExportKind::Memory,
        });
        m.elems.push(ElemSegment {
            offset: ConstExpr::I32(0),
            funcs: vec![1, 1],
        });
        m.data.push(DataSegment {
            offset: ConstExpr::I32(8),
            bytes: vec![1, 2, 3, 4],
        });
        m.start = None;

        let bytes = encode_module(&m);
        let back = decode_module(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn locals_run_length_encoding() {
        let mut out = Vec::new();
        encode_locals(
            &mut out,
            &[ValType::I32, ValType::I32, ValType::F64, ValType::I32],
        );
        // 3 groups: 2×i32, 1×f64, 1×i32
        assert_eq!(out[0], 3);
        assert_eq!(out[1], 2);
        assert_eq!(out[2], ValType::I32.to_byte());
    }
}
