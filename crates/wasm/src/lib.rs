//! # waran-wasm — a from-scratch WebAssembly virtual machine
//!
//! This crate is the sandbox substrate of WA-RAN. It implements the
//! WebAssembly MVP (plus sign-extension, saturating float→int truncation and
//! the `memory.copy`/`memory.fill` subset of bulk-memory) end to end:
//!
//! * [`decode`] — binary-format (`.wasm`) decoder,
//! * [`encode`] / [`builder`] — binary-format encoder and an ergonomic
//!   [`builder::ModuleBuilder`] for constructing modules programmatically,
//! * [`validate`] — the full stack-polymorphic type checker,
//! * [`interp`] — the interpreter: value stack, call frames, sandboxed
//!   linear [`Memory`](interp::Memory) with hard bounds checks, tables,
//!   globals, traps, fuel metering and wall-clock deadlines,
//! * [`instance`] — instantiation, host-function linking and typed calls,
//! * [`regalloc`] — the register-form execution tier (`ExecMode::Reg`):
//!   lowers the flat IR into three-address code over a per-frame virtual
//!   register file, eliminating value-stack traffic from the hot loop,
//! * [`wat`] — a WAT-subset text assembler for tests and examples,
//! * [`disasm`] — the inverse: render any decoded module as WAT-style
//!   text (the operator's pre-deployment inspection tool, §3.A).
//!
//! Design goals follow the paper's requirements for RAN plugin hosting:
//! deterministic execution (fuel), tight worst-case latency (deadlines,
//! bounded call depth, bounded memory growth) and fault containment (every
//! guest misbehaviour surfaces as a catchable [`Trap`], never as host UB).
//!
//! Not implemented (out of scope, documented in DESIGN.md): SIMD, threads,
//! reference types beyond `funcref` tables, multi-value block types,
//! multiple memories and exception handling.
//!
//! ## Example
//!
//! ```
//! use waran_wasm::{wat, instance::{Instance, Linker}, interp::Value};
//!
//! let bytes = wat::assemble(r#"
//!   (module
//!     (func (export "add") (param i32 i32) (result i32)
//!       local.get 0
//!       local.get 1
//!       i32.add))
//! "#).unwrap();
//! let module = waran_wasm::decode::decode_module(&bytes).unwrap();
//! waran_wasm::validate::validate(&module).unwrap();
//! let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();
//! let out = inst.invoke("add", &[Value::I32(2), Value::I32(40)]).unwrap();
//! assert_eq!(out, Some(Value::I32(42)));
//! ```

pub mod analysis;
pub mod builder;
pub mod compile;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod instance;
pub mod instr;
pub mod interp;
pub mod leb128;
pub mod module;
pub mod regalloc;
pub mod trap;
pub mod types;
pub mod validate;
pub mod wat;

pub use instance::{Instance, InstancePre, Linker};
pub use interp::Value;
pub use module::Module;
pub use trap::Trap;
pub use types::ValType;

/// Decode, validate and wrap a binary module in one step.
///
/// This is the front door used by the plugin host: any malformed or
/// ill-typed module is rejected before it can be instantiated.
pub fn load_module(bytes: &[u8]) -> Result<Module, LoadError> {
    let module = decode::decode_module(bytes).map_err(LoadError::Decode)?;
    validate::validate(&module).map_err(LoadError::Validate)?;
    Ok(module)
}

/// Errors surfaced by [`load_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The byte stream is not a well-formed Wasm binary.
    Decode(decode::DecodeError),
    /// The module is well-formed but ill-typed.
    Validate(validate::ValidateError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Decode(e) => write!(f, "decode error: {e}"),
            LoadError::Validate(e) => write!(f, "validation error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}
