//! Load-time static analysis over the compiled IRs: translation
//! validation between the flat and register execution tiers, plus
//! worst-case resource bounds for admission control.
//!
//! The pass runs after validation and lowering (see [`crate::compile`]
//! and [`crate::regalloc`]) and produces one [`FuncReport`] per
//! module-local function:
//!
//! * **Translation validation** — the flat IR is the metering/trapping
//!   reference; the register form is an optimized lowering of it. This
//!   pass reconstructs the flat CFG, replays the lowering's constant/
//!   reachability discipline, and checks the register form block by
//!   block against it: identical `Meter` placement, costs and entry
//!   heights, identical memory/call/trap-op populations per block, and
//!   a consistent branch side table. Any future lowering bug is
//!   rejected *before it executes* instead of surfacing as a sampled
//!   differential-test failure.
//! * **Static resource bounds** — an abstract interpretation over the
//!   flat CFG computes per-function worst-case fuel (exact for
//!   loop-free and constant-trip-count code, [`Bound::Unbounded`]
//!   otherwise), worst-case value-stack height, call-frame depth,
//!   register-arena footprint, and the highest statically addressable
//!   memory byte. Bounds propagate through the call graph; recursion
//!   (direct or mutual) and indirect calls degrade to `Unbounded`.
//!
//! The host's `SandboxPolicy` consumes the report as an admission gate:
//! a real-time deployment class can require a finite fuel bound or
//! reject any plugin with a data-dependent loop at install time, which
//! is the enforcement half of the governance-tiers roadmap item.
//!
//! Analyzer cost: one linear pass per function for the CFG/mirror walk
//! plus near-linear SCC work, amortized once per module behind
//! [`AnalysisCell`] — the same caching discipline as compilation
//! itself.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use crate::compile::{CompiledFunc, I32Op, Op};
use crate::interp::Value;
use crate::module::{ExportKind, Module};
use crate::regalloc::{BinOp, I64Op, LoadKind, ROp, RegFunc, StoreKind, UnOp};

/// A worst-case resource bound: exactly known, or not statically
/// boundable. `Finite(a) < Finite(b) < Unbounded` under `Ord`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bound {
    /// The resource never exceeds this many units.
    Finite(u64),
    /// No static bound exists (data-dependent loop, recursion, or an
    /// indirect call).
    Unbounded,
}

impl Bound {
    /// Saturating addition; anything plus `Unbounded` is `Unbounded`.
    // Lattice operation, not arithmetic: `Unbounded` is absorbing, so an
    // `ops::Add` impl would misleadingly suggest ring semantics.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Unbounded,
        }
    }

    /// Saturating multiplication. `Finite(0)` absorbs even `Unbounded`
    /// (a loop body that never runs costs nothing).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(0), _) | (_, Bound::Finite(0)) => Bound::Finite(0),
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_mul(b)),
            _ => Bound::Unbounded,
        }
    }

    /// The larger of the two bounds.
    pub fn max(self, other: Bound) -> Bound {
        std::cmp::max(self, other)
    }

    /// The finite value, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(n),
            Bound::Unbounded => None,
        }
    }
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Static worst-case resource report for one module-local function,
/// covering a call rooted at it (callees included).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncReport {
    /// Module-local function index (into `Module::funcs`).
    pub func: u32,
    /// First export name carrying this function, when exported.
    pub export: Option<String>,
    /// Worst-case fuel (source instructions) a call can retire.
    pub fuel: Bound,
    /// Worst-case value-stack height a call can reach, as enforced by
    /// the `Meter` checks (identical across the flat and register
    /// tiers; see the reg executor's `vbase + entry + peak` note).
    pub stack: Bound,
    /// Worst-case call-frame depth (the function's own frame included).
    pub frames: Bound,
    /// Worst-case register-arena footprint of the register tier.
    pub regs: Bound,
    /// One past the highest memory byte touched through a statically
    /// known address (0 when no such access exists).
    pub mem_high: u64,
    /// True when some reachable memory access has a data-dependent
    /// address (including `memory.copy`/`memory.fill`).
    pub dynamic_mem: bool,
    /// True when some reachable loop has no statically bounded trip
    /// count.
    pub unbounded_loops: bool,
    /// True when the function partakes in (direct or mutual) recursion.
    pub recursive: bool,
}

/// Whole-module analysis: per-function reports plus the proof that the
/// register lowering of every function matches the flat IR.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleAnalysis {
    /// One report per module-local function, index-aligned with
    /// `Module::funcs`.
    pub funcs: Vec<FuncReport>,
}

impl ModuleAnalysis {
    /// The report for a module-local function index.
    pub fn func(&self, local_idx: u32) -> &FuncReport {
        &self.funcs[local_idx as usize]
    }

    /// Reports for exported functions only.
    pub fn exports(&self) -> impl Iterator<Item = &FuncReport> {
        self.funcs.iter().filter(|r| r.export.is_some())
    }
}

/// Load-time analysis failure. Translation mismatches mean the register
/// lowering is *not* a faithful image of the flat IR — the module must
/// not run under `ExecMode::Reg`, so instantiation refuses it outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The register form of `func` diverges from the flat IR at flat
    /// op `pc`.
    TranslationMismatch {
        /// Module-local function index.
        func: u32,
        /// Flat-IR op index the divergence anchors to.
        pc: u32,
        /// Human-readable description of the divergence.
        what: String,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::TranslationMismatch { func, pc, what } => {
                write!(
                    f,
                    "translation validation failed: func {func} flat pc {pc}: {what}"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Module-level analysis cache slot, mirroring `CompiledCell`: interior
/// `OnceLock` so `Module` keeps its derived `Clone`/`PartialEq`/`Debug`
/// while the (pure-function-of-the-module) analysis is computed once.
pub struct AnalysisCell(OnceLock<Result<ModuleAnalysis, AnalysisError>>);

impl AnalysisCell {
    /// Empty (not-yet-analyzed) cell.
    pub const fn new() -> Self {
        AnalysisCell(OnceLock::new())
    }

    /// The cached analysis, computing it on first use.
    pub fn get_or_analyze(&self, module: &Module) -> Result<&ModuleAnalysis, AnalysisError> {
        self.0
            .get_or_init(|| analyze(module))
            .as_ref()
            .map_err(Clone::clone)
    }
}

impl Default for AnalysisCell {
    fn default() -> Self {
        AnalysisCell::new()
    }
}

impl Clone for AnalysisCell {
    fn clone(&self) -> Self {
        let cell = AnalysisCell::new();
        if let Some(r) = self.0.get() {
            let _ = cell.0.set(r.clone());
        }
        cell
    }
}

impl PartialEq for AnalysisCell {
    /// The analysis is a pure function of the module; the cache never
    /// affects module equality.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for AnalysisCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCell")
            .field("analyzed", &self.0.get().is_some())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Flat-CFG reconstruction + lowering mirror
// ---------------------------------------------------------------------------

/// A call site inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Call {
    /// Direct call to a module-local function.
    Wasm(u32),
    /// Imported host function.
    Host(u32),
    /// Indirect call through the table, by type index.
    Indirect(u32),
}

/// One reconstructed flat basic block: the ops between two `Meter`
/// leaders, with the control events the lowering mirror resolved.
#[derive(Debug)]
struct Block {
    /// Leading `Meter` pc.
    start: usize,
    /// One past the last op (the next leader).
    end: usize,
    /// `Meter` cost (source instructions).
    cost: u32,
    /// `Meter` peak (stored value-stack headroom, what the runtime
    /// enforces).
    peak: u32,
    /// Operand-stack height at block entry.
    entry_h: u32,
    /// Reachable under the lowering's constant-folding discipline.
    live: bool,
    /// Branch side-table indices this block's live ops may take.
    edges: Vec<u32>,
    /// Control can fall through into the next leader.
    falls: bool,
    /// Live call sites in op order, with the operand-stack height just
    /// before the call.
    calls: Vec<(Call, u32)>,
}

/// Everything one linear pass over a flat function recovers: blocks,
/// per-pc liveness/heights (exactly the lowering's `reachable` flag and
/// abstract stack), and the function's own memory/stack facts.
struct Shape {
    blocks: Vec<Block>,
    /// Per flat pc: reachable under the lowering's discipline.
    live: Vec<bool>,
    /// Per flat pc: block index, `u32::MAX` when the pc leads no block.
    pc2block: Vec<u32>,
    /// The shared function-level `Return` trampoline pc, when present.
    exit_pc: Option<usize>,
    /// Max `entry_h + peak` over live blocks (the value-stack quantity
    /// both executors check against `max_value_stack`).
    own_stack: u32,
    /// One past the highest statically addressed memory byte.
    mem_high: u64,
    /// Some reachable access has a data-dependent address.
    dynamic_mem: bool,
    /// Per-block successor lists (`usize::MAX` = function exit).
    succs: Vec<Vec<usize>>,
}

fn mismatch(func: u32, pc: usize, what: impl Into<String>) -> AnalysisError {
    AnalysisError::TranslationMismatch {
        func,
        pc: pc as u32,
        what: what.into(),
    }
}

/// Operand-stack effect (pops, pushes) of a flat op, matching the
/// lowering's abstract stack exactly. The match is intentionally
/// exhaustive — a new `Op` variant fails to compile here instead of
/// silently skipping the analyzer.
fn stack_effect(module: &Module, op: Op) -> (u32, u32) {
    match op {
        Op::Meter { .. }
        | Op::Br(_)
        | Op::BrIfLL { .. }
        | Op::Return
        | Op::Unreachable
        | Op::LocalSetC { .. }
        | Op::LocalCopy { .. }
        | Op::I32BinLLSet { .. }
        | Op::I32BinLCSet { .. }
        | Op::I32LoadLSet { .. } => (0, 0),
        Op::BrIf(_)
        | Op::BrIfZ(_)
        | Op::BrTable { .. }
        | Op::Drop
        | Op::LocalSet(_)
        | Op::GlobalSet(_)
        | Op::I32BinSLSet { .. }
        | Op::I32BinSCSet { .. }
        | Op::I32LoadSet { .. } => (1, 0),
        Op::BrIfCmp { .. } => (2, 0),
        Op::CallWasm(f) => {
            // Look the signature up by type, not via `compiled_func`, so the
            // analysis walk never triggers a compile cascade.
            let ft = module
                .func_type(module.num_imported_funcs() + f)
                .expect("validated call target");
            (ft.params.len() as u32, ft.results.len() as u32)
        }
        Op::CallHost { argc, ret, .. } => (argc as u32, (ret != 0) as u32),
        Op::CallIndirect(ty) => {
            let ft = &module.types[ty as usize];
            (ft.params.len() as u32 + 1, ft.results.len() as u32)
        }
        Op::Select => (3, 1),
        Op::LocalGet(_)
        | Op::GlobalGet(_)
        | Op::I32BinLL { .. }
        | Op::I32BinLC { .. }
        | Op::I32LoadL { .. }
        | Op::I64LoadL { .. }
        | Op::F64LoadL { .. }
        | Op::I32Load8UL { .. }
        | Op::MemorySize
        | Op::I32Const(_)
        | Op::I64Const(_)
        | Op::F32Const(_)
        | Op::F64Const(_) => (0, 1),
        Op::LocalGet2 { .. } => (0, 2),
        Op::LocalTee(_) | Op::I32BinSL { .. } | Op::I32BinSC { .. } | Op::MemoryGrow => (1, 1),
        Op::I32Bin(_) => (2, 1),
        Op::I32Load(_)
        | Op::I64Load(_)
        | Op::F32Load(_)
        | Op::F64Load(_)
        | Op::I32Load8S(_)
        | Op::I32Load8U(_)
        | Op::I32Load16S(_)
        | Op::I32Load16U(_)
        | Op::I64Load8S(_)
        | Op::I64Load8U(_)
        | Op::I64Load16S(_)
        | Op::I64Load16U(_)
        | Op::I64Load32S(_)
        | Op::I64Load32U(_) => (1, 1),
        Op::I32Store(_)
        | Op::I64Store(_)
        | Op::F32Store(_)
        | Op::F64Store(_)
        | Op::I32Store8(_)
        | Op::I32Store16(_)
        | Op::I64Store8(_)
        | Op::I64Store16(_)
        | Op::I64Store32(_) => (2, 0),
        Op::MemoryCopy | Op::MemoryFill => (3, 0),
        // Unary family (unops, conversions, truncations): pop 1 push 1.
        Op::I32Eqz
        | Op::I32Clz
        | Op::I32Ctz
        | Op::I32Popcnt
        | Op::I64Eqz
        | Op::I64Clz
        | Op::I64Ctz
        | Op::I64Popcnt
        | Op::F32Abs
        | Op::F32Neg
        | Op::F32Ceil
        | Op::F32Floor
        | Op::F32Trunc
        | Op::F32Nearest
        | Op::F32Sqrt
        | Op::F64Abs
        | Op::F64Neg
        | Op::F64Ceil
        | Op::F64Floor
        | Op::F64Trunc
        | Op::F64Nearest
        | Op::F64Sqrt
        | Op::I32WrapI64
        | Op::I32TruncF32S
        | Op::I32TruncF32U
        | Op::I32TruncF64S
        | Op::I32TruncF64U
        | Op::I64ExtendI32S
        | Op::I64ExtendI32U
        | Op::I64TruncF32S
        | Op::I64TruncF32U
        | Op::I64TruncF64S
        | Op::I64TruncF64U
        | Op::F32ConvertI32S
        | Op::F32ConvertI32U
        | Op::F32ConvertI64S
        | Op::F32ConvertI64U
        | Op::F32DemoteF64
        | Op::F64ConvertI32S
        | Op::F64ConvertI32U
        | Op::F64ConvertI64S
        | Op::F64ConvertI64U
        | Op::F64PromoteF32
        | Op::I32ReinterpretF32
        | Op::I64ReinterpretF64
        | Op::F32ReinterpretI32
        | Op::F64ReinterpretI64
        | Op::I32Extend8S
        | Op::I32Extend16S
        | Op::I64Extend8S
        | Op::I64Extend16S
        | Op::I64Extend32S
        | Op::I32TruncSatF32S
        | Op::I32TruncSatF32U
        | Op::I32TruncSatF64S
        | Op::I32TruncSatF64U
        | Op::I64TruncSatF32S
        | Op::I64TruncSatF32U
        | Op::I64TruncSatF64S
        | Op::I64TruncSatF64U => (1, 1),
        // Binary families: i64 arithmetic/compares, trapping div/rem and
        // float binops/compares.
        Op::I64Eq
        | Op::I64Ne
        | Op::I64LtS
        | Op::I64LtU
        | Op::I64GtS
        | Op::I64GtU
        | Op::I64LeS
        | Op::I64LeU
        | Op::I64GeS
        | Op::I64GeU
        | Op::I64Add
        | Op::I64Sub
        | Op::I64Mul
        | Op::I64And
        | Op::I64Or
        | Op::I64Xor
        | Op::I64Shl
        | Op::I64ShrS
        | Op::I64ShrU
        | Op::I64Rotl
        | Op::I64Rotr
        | Op::I32DivS
        | Op::I32DivU
        | Op::I32RemS
        | Op::I32RemU
        | Op::I64DivS
        | Op::I64DivU
        | Op::I64RemS
        | Op::I64RemU
        | Op::F32Eq
        | Op::F32Ne
        | Op::F32Lt
        | Op::F32Gt
        | Op::F32Le
        | Op::F32Ge
        | Op::F64Eq
        | Op::F64Ne
        | Op::F64Lt
        | Op::F64Gt
        | Op::F64Le
        | Op::F64Ge
        | Op::F32Add
        | Op::F32Sub
        | Op::F32Mul
        | Op::F32Div
        | Op::F32Min
        | Op::F32Max
        | Op::F32Copysign
        | Op::F64Add
        | Op::F64Sub
        | Op::F64Mul
        | Op::F64Div
        | Op::F64Min
        | Op::F64Max
        | Op::F64Copysign => (2, 1),
    }
}

fn load_width(kind: LoadKind) -> u64 {
    match kind {
        LoadKind::I32S8 | LoadKind::I32U8 | LoadKind::I64S8 | LoadKind::I64U8 => 1,
        LoadKind::I32S16 | LoadKind::I32U16 | LoadKind::I64S16 | LoadKind::I64U16 => 2,
        LoadKind::I32 | LoadKind::F32 | LoadKind::I64S32 | LoadKind::I64U32 => 4,
        LoadKind::I64 | LoadKind::F64 => 8,
    }
}

fn store_width(kind: StoreKind) -> u64 {
    match kind {
        StoreKind::I32Lo8 | StoreKind::I64Lo8 => 1,
        StoreKind::I32Lo16 | StoreKind::I64Lo16 => 2,
        StoreKind::I32 | StoreKind::F32 | StoreKind::I64Lo32 => 4,
        StoreKind::I64 | StoreKind::F64 => 8,
    }
}

/// The linear walk that reconstructs blocks and replays the lowering's
/// constant/reachability discipline. `cells` mirrors the lowering's
/// abstract stack with `Some(v)` exactly where the lowering holds
/// `Abs::Const(v)` — so `live` equals the lowering's `reachable` flag
/// at every pc, which translation validation depends on.
struct ShapeBuilder {
    func: u32,
    cells: Vec<Option<Value>>,
    alive: bool,
    live: Vec<bool>,
    pc2block: Vec<u32>,
    blocks: Vec<Block>,
    cur: Option<usize>,
    exit_pc: Option<usize>,
    mem_high: u64,
    dynamic_mem: bool,
}

fn const_i32(cell: Option<Value>) -> Option<i32> {
    match cell {
        Some(Value::I32(k)) => Some(k),
        _ => None,
    }
}

impl ShapeBuilder {
    fn err(&self, pc: usize, what: impl Into<String>) -> AnalysisError {
        mismatch(self.func, pc, what)
    }

    fn pop(&mut self, pc: usize) -> Result<Option<Value>, AnalysisError> {
        self.cells
            .pop()
            .ok_or_else(|| self.err(pc, "operand stack underflow in analysis walk"))
    }

    fn popn(&mut self, pc: usize, n: u32) -> Result<(), AnalysisError> {
        for _ in 0..n {
            self.pop(pc)?;
        }
        Ok(())
    }

    fn pushn(&mut self, n: u32) {
        for _ in 0..n {
            self.cells.push(None);
        }
    }

    /// Every cell loses constness — the lowering's `materialize_all`.
    fn flush(&mut self) {
        for c in &mut self.cells {
            *c = None;
        }
    }

    fn edge(&mut self, br: u32) {
        let b = self.cur.expect("live op inside a block");
        self.blocks[b].edges.push(br);
    }

    fn call(&mut self, c: Call) {
        let h = self.cells.len() as u32;
        let b = self.cur.expect("live op inside a block");
        self.blocks[b].calls.push((c, h));
    }

    fn access(&mut self, addr: Option<Value>, off: u32, width: u64) {
        match const_i32(addr) {
            Some(a) => {
                let end = a as u32 as u64 + off as u64 + width;
                self.mem_high = self.mem_high.max(end);
            }
            None => self.dynamic_mem = true,
        }
    }

    /// Mirror the lowering's `i32bin` helper: fold when both operands
    /// are constants (immediates count, locals never do); otherwise the
    /// result cell (if any) is unknown. Stack operands pop `b` first.
    fn i32bin(
        &mut self,
        pc: usize,
        op: I32Op,
        srcs: (BinMSrc, BinMSrc),
        writes_local: bool,
    ) -> Result<(), AnalysisError> {
        let (a, b) = srcs;
        // Pop stack operands top-first (b before a).
        let kb = match b {
            BinMSrc::Stack => const_i32(self.pop(pc)?),
            BinMSrc::Konst(k) => Some(k),
            BinMSrc::Local => None,
        };
        let ka = match a {
            BinMSrc::Stack => const_i32(self.pop(pc)?),
            BinMSrc::Konst(k) => Some(k),
            BinMSrc::Local => None,
        };
        let folded = match (ka, kb) {
            (Some(x), Some(y)) => Some(Value::I32(op.eval(x, y))),
            _ => None,
        };
        if !writes_local {
            self.cells.push(folded);
        }
        Ok(())
    }
}

/// Operand source for the analysis mirror of the i32-binop lowering.
#[derive(Clone, Copy)]
enum BinMSrc {
    Stack,
    Local,
    Konst(i32),
}

fn build_shape(module: &Module, func: u32, cf: &CompiledFunc) -> Result<Shape, AnalysisError> {
    let n = cf.ops.len();
    let mut eh = vec![u32::MAX; n];
    for bt in cf.branches.iter() {
        let pc = bt.pc as usize;
        if pc >= n {
            return Err(mismatch(func, pc, "branch target out of range"));
        }
        let h = bt.height + bt.arity as u32;
        if eh[pc] != u32::MAX && eh[pc] != h {
            return Err(mismatch(func, pc, "inconsistent branch-target heights"));
        }
        eh[pc] = h;
    }

    let mut w = ShapeBuilder {
        func,
        cells: Vec::new(),
        alive: true,
        live: vec![false; n],
        pc2block: vec![u32::MAX; n],
        blocks: Vec::new(),
        cur: None,
        exit_pc: None,
        mem_high: 0,
        dynamic_mem: false,
    };

    if n == 0 || !matches!(cf.ops[0], Op::Meter { .. }) {
        return Err(mismatch(func, 0, "function does not start with a Meter"));
    }

    for (pc, &eh_pc) in eh.iter().enumerate() {
        let op = cf.ops[pc];
        let arriving = w.alive;
        if eh_pc != u32::MAX {
            if !w.alive {
                w.cells.clear();
                w.cells.resize(eh_pc as usize, None);
                w.alive = true;
            } else {
                if w.cells.len() != eh_pc as usize {
                    return Err(w.err(pc, "fall-through height disagrees with branch target"));
                }
                // Join discipline: branch arrivals see only materialized
                // registers, so constness cannot survive the merge.
                w.flush();
            }
        }
        let is_trampoline = eh_pc != u32::MAX && matches!(op, Op::Return);
        if matches!(op, Op::Meter { .. }) || is_trampoline {
            if let Some(c) = w.cur {
                w.blocks[c].end = pc;
                w.blocks[c].falls = arriving;
            }
            w.cur = None;
        }
        if eh_pc != u32::MAX && !matches!(op, Op::Meter { .. } | Op::Return) {
            return Err(w.err(pc, "branch target is neither a Meter nor a Return"));
        }
        if let Op::Meter { cost, peak } = op {
            let idx = w.blocks.len();
            w.pc2block[pc] = idx as u32;
            w.blocks.push(Block {
                start: pc,
                end: n,
                cost,
                peak,
                entry_h: w.cells.len() as u32,
                live: w.alive,
                edges: Vec::new(),
                falls: false,
                calls: Vec::new(),
            });
            w.cur = Some(idx);
            w.live[pc] = w.alive;
            continue;
        }
        if is_trampoline {
            w.exit_pc = Some(pc);
            w.live[pc] = w.alive;
            w.alive = false;
            continue;
        }
        w.live[pc] = w.alive;
        if !w.alive {
            continue;
        }
        if w.cur.is_none() {
            return Err(w.err(pc, "live op outside any metered block"));
        }

        match op {
            Op::Meter { .. } => unreachable!("handled above"),
            Op::Unreachable => w.alive = false,
            Op::Br(b) => {
                w.edge(b);
                w.alive = false;
            }
            Op::BrIf(b) => {
                let cond = w.pop(pc)?;
                match const_i32(cond) {
                    Some(k) => {
                        if k != 0 {
                            w.edge(b);
                            w.alive = false;
                        }
                    }
                    None => {
                        w.flush();
                        w.edge(b);
                    }
                }
            }
            Op::BrIfZ(b) => {
                let cond = w.pop(pc)?;
                match const_i32(cond) {
                    Some(k) => {
                        if k == 0 {
                            w.edge(b);
                            w.alive = false;
                        }
                    }
                    None => {
                        w.flush();
                        w.edge(b);
                    }
                }
            }
            Op::BrIfCmp { op, br } => {
                let b_ = const_i32(w.pop(pc)?);
                let a_ = const_i32(w.pop(pc)?);
                match (a_, b_) {
                    (Some(x), Some(y)) => {
                        if op.eval(x, y) != 0 {
                            w.edge(br);
                            w.alive = false;
                        }
                    }
                    _ => {
                        w.flush();
                        w.edge(br);
                    }
                }
            }
            Op::BrIfLL { br, .. } => {
                w.flush();
                w.edge(br);
            }
            Op::BrTable { start, n: nt } => {
                let sel = const_i32(w.pop(pc)?);
                match sel {
                    Some(k) => w.edge(start + (k as u32).min(nt)),
                    None => {
                        for i in 0..=nt {
                            w.edge(start + i);
                        }
                    }
                }
                w.alive = false;
            }
            Op::Return => w.alive = false,
            Op::CallWasm(f) => {
                w.call(Call::Wasm(f));
                let (pops, pushes) = stack_effect(module, op);
                w.popn(pc, pops)?;
                w.pushn(pushes);
            }
            Op::CallHost { f, .. } => {
                w.call(Call::Host(f));
                let (pops, pushes) = stack_effect(module, op);
                w.popn(pc, pops)?;
                w.pushn(pushes);
            }
            Op::CallIndirect(ty) => {
                w.call(Call::Indirect(ty));
                let (pops, pushes) = stack_effect(module, op);
                w.popn(pc, pops)?;
                w.pushn(pushes);
            }
            Op::Drop => {
                w.pop(pc)?;
            }
            Op::Select => {
                let c = w.pop(pc)?;
                let b_ = w.pop(pc)?;
                let a_ = w.pop(pc)?;
                match const_i32(c) {
                    Some(k) => w.cells.push(if k != 0 { a_ } else { b_ }),
                    None => w.cells.push(None),
                }
            }
            Op::LocalTee(_) => {
                // Top cell (and its constness) survives the write-back.
            }
            Op::I32Bin(op) => w.i32bin(pc, op, (BinMSrc::Stack, BinMSrc::Stack), false)?,
            Op::I32BinLL { op, .. } => w.i32bin(pc, op, (BinMSrc::Local, BinMSrc::Local), false)?,
            Op::I32BinSL { op, .. } => w.i32bin(pc, op, (BinMSrc::Stack, BinMSrc::Local), false)?,
            Op::I32BinSC { op, k } => {
                w.i32bin(pc, op, (BinMSrc::Stack, BinMSrc::Konst(k)), false)?
            }
            Op::I32BinLC { op, k, .. } => {
                w.i32bin(pc, op, (BinMSrc::Local, BinMSrc::Konst(k)), false)?
            }
            Op::I32BinLLSet { op, .. } => {
                w.i32bin(pc, op, (BinMSrc::Local, BinMSrc::Local), true)?
            }
            Op::I32BinLCSet { op, k, .. } => {
                w.i32bin(pc, op, (BinMSrc::Local, BinMSrc::Konst(k)), true)?
            }
            Op::I32BinSLSet { op, .. } => {
                w.i32bin(pc, op, (BinMSrc::Stack, BinMSrc::Local), true)?
            }
            Op::I32BinSCSet { op, k, .. } => {
                w.i32bin(pc, op, (BinMSrc::Stack, BinMSrc::Konst(k)), true)?
            }
            Op::I32LoadL { off, .. } | Op::I32Load8UL { off, .. } => {
                // Address comes from a local: not statically known.
                let _ = off;
                w.dynamic_mem = true;
                w.cells.push(None);
            }
            Op::I64LoadL { .. } | Op::F64LoadL { .. } => {
                w.dynamic_mem = true;
                w.cells.push(None);
            }
            Op::I32LoadSet { off, .. } => {
                let addr = w.pop(pc)?;
                w.access(addr, off, 4);
            }
            Op::I32LoadLSet { .. } => w.dynamic_mem = true,
            Op::MemorySize => w.cells.push(None),
            Op::MemoryGrow => {
                w.pop(pc)?;
                w.cells.push(None);
            }
            Op::MemoryCopy | Op::MemoryFill => {
                w.popn(pc, 3)?;
                w.dynamic_mem = true;
            }
            Op::I32Const(k) => w.cells.push(Some(Value::I32(k))),
            Op::I64Const(k) => w.cells.push(Some(Value::I64(k))),
            Op::F32Const(k) => w.cells.push(Some(Value::F32(k))),
            Op::F64Const(k) => w.cells.push(Some(Value::F64(k))),
            Op::LocalGet(_) | Op::GlobalGet(_) => w.cells.push(None),
            Op::LocalGet2 { .. } => w.pushn(2),
            Op::LocalSet(_) | Op::GlobalSet(_) => {
                w.pop(pc)?;
            }
            Op::LocalSetC { .. } | Op::LocalCopy { .. } => {}
            other => {
                if let Some((kind, off)) = LoadKind::from_op(other) {
                    let addr = w.pop(pc)?;
                    w.access(addr, off, load_width(kind));
                    w.cells.push(None);
                } else if let Some((kind, off)) = StoreKind::from_op(other) {
                    w.pop(pc)?; // value
                    let addr = w.pop(pc)?;
                    w.access(addr, off, store_width(kind));
                } else if let Some(op) = UnOp::from_op(other) {
                    let a = w.pop(pc)?;
                    let folded = match a {
                        Some(v) => op.eval(v).ok(),
                        None => None,
                    };
                    w.cells.push(folded);
                } else if I64Op::from_op(other).is_some() || BinOp::from_op(other).is_some() {
                    w.popn(pc, 2)?;
                    w.cells.push(None);
                } else {
                    return Err(w.err(pc, format!("analysis walk missed flat op {other:?}")));
                }
            }
        }
    }
    if let Some(c) = w.cur {
        w.blocks[c].end = n;
        if w.alive {
            return Err(w.err(n.saturating_sub(1), "control falls off the function end"));
        }
    }

    // Resolve edges to successor block indices (usize::MAX = exit).
    let exit_pc = w.exit_pc;
    let mut succs: Vec<Vec<usize>> = Vec::with_capacity(w.blocks.len());
    for (bi, b) in w.blocks.iter().enumerate() {
        let mut out = Vec::new();
        for &br in &b.edges {
            let bt = cf
                .branches
                .get(br as usize)
                .ok_or_else(|| mismatch(func, b.start, "branch index out of range"))?;
            let tpc = bt.pc as usize;
            if Some(tpc) == exit_pc {
                out.push(usize::MAX);
            } else {
                let tb = w.pc2block[tpc];
                if tb == u32::MAX {
                    return Err(mismatch(func, tpc, "branch target leads no block"));
                }
                out.push(tb as usize);
            }
        }
        if b.falls {
            let next = bi + 1;
            if next < w.blocks.len() && w.blocks[next].start == b.end {
                out.push(next);
            } else {
                // Falling into the Return trampoline is a function exit.
                out.push(usize::MAX);
            }
        }
        succs.push(out);
    }

    let own_stack = w
        .blocks
        .iter()
        .filter(|b| b.live)
        .map(|b| b.entry_h + b.peak)
        .max()
        .unwrap_or(0);

    Ok(Shape {
        blocks: w.blocks,
        live: w.live,
        pc2block: w.pc2block,
        exit_pc,
        own_stack,
        mem_high: w.mem_high,
        dynamic_mem: w.dynamic_mem,
        succs,
    })
}

// ---------------------------------------------------------------------------
// Translation validation
// ---------------------------------------------------------------------------

/// Per-block population counts of the op classes that lower 1:1 (loads,
/// stores, memory ops, traps, i64/float/trapping binops, globals).
/// Address-chain fusion and write-back fusion never add or remove a
/// member of these classes, so flat and register counts must agree
/// exactly — except `un`, which constant folding may only shrink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ClassCounts {
    load: u32,
    store: u32,
    msize: u32,
    mgrow: u32,
    mcopy: u32,
    mfill: u32,
    unreach: u32,
    i64bin: u32,
    bin: u32,
    un: u32,
    gget: u32,
    gset: u32,
}

/// A call site descriptor; the lowering must preserve the exact ordered
/// sequence of these per block (calls are never fused or folded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallDesc {
    Wasm(u32),
    Host(u32, u16, u8),
    Indirect(u32),
}

fn flat_counts(
    cf: &CompiledFunc,
    live: &[bool],
    lo: usize,
    hi: usize,
) -> (ClassCounts, Vec<CallDesc>) {
    let mut c = ClassCounts::default();
    let mut calls = Vec::new();
    for (pc, &alive) in live.iter().enumerate().take(hi).skip(lo) {
        if !alive {
            continue;
        }
        match cf.ops[pc] {
            Op::I32LoadL { .. }
            | Op::I64LoadL { .. }
            | Op::F64LoadL { .. }
            | Op::I32Load8UL { .. }
            | Op::I32LoadSet { .. }
            | Op::I32LoadLSet { .. } => c.load += 1,
            Op::MemorySize => c.msize += 1,
            Op::MemoryGrow => c.mgrow += 1,
            Op::MemoryCopy => c.mcopy += 1,
            Op::MemoryFill => c.mfill += 1,
            Op::Unreachable => c.unreach += 1,
            Op::GlobalGet(_) => c.gget += 1,
            Op::GlobalSet(_) => c.gset += 1,
            Op::CallWasm(f) => calls.push(CallDesc::Wasm(f)),
            Op::CallHost { f, argc, ret } => calls.push(CallDesc::Host(f, argc, ret)),
            Op::CallIndirect(ty) => calls.push(CallDesc::Indirect(ty)),
            other => {
                if StoreKind::from_op(other).is_some() {
                    c.store += 1;
                } else if LoadKind::from_op(other).is_some() {
                    c.load += 1;
                } else if I64Op::from_op(other).is_some() {
                    c.i64bin += 1;
                } else if BinOp::from_op(other).is_some() {
                    c.bin += 1;
                } else if UnOp::from_op(other).is_some() {
                    c.un += 1;
                }
            }
        }
    }
    (c, calls)
}

fn reg_counts(rf: &RegFunc, lo: usize, hi: usize) -> (ClassCounts, Vec<CallDesc>) {
    let mut c = ClassCounts::default();
    let mut calls = Vec::new();
    for op in &rf.ops[lo..hi] {
        match *op {
            ROp::Load { .. } | ROp::LoadAt { .. } | ROp::LoadRR { .. } | ROp::LoadBis { .. } => {
                c.load += 1
            }
            ROp::Store { .. }
            | ROp::StoreAt { .. }
            | ROp::StoreRR { .. }
            | ROp::StoreBis { .. }
            | ROp::StoreCAt { .. } => c.store += 1,
            ROp::MemorySize { .. } => c.msize += 1,
            ROp::MemoryGrow { .. } => c.mgrow += 1,
            ROp::MemoryCopy { .. } => c.mcopy += 1,
            ROp::MemoryFill { .. } => c.mfill += 1,
            ROp::Unreachable => c.unreach += 1,
            ROp::GlobalGet { .. } => c.gget += 1,
            ROp::GlobalSet { .. } => c.gset += 1,
            ROp::I64Bin { .. } => c.i64bin += 1,
            ROp::Bin { .. } => c.bin += 1,
            ROp::Un { .. } => c.un += 1,
            ROp::CallWasm { f, .. } => calls.push(CallDesc::Wasm(f)),
            ROp::CallHost { f, argc, ret, .. } => calls.push(CallDesc::Host(f, argc, ret)),
            ROp::CallIndirect { ty, .. } => calls.push(CallDesc::Indirect(ty)),
            _ => {}
        }
    }
    (c, calls)
}

/// Branch indices some emitted register op actually jumps through.
fn referenced_branches(rf: &RegFunc) -> Vec<u32> {
    let mut out = Vec::new();
    for op in rf.ops.iter() {
        match *op {
            ROp::Br(b)
            | ROp::BrIf { br: b, .. }
            | ROp::BrIfZ { br: b, .. }
            | ROp::BrIfCmp { br: b, .. }
            | ROp::BrIfCmpC { br: b, .. } => out.push(b),
            ROp::BrTable { start, n, .. } => out.extend(start..=start + n),
            _ => {}
        }
    }
    out
}

/// Check that `rf` is a faithful lowering of `cf`, block by block, using
/// the reconstructed `shape`. See the module docs for the argument; the
/// short version: the mirror walk reproduces the lowering's reachability
/// exactly, so `pc_map` liveness, `Meter` placement/cost/entry, per-block
/// op-class populations, ordered call sequences, and the branch side
/// table are all deterministically comparable.
fn validate_with_shape(
    func: u32,
    cf: &CompiledFunc,
    rf: &RegFunc,
    shape: &Shape,
) -> Result<(), AnalysisError> {
    // Structural frame agreement.
    if rf.pc_map.len() != cf.ops.len() {
        return Err(mismatch(func, 0, "pc_map length != flat op count"));
    }
    if rf.argc != cf.argc || rf.ret_arity != cf.ret_arity {
        return Err(mismatch(func, 0, "argc/ret_arity disagree across tiers"));
    }
    if rf.locals_init != cf.locals_init {
        return Err(mismatch(func, 0, "locals_init disagree across tiers"));
    }
    if rf.n_locals != cf.argc + cf.locals_init.len() as u32 {
        return Err(mismatch(func, 0, "n_locals inconsistent with signature"));
    }
    if rf.branches.len() != cf.branches.len() {
        return Err(mismatch(func, 0, "branch table lengths disagree"));
    }

    // Liveness: the lowering skipped exactly the ops the mirror proved
    // unreachable (both directions — a lowering that drops live code or
    // emits dead code fails here).
    for (pc, &alive) in shape.live.iter().enumerate() {
        let skipped = rf.pc_map[pc] == u32::MAX;
        if alive == skipped {
            return Err(mismatch(
                func,
                pc,
                if alive {
                    "live flat op was skipped by the lowering"
                } else {
                    "dead flat op was emitted by the lowering"
                },
            ));
        }
    }

    // Meter placement: every live flat block header maps to a register
    // Meter with identical cost and entry height, in the same order.
    let mut live_meters: Vec<(usize, usize)> = Vec::new(); // (block idx, reg pc)
    let mut last_q = None;
    for (bi, b) in shape.blocks.iter().enumerate() {
        let mapped = rf.pc_map[b.start];
        if !b.live {
            debug_assert_eq!(mapped, u32::MAX);
            continue;
        }
        let q = mapped as usize;
        if q >= rf.ops.len() || last_q.is_some_and(|p| q <= p) {
            return Err(mismatch(func, b.start, "block header maps out of order"));
        }
        last_q = Some(q);
        match rf.ops[q] {
            ROp::Meter { cost, entry, .. } => {
                if cost != b.cost {
                    return Err(mismatch(func, b.start, "Meter cost diverges across tiers"));
                }
                if entry != b.entry_h {
                    return Err(mismatch(func, b.start, "Meter entry height diverges"));
                }
            }
            _ => {
                return Err(mismatch(
                    func,
                    b.start,
                    "block header maps to a non-Meter op",
                ))
            }
        }
        live_meters.push((bi, q));
    }
    let reg_meters = rf
        .ops
        .iter()
        .filter(|o| matches!(o, ROp::Meter { .. }))
        .count();
    if reg_meters != live_meters.len() {
        return Err(mismatch(func, 0, "register form has extra Meter headers"));
    }

    // Per-block op populations and ordered call sequences.
    for (i, &(bi, q)) in live_meters.iter().enumerate() {
        let q_end = live_meters
            .get(i + 1)
            .map(|&(_, q2)| q2)
            .unwrap_or(rf.ops.len());
        let b = &shape.blocks[bi];
        let (fc, fcalls) = flat_counts(cf, &shape.live, b.start, b.end);
        let (rc, rcalls) = reg_counts(rf, q, q_end);
        // `un` may only shrink (constant-folded conversions); everything
        // else must match exactly.
        let exact_ok = (ClassCounts { un: 0, ..fc }) == (ClassCounts { un: 0, ..rc });
        if !exact_ok || rc.un > fc.un {
            return Err(mismatch(
                func,
                b.start,
                format!("block op populations diverge (flat {fc:?} vs reg {rc:?})"),
            ));
        }
        if fcalls != rcalls {
            return Err(mismatch(
                func,
                b.start,
                "call sequences diverge across tiers",
            ));
        }
    }

    // Branch side table: every entry must target the register image of
    // its flat target, and carried-value moves must respect the flat
    // height/arity (trap conditions at branch time depend on both).
    for (i, (bt, rb)) in cf.branches.iter().zip(rf.branches.iter()).enumerate() {
        let tpc = bt.pc as usize;
        if rb.pc != rf.pc_map[tpc] {
            return Err(mismatch(func, tpc, format!("branch {i} retargeted")));
        }
        if rb.n != 0 {
            if rb.n != bt.arity as u32 {
                return Err(mismatch(
                    func,
                    tpc,
                    format!("branch {i} carries wrong arity"),
                ));
            }
            if rb.dst != rf.n_locals + bt.height {
                return Err(mismatch(
                    func,
                    tpc,
                    format!("branch {i} lands at wrong height"),
                ));
            }
        }
    }
    for b in referenced_branches(rf) {
        let (Some(bt), Some(rb)) = (cf.branches.get(b as usize), rf.branches.get(b as usize))
        else {
            return Err(mismatch(func, 0, "register op references missing branch"));
        };
        let target = rf
            .ops
            .get(rb.pc as usize)
            .ok_or_else(|| mismatch(func, bt.pc as usize, "branch target outside body"))?;
        match cf.ops[bt.pc as usize] {
            Op::Meter { cost, .. } => match *target {
                ROp::Meter {
                    cost: rc, entry, ..
                } => {
                    if rc != cost || entry != bt.height + bt.arity as u32 {
                        return Err(mismatch(
                            func,
                            bt.pc as usize,
                            "branch target Meter diverges",
                        ));
                    }
                }
                _ => {
                    return Err(mismatch(
                        func,
                        bt.pc as usize,
                        "branch target is not a Meter",
                    ))
                }
            },
            Op::Return => {
                if !matches!(target, ROp::Return { .. }) {
                    return Err(mismatch(
                        func,
                        bt.pc as usize,
                        "exit branch misses the trampoline",
                    ));
                }
            }
            _ => {
                return Err(mismatch(
                    func,
                    bt.pc as usize,
                    "flat branch target malformed",
                ))
            }
        }
    }
    Ok(())
}

/// Validate one function's register lowering against its flat IR.
/// Exposed for regression tests that corrupt a cloned `RegFunc`.
pub fn validate_lowering(
    module: &Module,
    func: u32,
    cf: &CompiledFunc,
    rf: &RegFunc,
) -> Result<(), AnalysisError> {
    let shape = build_shape(module, func, cf)?;
    validate_with_shape(func, cf, rf, &shape)
}

// ---------------------------------------------------------------------------
// Loop trip bounds
// ---------------------------------------------------------------------------

/// "Taken iff `op(locals[l], k)`" — the relational fact a conditional
/// branch exposes about one local against one constant.
#[derive(Debug, Clone, Copy)]
struct Pred {
    op: I32Op,
    l: u32,
    k: i32,
}

/// What a `local.set`-family op writes, as far as loop analysis cares.
#[derive(Debug, Clone, Copy)]
enum W {
    Konst(i32),
    /// `locals[dst] = locals[src] + c` (the induction-step shape).
    AddL(u32, i32),
    CopyL(u32),
    Opaque,
}

/// Per-block control/dataflow event, in op order.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Set(u32, W),
    Cond { br: u32, pred: Option<Pred> },
}

/// Symbolic value of one operand-stack cell during the per-block event
/// walk: a constant, a local's current value, local-plus-constant, or a
/// comparison of a local against a constant.
#[derive(Debug, Clone, Copy)]
enum SymV {
    K(i32),
    L(u32),
    AddS(u32, i32),
    Cmp(I32Op, u32, i32),
    Other,
}

fn is_cmp(op: I32Op) -> bool {
    matches!(
        op,
        I32Op::Eq
            | I32Op::Ne
            | I32Op::LtS
            | I32Op::LtU
            | I32Op::GtS
            | I32Op::GtU
            | I32Op::LeS
            | I32Op::LeU
            | I32Op::GeS
            | I32Op::GeU
    )
}

/// `a op b` ⟺ `b reflect(op) a`.
fn reflect(op: I32Op) -> I32Op {
    match op {
        I32Op::LtS => I32Op::GtS,
        I32Op::GtS => I32Op::LtS,
        I32Op::LeS => I32Op::GeS,
        I32Op::GeS => I32Op::LeS,
        I32Op::LtU => I32Op::GtU,
        I32Op::GtU => I32Op::LtU,
        I32Op::LeU => I32Op::GeU,
        I32Op::GeU => I32Op::LeU,
        other => other,
    }
}

fn bin_sym(op: I32Op, a: SymV, b: SymV) -> SymV {
    use SymV::*;
    if let (K(x), K(y)) = (a, b) {
        return K(op.eval(x, y));
    }
    match op {
        I32Op::Add => match (a, b) {
            (L(l), K(k)) | (K(k), L(l)) => AddS(l, k),
            (AddS(l, c), K(k)) | (K(k), AddS(l, c)) => AddS(l, c.wrapping_add(k)),
            _ => Other,
        },
        I32Op::Sub => match (a, b) {
            (L(l), K(k)) => AddS(l, k.wrapping_neg()),
            (AddS(l, c), K(k)) => AddS(l, c.wrapping_sub(k)),
            _ => Other,
        },
        op if is_cmp(op) => match (a, b) {
            (L(l), K(k)) => Cmp(op, l, k),
            (K(k), L(l)) => Cmp(reflect(op), l, k),
            _ => Other,
        },
        _ => Other,
    }
}

fn sym_pred(s: SymV, negate: bool) -> Option<Pred> {
    match s {
        SymV::Cmp(op, l, k) => {
            let op = if negate { op.negate()? } else { op };
            Some(Pred { op, l, k })
        }
        // `x != 0` / wrapping `x + c != 0 ⟺ x != -c`.
        SymV::L(l) => Some(Pred {
            op: if negate { I32Op::Eq } else { I32Op::Ne },
            l,
            k: 0,
        }),
        SymV::AddS(l, c) => Some(Pred {
            op: if negate { I32Op::Eq } else { I32Op::Ne },
            l,
            k: c.wrapping_neg(),
        }),
        _ => None,
    }
}

fn w_of(s: SymV) -> W {
    match s {
        SymV::K(k) => W::Konst(k),
        SymV::AddS(l, c) => W::AddL(l, c),
        SymV::L(l) => W::CopyL(l),
        _ => W::Opaque,
    }
}

/// Once `locals[l]` is overwritten, any symbol mentioning it is stale.
fn demote_local(syms: &mut [SymV], l: u32) {
    for s in syms.iter_mut() {
        let stale = matches!(*s,
            SymV::L(x) | SymV::AddS(x, _) | SymV::Cmp(_, x, _) if x == l);
        if stale {
            *s = SymV::Other;
        }
    }
}

/// Walk one live block's ops symbolically, producing its event list.
fn block_events(module: &Module, cf: &CompiledFunc, live: &[bool], b: &Block) -> Vec<Ev> {
    use SymV::{Cmp, K, L};
    let mut syms = vec![SymV::Other; b.entry_h as usize];
    let mut evs: Vec<Ev> = Vec::new();
    let pop = |syms: &mut Vec<SymV>| syms.pop().unwrap_or(SymV::Other);
    for (pc, &alive) in live.iter().enumerate().take(b.end).skip(b.start + 1) {
        if !alive {
            continue;
        }
        let set = |evs: &mut Vec<Ev>, syms: &mut Vec<SymV>, l: u32, w: W| {
            evs.push(Ev::Set(l, w));
            demote_local(syms, l);
        };
        match cf.ops[pc] {
            Op::I32Const(k) => syms.push(K(k)),
            Op::LocalGet(l) => syms.push(L(l)),
            Op::LocalGet2 { a, b } => {
                syms.push(L(a as u32));
                syms.push(L(b as u32));
            }
            Op::LocalTee(l) => {
                let s = *syms.last().unwrap_or(&SymV::Other);
                set(&mut evs, &mut syms, l, w_of(s));
                if let Some(top) = syms.last_mut() {
                    *top = L(l);
                }
            }
            Op::LocalSet(l) => {
                let s = pop(&mut syms);
                set(&mut evs, &mut syms, l, w_of(s));
            }
            Op::LocalSetC { dst, k } => set(&mut evs, &mut syms, dst as u32, W::Konst(k)),
            Op::LocalCopy { src, dst } => {
                set(&mut evs, &mut syms, dst as u32, W::CopyL(src as u32))
            }
            Op::I32Bin(o) => {
                let sb = pop(&mut syms);
                let sa = pop(&mut syms);
                syms.push(bin_sym(o, sa, sb));
            }
            Op::I32BinLL { op: o, a, b } => syms.push(bin_sym(o, L(a as u32), L(b as u32))),
            Op::I32BinSL { op: o, b } => {
                let sa = pop(&mut syms);
                syms.push(bin_sym(o, sa, L(b as u32)));
            }
            Op::I32BinSC { op: o, k } => {
                let sa = pop(&mut syms);
                syms.push(bin_sym(o, sa, K(k)));
            }
            Op::I32BinLC { op: o, a, k } => syms.push(bin_sym(o, L(a as u32), K(k))),
            Op::I32BinLLSet { op: o, a, b, dst } => {
                let w = w_of(bin_sym(o, L(a as u32), L(b as u32)));
                set(&mut evs, &mut syms, dst as u32, w);
            }
            Op::I32BinLCSet { op: o, a, k, dst } => {
                let w = w_of(bin_sym(o, L(a as u32), K(k)));
                set(&mut evs, &mut syms, dst as u32, w);
            }
            Op::I32BinSLSet { op: o, b, dst } => {
                let sa = pop(&mut syms);
                let w = w_of(bin_sym(o, sa, L(b as u32)));
                set(&mut evs, &mut syms, dst as u32, w);
            }
            Op::I32BinSCSet { op: o, k, dst } => {
                let sa = pop(&mut syms);
                let w = w_of(bin_sym(o, sa, K(k)));
                set(&mut evs, &mut syms, dst as u32, w);
            }
            Op::I32LoadSet { dst, .. } => {
                pop(&mut syms);
                set(&mut evs, &mut syms, dst as u32, W::Opaque);
            }
            Op::I32LoadLSet { dst, .. } => set(&mut evs, &mut syms, dst as u32, W::Opaque),
            Op::I32Eqz => {
                let s = pop(&mut syms);
                syms.push(match s {
                    K(x) => K((x == 0) as i32),
                    L(l) => Cmp(I32Op::Eq, l, 0),
                    SymV::AddS(l, c) => Cmp(I32Op::Eq, l, c.wrapping_neg()),
                    Cmp(o, l, k) => match o.negate() {
                        Some(n) => Cmp(n, l, k),
                        None => SymV::Other,
                    },
                    SymV::Other => SymV::Other,
                });
            }
            Op::BrIf(br) => {
                let s = pop(&mut syms);
                evs.push(Ev::Cond {
                    br,
                    pred: sym_pred(s, false),
                });
            }
            Op::BrIfZ(br) => {
                let s = pop(&mut syms);
                evs.push(Ev::Cond {
                    br,
                    pred: sym_pred(s, true),
                });
            }
            Op::BrIfCmp { op: o, br } => {
                let sb = pop(&mut syms);
                let sa = pop(&mut syms);
                let pred = match (sa, sb) {
                    (L(l), K(k)) => Some(Pred { op: o, l, k }),
                    (K(k), L(l)) => Some(Pred {
                        op: reflect(o),
                        l,
                        k,
                    }),
                    _ => None,
                };
                evs.push(Ev::Cond { br, pred });
            }
            Op::BrIfLL { br, .. } => evs.push(Ev::Cond { br, pred: None }),
            other => {
                let (pops, pushes) = stack_effect(module, other);
                for _ in 0..pops {
                    pop(&mut syms);
                }
                for _ in 0..pushes {
                    syms.push(SymV::Other);
                }
            }
        }
    }
    evs
}

// ---------------------------------------------------------------------------
// Graph machinery
// ---------------------------------------------------------------------------

/// Iterative Tarjan over an arbitrary node subset. Returns strongly
/// connected components in completion order — i.e. successors-first
/// (reverse topological order of the condensation).
fn sccs(nodes: &[usize], adj: impl Fn(usize) -> Vec<usize>) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    let dense: HashMap<usize, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();
    let adj_d: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&u| {
            adj(u)
                .into_iter()
                .filter_map(|v| dense.get(&v).copied())
                .collect()
        })
        .collect();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    for s in 0..n {
        if index[s] != usize::MAX {
            continue;
        }
        call.push((s, 0));
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj_d[v].len() {
                call.last_mut().expect("frame present").1 = ci + 1;
                let w = adj_d[v][ci];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w] = false;
                        comp.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

fn is_acyclic(nodes: &BTreeSet<usize>, adj: impl Fn(usize) -> Vec<usize>) -> bool {
    let list: Vec<usize> = nodes.iter().copied().collect();
    sccs(&list, |u| {
        adj(u).into_iter().filter(|v| nodes.contains(v)).collect()
    })
    .iter()
    .all(|c| c.len() == 1 && !adj(c[0]).contains(&c[0]))
}

/// True when `node` lies on some cycle within `nodes`.
fn on_cycle(nodes: &BTreeSet<usize>, node: usize, adj: impl Fn(usize) -> Vec<usize>) -> bool {
    if !nodes.contains(&node) {
        return false;
    }
    let list: Vec<usize> = nodes.iter().copied().collect();
    sccs(&list, |u| {
        adj(u).into_iter().filter(|v| nodes.contains(v)).collect()
    })
    .iter()
    .any(|c| c.contains(&node) && (c.len() > 1 || adj(node).contains(&node)))
}

/// Everything the fuel analysis needs about one function's live CFG.
struct FuelCtx<'a> {
    /// Per-block worst-case weight (cost + callee fuel).
    weights: &'a [Bound],
    /// Live successor blocks (function exits filtered out).
    succs: &'a [Vec<usize>],
    /// Raw successors including `usize::MAX` exit markers.
    full_succs: &'a [Vec<usize>],
    /// Live predecessor blocks.
    preds: &'a [Vec<usize>],
    /// Per-block event lists (empty for dead blocks).
    events: &'a [Vec<Ev>],
    /// Per branch-table index: target block, or `usize::MAX` for exit.
    branch_block: &'a [usize],
    /// Local-constant dataflow OUT state per block.
    outs: &'a [Option<Vec<Option<i32>>>],
    /// Local-constant state on function entry.
    entry_state: &'a [Option<i32>],
}

impl FuelCtx<'_> {
    fn adj(
        &self,
        nodes: &BTreeSet<usize>,
        banned: &BTreeSet<(usize, usize)>,
        u: usize,
    ) -> Vec<usize> {
        self.succs[u]
            .iter()
            .copied()
            .filter(|&v| nodes.contains(&v) && !banned.contains(&(u, v)))
            .collect()
    }
}

/// Forward local-constant dataflow over the live block graph (meet =
/// equal-or-bottom; conditional refinement intentionally ignored, so
/// every fact is a true must-constant).
fn local_const_flow(
    n_locals: usize,
    entry_state: &[Option<i32>],
    blocks: &[Block],
    events: &[Vec<Ev>],
    succs: &[Vec<usize>],
) -> Vec<Option<Vec<Option<i32>>>> {
    let nb = blocks.len();
    let mut ins: Vec<Option<Vec<Option<i32>>>> = vec![None; nb];
    let mut outs: Vec<Option<Vec<Option<i32>>>> = vec![None; nb];
    let mut work = std::collections::VecDeque::new();
    if nb > 0 && blocks[0].live {
        debug_assert_eq!(entry_state.len(), n_locals);
        ins[0] = Some(entry_state.to_vec());
        work.push_back(0usize);
    }
    while let Some(b) = work.pop_front() {
        let mut st = ins[b].clone().expect("queued block has an IN state");
        for ev in &events[b] {
            if let Ev::Set(l, w) = ev {
                st[*l as usize] = match w {
                    W::Konst(k) => Some(*k),
                    W::AddL(src, c) => st[*src as usize].map(|v| v.wrapping_add(*c)),
                    W::CopyL(src) => st[*src as usize],
                    W::Opaque => None,
                };
            }
        }
        if outs[b].as_ref() == Some(&st) {
            continue;
        }
        outs[b] = Some(st.clone());
        for &v in &succs[b] {
            let changed = match &mut ins[v] {
                slot @ None => {
                    *slot = Some(st.clone());
                    true
                }
                Some(cur) => {
                    let mut ch = false;
                    for (c, n) in cur.iter_mut().zip(&st) {
                        if c.is_some() && *c != *n {
                            *c = None;
                            ch = true;
                        }
                    }
                    ch
                }
            };
            if changed {
                work.push_back(v);
            }
        }
    }
    outs
}

/// Max consecutive iterations for which `op(x, k)` can keep holding when
/// `x` starts at `i` and moves by `c` each iteration (exact arithmetic;
/// the caller guards against wraparound). `None` = no bound this way.
fn consecutive_stays(op: I32Op, i: i128, k: i128, c: i128) -> Option<i128> {
    match op {
        I32Op::LtS | I32Op::LtU => {
            if i >= k {
                Some(0)
            } else if c > 0 {
                Some((k - i + c - 1).div_euclid(c))
            } else {
                None
            }
        }
        I32Op::LeS | I32Op::LeU => {
            if i > k {
                Some(0)
            } else if c > 0 {
                Some((k - i).div_euclid(c) + 1)
            } else {
                None
            }
        }
        I32Op::GtS | I32Op::GtU => {
            if i <= k {
                Some(0)
            } else if c < 0 {
                Some((i - k - c - 1).div_euclid(-c))
            } else {
                None
            }
        }
        I32Op::GeS | I32Op::GeU => {
            if i < k {
                Some(0)
            } else if c < 0 {
                Some((i - k).div_euclid(-c) + 1)
            } else {
                None
            }
        }
        // The step is nonzero and wrap-guarded, so `x == k` survives at
        // most one iteration.
        I32Op::Eq => Some(if i == k { 1 } else { 0 }),
        // `Ne` needs the exact-hit argument; handled by the caller.
        _ => None,
    }
}

/// Worst-case trip count of the loop `comp` entered at `header`, or
/// `Unbounded`. Sound by construction: every candidate that passes the
/// structural checks yields a true upper bound, and we take the minimum.
fn trip_bound(
    ctx: &FuelCtx<'_>,
    comp: &BTreeSet<usize>,
    header: usize,
    banned: &BTreeSet<(usize, usize)>,
) -> Bound {
    use std::collections::HashMap;
    // Induction-variable discipline: per local, the self-increment
    // writes inside the loop — or "polluted" if any write is not of the
    // form `l = l + c, c != 0`.
    let mut writes: HashMap<u32, Vec<(usize, i32)>> = HashMap::new();
    let mut polluted: BTreeSet<u32> = BTreeSet::new();
    for &b in comp {
        for ev in &ctx.events[b] {
            if let Ev::Set(l, w) = ev {
                match w {
                    W::AddL(src, c) if *src == *l && *c != 0 => {
                        writes.entry(*l).or_default().push((b, *c));
                    }
                    _ => {
                        polluted.insert(*l);
                    }
                }
            }
        }
    }

    let mut best: Option<u64> = None;
    for &b in comp {
        // The exit test must be the block's first conditional — every
        // pass through the block then evaluates it before anything can
        // divert control.
        let Some(&Ev::Cond { br, pred: Some(p) }) =
            ctx.events[b].iter().find(|e| matches!(e, Ev::Cond { .. }))
        else {
            continue;
        };
        let t = ctx.branch_block[br as usize];
        let stay = if t == usize::MAX || !comp.contains(&t) {
            // Taken edge leaves the loop: staying means the negation.
            let Some(nop) = p.op.negate() else { continue };
            Pred {
                op: nop,
                l: p.l,
                k: p.k,
            }
        } else if t == header {
            // Back edge: staying means the predicate — but only if the
            // taken edge is the block's sole way of remaining in the loop.
            let in_comp: Vec<usize> = ctx.full_succs[b]
                .iter()
                .copied()
                .filter(|&s| s != usize::MAX && comp.contains(&s))
                .collect();
            if in_comp != [header] {
                continue;
            }
            p
        } else {
            continue;
        };

        // Structural discipline: every header-to-header cycle must
        // evaluate the test, i.e. the header must not lie on any cycle
        // that avoids this block. Test-avoiding cycles (inner loops) are
        // tolerated — they bound their own trips one recursion level
        // down — provided they cannot move the tested local (checked
        // below), or the wraparound guard would be void.
        let without_b: BTreeSet<usize> = comp.iter().copied().filter(|&x| x != b).collect();
        if on_cycle(&without_b, header, |u| ctx.adj(comp, banned, u)) {
            continue;
        }

        let l = stay.l;
        if polluted.contains(&l) {
            continue;
        }
        let incs = writes.get(&l).map(Vec::as_slice).unwrap_or(&[]);
        let unsigned = matches!(stay.op, I32Op::LtU | I32Op::LeU | I32Op::GtU | I32Op::GeU);

        // Initial value: meet over every way control can enter the loop
        // from outside it (plus the function entry when the header is
        // the entry block).
        let mut init: Option<Option<i32>> = None; // None = no entries seen yet
        let meet = |v: Option<i32>, init: &mut Option<Option<i32>>| match init {
            None => *init = Some(v),
            Some(cur) => {
                if *cur != v {
                    *cur = None;
                }
            }
        };
        for &pp in &ctx.preds[header] {
            if comp.contains(&pp) {
                continue;
            }
            let v = ctx.outs[pp].as_ref().and_then(|st| st[l as usize]);
            meet(v, &mut init);
        }
        if header == 0 {
            meet(ctx.entry_state[l as usize], &mut init);
        }
        let Some(Some(iv)) = init else { continue };

        let (i, k, lo, hi) = if unsigned {
            (
                iv as u32 as i128,
                stay.k as u32 as i128,
                0i128,
                u32::MAX as i128,
            )
        } else {
            (
                iv as i128,
                stay.k as i128,
                i32::MIN as i128,
                i32::MAX as i128,
            )
        };

        let k0 = if incs.is_empty() {
            // The tested local never changes in the loop: either the
            // test fails on entry (zero full trips) or never fails.
            if stay.op.eval(iv, stay.k) != 0 {
                continue;
            }
            0
        } else {
            // All increments must push the same direction; progress per
            // cycle is then at least the smallest step.
            let sign = incs[0].1.signum();
            if incs.iter().any(|&(_, c)| c.signum() != sign) {
                continue;
            }
            let inc_blocks: BTreeSet<usize> = incs.iter().map(|&(bb, _)| bb).collect();
            let without_incs: BTreeSet<usize> = comp
                .iter()
                .copied()
                .filter(|x| !inc_blocks.contains(x))
                .collect();
            // Every header cycle must run at least one increment, so the
            // local provably progresses each iteration.
            if on_cycle(&without_incs, header, |u| ctx.adj(comp, banned, u)) {
                continue;
            }
            // No increment may sit on a test-avoiding cycle: each then
            // fires at most once between consecutive test evaluations,
            // which is what keeps total movement — and the wraparound
            // guard — bounded.
            if inc_blocks
                .iter()
                .any(|&ib| on_cycle(&without_b, ib, |u| ctx.adj(comp, banned, u)))
            {
                continue;
            }
            let c = incs
                .iter()
                .map(|&(_, c)| c as i128)
                .min_by_key(|c| c.abs())
                .expect("non-empty increments");
            // Max movement of the local between two test evaluations.
            let s: i128 = incs.iter().map(|&(_, c)| (c as i128).abs()).sum();
            let k0 = if stay.op == I32Op::Ne {
                // Exact-hit argument: a single increment site that every
                // cycle runs exactly once, so the walk steps by exactly
                // `c` and lands on `k` rather than jumping over it.
                if incs.len() != 1
                    || !is_acyclic(&without_b, |u| ctx.adj(comp, banned, u))
                    || !is_acyclic(&without_incs, |u| ctx.adj(comp, banned, u))
                {
                    continue;
                }
                let q = (k - i).div_euclid(c);
                if (k - i).rem_euclid(c) != 0 || q < 0 {
                    continue;
                }
                q
            } else {
                match consecutive_stays(stay.op, i, k, c) {
                    Some(k0) => k0,
                    None => continue,
                }
            };
            // Wraparound guard: the monotone local is confined to
            // [min(I,K)-S, max(I,K)+S]; that whole range must fit the
            // value domain or modular arithmetic voids the bound.
            if i.min(k) - s < lo || i.max(k) + s > hi {
                continue;
            }
            k0
        };
        // +2 absorbs the partial final trip and the increment-vs-test
        // order within the cycle.
        let t_cand = (k0 + 2) as u64;
        best = Some(best.map_or(t_cand, |b0| b0.min(t_cand)));
    }
    match best {
        Some(t) => Bound::Finite(t),
        None => Bound::Unbounded,
    }
}

/// Worst-case weight of any path through `nodes` starting at `entry`,
/// with loops collapsed via [`trip_bound`]. `unbounded_loop` is set when
/// some reachable loop had no static bound.
fn region_cost(
    ctx: &FuelCtx<'_>,
    nodes: &BTreeSet<usize>,
    entry: usize,
    banned: &BTreeSet<(usize, usize)>,
    unbounded_loop: &mut bool,
) -> Bound {
    use std::collections::HashMap;
    let list: Vec<usize> = nodes.iter().copied().collect();
    let comps = sccs(&list, |u| ctx.adj(nodes, banned, u));
    let mut comp_of: HashMap<usize, usize> = HashMap::new();
    for (ci, comp) in comps.iter().enumerate() {
        for &u in comp {
            comp_of.insert(u, ci);
        }
    }

    // Reachability on the condensation, entry first (completion order is
    // reverse-topological, so iterate in reverse).
    let n_comps = comps.len();
    let mut reach = vec![false; n_comps];
    reach[comp_of[&entry]] = true;
    for ci in (0..n_comps).rev() {
        if !reach[ci] {
            continue;
        }
        for &u in &comps[ci] {
            for v in ctx.adj(nodes, banned, u) {
                reach[comp_of[&v]] = true;
            }
        }
    }

    // Collapse each reachable component to a single worst-case weight.
    let mut comp_cost = vec![Bound::Finite(0); n_comps];
    for (ci, comp) in comps.iter().enumerate() {
        if !reach[ci] {
            continue;
        }
        let cyclic = comp.len() > 1 || ctx.adj(nodes, banned, comp[0]).contains(&comp[0]);
        if !cyclic {
            comp_cost[ci] = ctx.weights[comp[0]];
            continue;
        }
        let comp_set: BTreeSet<usize> = comp.iter().copied().collect();
        let header = if comp_set.contains(&entry) {
            Some(entry)
        } else {
            let mut hs: Vec<usize> = comp
                .iter()
                .copied()
                .filter(|&c| {
                    ctx.preds[c].iter().any(|&p| {
                        nodes.contains(&p) && !comp_set.contains(&p) && !banned.contains(&(p, c))
                    })
                })
                .collect();
            hs.dedup();
            (hs.len() == 1).then(|| hs[0])
        };
        let Some(header) = header else {
            // Irreducible (multi-entry) loop: no analyzable structure.
            *unbounded_loop = true;
            comp_cost[ci] = Bound::Unbounded;
            continue;
        };
        let trips = trip_bound(ctx, &comp_set, header, banned);
        if trips == Bound::Unbounded {
            *unbounded_loop = true;
        }
        let mut inner_banned = banned.clone();
        for &u in comp {
            inner_banned.insert((u, header));
        }
        let body = region_cost(ctx, &comp_set, header, &inner_banned, unbounded_loop);
        comp_cost[ci] = trips.mul(body);
    }

    // Longest path over the condensation DAG; a call can stop (return or
    // trap) anywhere, so the answer is the max over every reachable
    // component, not just exit-reaching ones.
    let mut dist: Vec<Option<Bound>> = vec![None; n_comps];
    let entry_ci = comp_of[&entry];
    dist[entry_ci] = Some(comp_cost[entry_ci]);
    for ci in (0..n_comps).rev() {
        let Some(d) = dist[ci] else { continue };
        for &u in &comps[ci] {
            for v in ctx.adj(nodes, banned, u) {
                let cv = comp_of[&v];
                if cv == ci {
                    continue;
                }
                let nd = d.add(comp_cost[cv]);
                dist[cv] = Some(match dist[cv] {
                    None => nd,
                    Some(e) => e.max(nd),
                });
            }
        }
    }
    dist.into_iter()
        .flatten()
        .fold(Bound::Finite(0), Bound::max)
}

// ---------------------------------------------------------------------------
// Whole-module analysis
// ---------------------------------------------------------------------------

/// Compute the report for one function whose callees are all resolved.
fn compute_report(
    module: &Module,
    func: u32,
    shape: &Shape,
    reports: &[Option<FuncReport>],
) -> FuncReport {
    let cf = module.compiled_func(func);
    let rf = module.reg_func(func);
    let n_imp = module.num_imported_funcs();
    let callee = |g: u32| -> &FuncReport {
        reports[g as usize]
            .as_ref()
            .expect("callees resolved before callers")
    };

    // Live-block graph + per-block facts. The lowering unconditionally
    // revives dead branch-target blocks (e.g. the folded arm of a
    // constant `if`), so `live` alone still contains blocks no execution
    // can reach. Validation must mirror them, but on the bounds side a
    // revived arm that falls into a loop body reads as a second loop
    // entry and would demote a provably bounded loop to "irreducible" —
    // so bounds run on live ∩ reachable-from-entry only.
    let nb = shape.blocks.len();
    let mut reachable = vec![false; nb];
    if nb > 0 && shape.blocks[0].live {
        reachable[0] = true;
        let mut work = vec![0usize];
        while let Some(b) = work.pop() {
            for &v in &shape.succs[b] {
                if v != usize::MAX && !reachable[v] {
                    reachable[v] = true;
                    work.push(v);
                }
            }
        }
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nb];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (b, raw) in shape.succs.iter().enumerate() {
        if !shape.blocks[b].live || !reachable[b] {
            continue;
        }
        for &v in raw {
            if v != usize::MAX {
                succs[b].push(v);
                preds[v].push(b);
            }
        }
    }
    let branch_block: Vec<usize> = cf
        .branches
        .iter()
        .map(|bt| {
            let tpc = bt.pc as usize;
            if Some(tpc) == shape.exit_pc {
                usize::MAX
            } else {
                shape.pc2block[tpc] as usize
            }
        })
        .collect();
    let events: Vec<Vec<Ev>> = shape
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            if b.live && reachable[bi] {
                block_events(module, cf, &shape.live, b)
            } else {
                Vec::new()
            }
        })
        .collect();

    let mut weights = vec![Bound::Finite(0); nb];
    let mut stack = Bound::Finite(shape.own_stack as u64);
    let mut callee_frames = Bound::Finite(0);
    let mut mem_high = shape.mem_high;
    let mut dynamic_mem = shape.dynamic_mem;
    let mut unbounded_loops = false;
    for (bi, b) in shape.blocks.iter().enumerate() {
        if !b.live || !reachable[bi] {
            continue;
        }
        let mut w = Bound::Finite(b.cost as u64);
        for &(call, h) in &b.calls {
            match call {
                Call::Wasm(g) => {
                    let r = callee(g);
                    w = w.add(r.fuel);
                    let argc = module
                        .func_type(n_imp + g)
                        .map(|ft| ft.params.len() as u64)
                        .unwrap_or(0);
                    stack = stack.max(Bound::Finite(h as u64 - argc).add(r.stack));
                    callee_frames = callee_frames.max(r.frames);
                    mem_high = mem_high.max(r.mem_high);
                    dynamic_mem |= r.dynamic_mem;
                    unbounded_loops |= r.unbounded_loops;
                }
                Call::Host(_) => {}
                Call::Indirect(_) => {
                    w = Bound::Unbounded;
                    stack = Bound::Unbounded;
                    callee_frames = Bound::Unbounded;
                    dynamic_mem = true;
                }
            }
        }
        weights[bi] = w;
    }

    let entry_state: Vec<Option<i32>> = (0..cf.argc)
        .map(|_| None)
        .chain(cf.locals_init.iter().map(|v| match v {
            Value::I32(k) => Some(*k),
            _ => None,
        }))
        .collect();
    let outs = local_const_flow(
        entry_state.len(),
        &entry_state,
        &shape.blocks,
        &events,
        &succs,
    );

    let ctx = FuelCtx {
        weights: &weights,
        succs: &succs,
        full_succs: &shape.succs,
        preds: &preds,
        events: &events,
        branch_block: &branch_block,
        outs: &outs,
        entry_state: &entry_state,
    };
    let nodes: BTreeSet<usize> = (0..nb)
        .filter(|&b| shape.blocks[b].live && reachable[b])
        .collect();
    let fuel = if nodes.is_empty() {
        Bound::Finite(0)
    } else {
        region_cost(&ctx, &nodes, 0, &BTreeSet::new(), &mut unbounded_loops)
    };

    let mut regs = Bound::Finite(rf.frame_size as u64);
    for op in rf.ops.iter() {
        match *op {
            ROp::CallWasm { f: g, base } => {
                regs = regs.max(Bound::Finite(base as u64).add(callee(g).regs));
            }
            ROp::CallIndirect { .. } => regs = Bound::Unbounded,
            _ => {}
        }
    }

    FuncReport {
        func,
        export: None,
        fuel,
        stack,
        frames: Bound::Finite(1).add(callee_frames),
        regs,
        mem_high,
        dynamic_mem,
        unbounded_loops,
        recursive: false,
    }
}

/// Analyze every module-local function: prove the register lowering
/// faithful and compute worst-case resource bounds. The module must be
/// validated; lowering is triggered (and cached) as needed.
pub fn analyze(module: &Module) -> Result<ModuleAnalysis, AnalysisError> {
    let nf = module.funcs.len();
    let n_imp = module.num_imported_funcs();
    let mut shapes = Vec::with_capacity(nf);
    for f in 0..nf as u32 {
        let cf = module.compiled_func(f);
        let rf = module.reg_func(f);
        let shape = build_shape(module, f, cf)?;
        validate_with_shape(f, cf, rf, &shape)?;
        shapes.push(shape);
    }

    // Call graph over local functions; recursion (any cycle) makes every
    // member's bounds unbounded.
    let callees: Vec<Vec<usize>> = shapes
        .iter()
        .map(|s| {
            s.blocks
                .iter()
                .filter(|b| b.live)
                .flat_map(|b| &b.calls)
                .filter_map(|&(c, _)| match c {
                    Call::Wasm(g) => Some(g as usize),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let all: Vec<usize> = (0..nf).collect();
    let mut reports: Vec<Option<FuncReport>> = vec![None; nf];
    for comp in sccs(&all, |f| callees[f].clone()) {
        let cyclic = comp.len() > 1 || callees[comp[0]].contains(&comp[0]);
        if cyclic {
            for &f in &comp {
                reports[f] = Some(FuncReport {
                    func: f as u32,
                    export: None,
                    fuel: Bound::Unbounded,
                    stack: Bound::Unbounded,
                    frames: Bound::Unbounded,
                    regs: Bound::Unbounded,
                    mem_high: shapes[f].mem_high,
                    dynamic_mem: true,
                    unbounded_loops: false,
                    recursive: true,
                });
            }
        } else {
            let f = comp[0];
            reports[f] = Some(compute_report(module, f as u32, &shapes[f], &reports));
        }
    }

    let mut funcs: Vec<FuncReport> = reports
        .into_iter()
        .map(|r| r.expect("every function analyzed"))
        .collect();
    for e in &module.exports {
        if let ExportKind::Func(g) = e.kind {
            if g >= n_imp {
                let r = &mut funcs[(g - n_imp) as usize];
                if r.export.is_none() {
                    r.export = Some(e.name.clone());
                }
            }
        }
    }
    Ok(ModuleAnalysis { funcs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        let bytes = crate::wat::assemble(src).expect("wat assembles");
        let m = crate::decode::decode_module(&bytes).expect("decodes");
        crate::validate::validate(&m).expect("validates");
        m
    }

    fn report(m: &Module, name: &str) -> FuncReport {
        let a = analyze(m).expect("analysis passes");
        let r = a
            .exports()
            .find(|r| r.export.as_deref() == Some(name))
            .expect("export analyzed")
            .clone();
        r
    }

    #[test]
    fn bound_lattice_orders_and_saturates() {
        assert!(Bound::Finite(5) < Bound::Finite(6));
        assert!(Bound::Finite(u64::MAX) < Bound::Unbounded);
        assert_eq!(Bound::Finite(2).add(Bound::Finite(3)), Bound::Finite(5));
        assert_eq!(Bound::Unbounded.add(Bound::Finite(3)), Bound::Unbounded);
        assert_eq!(Bound::Finite(0).mul(Bound::Unbounded), Bound::Finite(0));
        assert_eq!(Bound::Finite(4).mul(Bound::Finite(3)), Bound::Finite(12));
        assert_eq!(format!("{}", Bound::Unbounded), "unbounded");
    }

    #[test]
    fn straight_line_function_has_tight_bounds() {
        let m = module(
            r#"(module (func (export "add") (param i32 i32) (result i32)
                 local.get 0
                 local.get 1
                 i32.add))"#,
        );
        let r = report(&m, "add");
        assert!(matches!(r.fuel, Bound::Finite(n) if n > 0 && n < 16));
        assert!(matches!(r.stack, Bound::Finite(n) if n <= 4));
        assert_eq!(r.frames, Bound::Finite(1));
        assert!(!r.unbounded_loops && !r.recursive && !r.dynamic_mem);
        assert_eq!(r.mem_high, 0);
    }

    #[test]
    fn constant_trip_loop_is_finite() {
        let m = module(
            r#"(module (func (export "run") (result i32)
                 (local $i i32) (local $acc i32)
                 i32.const 10
                 local.set $i
                 block $exit
                   loop $top
                     local.get $i
                     i32.eqz
                     br_if $exit
                     local.get $acc
                     i32.const 2
                     i32.add
                     local.set $acc
                     local.get $i
                     i32.const 1
                     i32.sub
                     local.set $i
                     br $top
                   end
                 end
                 local.get $acc))"#,
        );
        let r = report(&m, "run");
        assert!(
            matches!(r.fuel, Bound::Finite(_)),
            "constant-trip loop must bound: {:?}",
            r.fuel
        );
        assert!(!r.unbounded_loops);
    }

    #[test]
    fn nested_constant_trip_loops_are_finite() {
        // The inner loop is a cycle that avoids the outer loop's test —
        // the structural case the header-cycle analysis must tolerate.
        let m = module(
            r#"(module (func (export "run") (result i32)
                 (local $i i32) (local $j i32) (local $acc i32)
                 block $oexit
                   loop $outer
                     local.get $i
                     i32.const 5
                     i32.ge_s
                     br_if $oexit
                     i32.const 0
                     local.set $j
                     block $iexit
                       loop $inner
                         local.get $j
                         i32.const 3
                         i32.ge_s
                         br_if $iexit
                         local.get $acc
                         i32.const 1
                         i32.add
                         local.set $acc
                         local.get $j
                         i32.const 1
                         i32.add
                         local.set $j
                         br $inner
                       end
                     end
                     local.get $i
                     i32.const 1
                     i32.add
                     local.set $i
                     br $outer
                   end
                 end
                 local.get $acc))"#,
        );
        let r = report(&m, "run");
        assert!(
            matches!(r.fuel, Bound::Finite(_)),
            "nested constant loops must bound: {:?}",
            r.fuel
        );
        assert!(!r.unbounded_loops);
    }

    #[test]
    fn data_dependent_loop_is_unbounded() {
        let m = module(
            r#"(module (func (export "run") (param $n i32) (result i32)
                 (local $i i32) (local $acc i32)
                 local.get $n
                 local.set $i
                 block $exit
                   loop $top
                     local.get $i
                     i32.eqz
                     br_if $exit
                     local.get $acc
                     i32.const 2
                     i32.add
                     local.set $acc
                     local.get $i
                     i32.const 1
                     i32.sub
                     local.set $i
                     br $top
                   end
                 end
                 local.get $acc))"#,
        );
        let r = report(&m, "run");
        assert_eq!(r.fuel, Bound::Unbounded);
        assert!(r.unbounded_loops);
    }

    #[test]
    fn recursion_is_detected() {
        let m = module(
            r#"(module (func $f (export "f") (param i32) (result i32)
                 local.get 0
                 call $f))"#,
        );
        let r = report(&m, "f");
        assert!(r.recursive);
        assert_eq!(r.fuel, Bound::Unbounded);
        assert_eq!(r.frames, Bound::Unbounded);
    }

    #[test]
    fn call_graph_propagates_bounds() {
        // The callee needs control flow, or the compiler inlines it and
        // there is (correctly) no call edge to propagate across.
        let m = module(
            r#"(module
                 (func $leaf (result i32)
                   block $b
                     br $b
                   end
                   i32.const 7)
                 (func (export "top") (result i32)
                   call $leaf))"#,
        );
        let a = analyze(&m).unwrap();
        let top = a
            .exports()
            .find(|r| r.export.as_deref() == Some("top"))
            .unwrap();
        let leaf = a.func(0);
        assert_eq!(top.frames, Bound::Finite(2));
        assert!(top.fuel > leaf.fuel);
        assert!(!top.recursive);
    }

    #[test]
    fn static_memory_range_is_tracked() {
        let m = module(
            r#"(module (memory 1) (func (export "w")
                 i32.const 100
                 i32.const 1
                 i32.store))"#,
        );
        let r = report(&m, "w");
        assert_eq!(r.mem_high, 104);
        assert!(!r.dynamic_mem);
    }

    #[test]
    fn dynamic_memory_access_is_flagged() {
        let m = module(
            r#"(module (memory 1) (func (export "w") (param $a i32)
                 local.get $a
                 i32.const 1
                 i32.store))"#,
        );
        let r = report(&m, "w");
        assert!(r.dynamic_mem);
    }

    fn loop_module() -> Module {
        module(
            r#"(module (memory 1)
                 (func (export "run") (param $n i32) (result i32)
                   (local $i i32)
                   block $exit
                     loop $top
                       local.get $i
                       local.get $n
                       i32.ge_s
                       br_if $exit
                       local.get $i
                       local.get $i
                       i32.store
                       local.get $i
                       i32.const 4
                       i32.add
                       local.set $i
                       br $top
                     end
                   end
                   local.get $i))"#,
        )
    }

    #[test]
    fn corrupted_meter_cost_is_rejected() {
        let m = loop_module();
        let cf = m.compiled_func(0);
        let mut rf = m.reg_func(0).clone();
        let mut ops = rf.ops.to_vec();
        let meter = ops
            .iter_mut()
            .find_map(|o| match o {
                ROp::Meter { cost, .. } => Some(cost),
                _ => None,
            })
            .expect("has a Meter");
        *meter += 1;
        rf.ops = ops.into_boxed_slice();
        assert!(validate_lowering(&m, 0, cf, &rf).is_err());
    }

    #[test]
    fn dropped_store_is_rejected() {
        let m = loop_module();
        let cf = m.compiled_func(0);
        let mut rf = m.reg_func(0).clone();
        let mut ops = rf.ops.to_vec();
        let at = ops
            .iter()
            .position(|o| {
                matches!(
                    o,
                    ROp::Store { .. }
                        | ROp::StoreAt { .. }
                        | ROp::StoreRR { .. }
                        | ROp::StoreBis { .. }
                        | ROp::StoreCAt { .. }
                )
            })
            .expect("has a store");
        ops.remove(at);
        rf.ops = ops.into_boxed_slice();
        assert!(validate_lowering(&m, 0, cf, &rf).is_err());
    }

    #[test]
    fn retargeted_branch_is_rejected() {
        let m = loop_module();
        let cf = m.compiled_func(0);
        let mut rf = m.reg_func(0).clone();
        let mut branches = rf.branches.to_vec();
        branches[0].pc += 1;
        rf.branches = branches.into_boxed_slice();
        assert!(validate_lowering(&m, 0, cf, &rf).is_err());
    }

    #[test]
    fn pristine_lowering_validates() {
        let m = loop_module();
        assert!(analyze(&m).is_ok());
    }

    #[test]
    fn analysis_cell_caches_and_compares_equal() {
        let m = loop_module();
        let cell = AnalysisCell::new();
        let a = cell.get_or_analyze(&m).unwrap().clone();
        let b = cell.get_or_analyze(&m).unwrap().clone();
        assert_eq!(a, b);
        assert_eq!(AnalysisCell::new(), cell.clone());
    }
}
