//! Soundness of the load-time static analysis on the shared differential
//! corpus (same seeded generator as `differential.rs`).
//!
//! Two properties per generated program:
//!
//! * **Translation validation passes** — `Module::analysis()` succeeds on
//!   100% of the corpus, i.e. the register lowering of every generated
//!   function proves equivalent to its flat IR. Combined with the
//!   deliberately-corrupted-lowering negatives (unit tests in
//!   `analysis.rs`), this is the deterministic replacement for sampled
//!   cross-tier parity.
//! * **Static bounds dominate runtime** — executing with fuel set to the
//!   static fuel bound, the value-stack limit set to the static stack
//!   bound, and the call-depth limit set to the static frame bound must
//!   never hit a resource trap, on both the flat and register tiers. The
//!   generator's loops all have constant trip counts, so the analyzer is
//!   additionally required to produce *finite* bounds: an `Unbounded`
//!   verdict here would be a precision regression, not just slack.

use waran_wasm::analysis::Bound;
use waran_wasm::instance::{ExecLimits, ExecMode, Instance, Linker};
use waran_wasm::interp::Value;
use waran_wasm::{load_module, Trap};

#[path = "util/gen.rs"]
mod gen;
use gen::gen_program;

/// Run `main` under exactly the analyzer's bounds; any resource trap is
/// a soundness violation (semantic traps like division by zero are part
/// of the corpus and fine).
fn assert_bounds_admit_execution(
    wasm: &[u8],
    fuel: u64,
    stack: u64,
    frames: u64,
    args: &[Value],
    ctx: &str,
) {
    for mode in [ExecMode::Compiled, ExecMode::Reg] {
        let module = load_module(wasm).expect("generated module validates");
        let limits = ExecLimits {
            max_call_depth: frames as usize,
            max_value_stack: stack as usize,
            ..ExecLimits::default()
        };
        let mut inst =
            Instance::with_limits(module.into(), &Linker::<()>::new(), (), limits).unwrap();
        inst.set_exec_mode(mode);
        inst.set_fuel(Some(fuel));
        match inst.invoke("main", args) {
            Err(Trap::OutOfFuel) => {
                panic!("static fuel bound {fuel} too small under {mode:?} ({ctx})")
            }
            Err(Trap::ValueStackExhausted) => {
                panic!("static stack bound {stack} too small under {mode:?} ({ctx})")
            }
            Err(Trap::StackOverflow) => {
                panic!("static frame bound {frames} too small under {mode:?} ({ctx})")
            }
            _ => {}
        }
    }
}

fn check_seed(seed: u64, a: i32, b: i32) {
    let src = gen_program(seed);
    let wasm = waran_plugc::compile(&src)
        .unwrap_or_else(|e| panic!("seed {seed}: plugc rejected generated program: {e}\n{src}"));
    let module = load_module(&wasm).expect("generated module validates");

    // Translation validation across every function of the module.
    let analysis = module
        .analysis()
        .unwrap_or_else(|e| panic!("seed {seed}: translation validation failed: {e}\n{src}"));

    let report = analysis
        .exports()
        .find(|r| r.export.as_deref() == Some("main"))
        .expect("main is exported");

    // The corpus is loop-bounded by construction; the analyzer must see
    // that (`Unbounded` would be a precision regression).
    let (Bound::Finite(fuel), Bound::Finite(stack), Bound::Finite(frames)) =
        (report.fuel, report.stack, report.frames)
    else {
        panic!(
            "seed {seed}: constant-trip corpus must bound (fuel {}, stack {}, frames {})\n{src}",
            report.fuel, report.stack, report.frames
        );
    };
    assert!(
        !report.unbounded_loops,
        "seed {seed}: no generated loop is data-dependent\n{src}"
    );
    assert!(!report.recursive, "seed {seed}: corpus has no recursion");

    let ctx = format!("seed {seed}, args ({a}, {b})");
    assert_bounds_admit_execution(
        &wasm,
        fuel,
        stack,
        frames,
        &[Value::I32(a), Value::I32(b)],
        &ctx,
    );
}

#[test]
fn static_bounds_sound_on_differential_corpus() {
    for seed in 0..300u64 {
        let a = (seed as i32).wrapping_mul(-0x61c8_8647);
        let b = (seed as i32).wrapping_mul(0x0101_0101) ^ 0x55;
        check_seed(seed, a, b);
    }
}

/// The frame bound is exercised end to end on a call chain: exactly the
/// static depth admits the call, one less overflows.
#[test]
fn frame_bound_is_tight_on_call_chain() {
    let wasm = waran_wasm::wat::assemble(
        r#"(module
             (func $h (result i32)
               block $b
                 br $b
               end
               i32.const 3)
             (func $g (result i32)
               block $b
                 br $b
               end
               call $h)
             (func (export "main") (result i32)
               block $b
                 br $b
               end
               call $g))"#,
    )
    .expect("assembles");
    let module = load_module(&wasm).unwrap();
    let analysis = module.analysis().unwrap();
    let r = analysis
        .exports()
        .find(|r| r.export.as_deref() == Some("main"))
        .unwrap();
    assert_eq!(r.frames, Bound::Finite(3));

    for (depth, expect_ok) in [(3usize, true), (2, false)] {
        let module = load_module(&wasm).unwrap();
        let limits = ExecLimits {
            max_call_depth: depth,
            ..ExecLimits::default()
        };
        let mut inst =
            Instance::with_limits(module.into(), &Linker::<()>::new(), (), limits).unwrap();
        let out = inst.invoke("main", &[]);
        if expect_ok {
            assert_eq!(out, Ok(Some(Value::I32(3))));
        } else {
            assert_eq!(out, Err(Trap::StackOverflow));
        }
    }
}
