//! End-to-end execution tests for the interpreter: semantics of control
//! flow, arithmetic corner cases, traps, sandbox limits, host functions,
//! tables and memory.

use std::time::Duration;

use waran_wasm::instance::{ExecLimits, Instance, InstantiateError, Linker};
use waran_wasm::interp::Value;
use waran_wasm::types::ValType;
use waran_wasm::{load_module, wat, Trap};

fn instantiate(src: &str) -> Instance<()> {
    let bytes = wat::assemble(src).expect("assembles");
    let module = load_module(&bytes).expect("validates");
    Instance::new(module.into(), &Linker::new(), ()).expect("instantiates")
}

fn run1(src: &str, name: &str, args: &[Value]) -> Result<Option<Value>, Trap> {
    instantiate(src).invoke(name, args)
}

#[test]
fn constants_and_arithmetic() {
    let src = r#"(module
      (func (export "f") (result i32)
        i32.const 20 i32.const 22 i32.add))"#;
    assert_eq!(run1(src, "f", &[]), Ok(Some(Value::I32(42))));
}

#[test]
fn factorial_recursive() {
    let src = r#"(module
      (func $fac (export "fac") (param i64) (result i64)
        local.get 0
        i64.const 2
        i64.lt_s
        if (result i64)
          i64.const 1
        else
          local.get 0
          local.get 0
          i64.const 1
          i64.sub
          call $fac
          i64.mul
        end))"#;
    assert_eq!(
        run1(src, "fac", &[Value::I64(10)]),
        Ok(Some(Value::I64(3628800)))
    );
    assert_eq!(run1(src, "fac", &[Value::I64(0)]), Ok(Some(Value::I64(1))));
}

#[test]
fn loop_with_branch() {
    // Sum of 1..=n via loop/br_if.
    let src = r#"(module
      (func (export "sum") (param $n i32) (result i32)
        (local $acc i32)
        block $exit
          loop $top
            local.get $n
            i32.eqz
            br_if $exit
            local.get $acc local.get $n i32.add local.set $acc
            local.get $n i32.const 1 i32.sub local.set $n
            br $top
          end
        end
        local.get $acc))"#;
    assert_eq!(
        run1(src, "sum", &[Value::I32(100)]),
        Ok(Some(Value::I32(5050)))
    );
    assert_eq!(run1(src, "sum", &[Value::I32(0)]), Ok(Some(Value::I32(0))));
}

#[test]
fn br_table_dispatch() {
    let src = r#"(module
      (func (export "classify") (param i32) (result i32)
        block $b2
          block $b1
            block $b0
              local.get 0
              br_table $b0 $b1 $b2
            end
            i32.const 100
            return
          end
          i32.const 200
          return
        end
        i32.const 300))"#;
    assert_eq!(
        run1(src, "classify", &[Value::I32(0)]),
        Ok(Some(Value::I32(100)))
    );
    assert_eq!(
        run1(src, "classify", &[Value::I32(1)]),
        Ok(Some(Value::I32(200)))
    );
    assert_eq!(
        run1(src, "classify", &[Value::I32(2)]),
        Ok(Some(Value::I32(300)))
    );
    // Out-of-range uses the default (last) target.
    assert_eq!(
        run1(src, "classify", &[Value::I32(77)]),
        Ok(Some(Value::I32(300)))
    );
}

#[test]
fn block_results_carried_by_branch() {
    let src = r#"(module
      (func (export "f") (param i32) (result i32)
        block $b (result i32)
          i32.const 11
          local.get 0
          br_if $b
          drop
          i32.const 22
        end))"#;
    assert_eq!(run1(src, "f", &[Value::I32(1)]), Ok(Some(Value::I32(11))));
    assert_eq!(run1(src, "f", &[Value::I32(0)]), Ok(Some(Value::I32(22))));
}

#[test]
fn division_semantics() {
    let src = r#"(module
      (func (export "div_s") (param i32 i32) (result i32)
        local.get 0 local.get 1 i32.div_s)
      (func (export "rem_s") (param i32 i32) (result i32)
        local.get 0 local.get 1 i32.rem_s)
      (func (export "div_u") (param i32 i32) (result i32)
        local.get 0 local.get 1 i32.div_u))"#;
    let mut inst = instantiate(src);
    assert_eq!(
        inst.invoke("div_s", &[Value::I32(-7), Value::I32(2)]),
        Ok(Some(Value::I32(-3)))
    );
    assert_eq!(
        inst.invoke("div_s", &[Value::I32(1), Value::I32(0)]),
        Err(Trap::IntegerDivByZero)
    );
    assert_eq!(
        inst.invoke("div_s", &[Value::I32(i32::MIN), Value::I32(-1)]),
        Err(Trap::IntegerOverflow)
    );
    // MIN rem -1 is 0, not a trap.
    assert_eq!(
        inst.invoke("rem_s", &[Value::I32(i32::MIN), Value::I32(-1)]),
        Ok(Some(Value::I32(0)))
    );
    // Unsigned division treats -1 as u32::MAX.
    assert_eq!(
        inst.invoke("div_u", &[Value::I32(-1), Value::I32(2)]),
        Ok(Some(Value::I32((u32::MAX / 2) as i32)))
    );
}

#[test]
fn shift_masking() {
    let src = r#"(module
      (func (export "shl") (param i32 i32) (result i32)
        local.get 0 local.get 1 i32.shl))"#;
    // Shift amount is masked to 5 bits: 33 & 31 == 1.
    assert_eq!(
        run1(src, "shl", &[Value::I32(1), Value::I32(33)]),
        Ok(Some(Value::I32(2)))
    );
}

#[test]
fn float_conversions_trap_or_saturate() {
    let src = r#"(module
      (func (export "trunc") (param f64) (result i32)
        local.get 0 i32.trunc_f64_s)
      (func (export "sat") (param f64) (result i32)
        local.get 0 i32.trunc_sat_f64_s))"#;
    let mut inst = instantiate(src);
    assert_eq!(
        inst.invoke("trunc", &[Value::F64(3.99)]),
        Ok(Some(Value::I32(3)))
    );
    assert_eq!(
        inst.invoke("trunc", &[Value::F64(-3.99)]),
        Ok(Some(Value::I32(-3)))
    );
    assert_eq!(
        inst.invoke("trunc", &[Value::F64(f64::NAN)]),
        Err(Trap::InvalidConversion)
    );
    assert_eq!(
        inst.invoke("trunc", &[Value::F64(1e12)]),
        Err(Trap::InvalidConversion)
    );
    // Saturating versions clamp instead.
    assert_eq!(
        inst.invoke("sat", &[Value::F64(1e12)]),
        Ok(Some(Value::I32(i32::MAX)))
    );
    assert_eq!(
        inst.invoke("sat", &[Value::F64(-1e12)]),
        Ok(Some(Value::I32(i32::MIN)))
    );
    assert_eq!(
        inst.invoke("sat", &[Value::F64(f64::NAN)]),
        Ok(Some(Value::I32(0)))
    );
}

#[test]
fn float_min_max_nan_and_zero() {
    let src = r#"(module
      (func (export "min") (param f64 f64) (result f64)
        local.get 0 local.get 1 f64.min)
      (func (export "max") (param f64 f64) (result f64)
        local.get 0 local.get 1 f64.max))"#;
    let mut inst = instantiate(src);
    let min = |inst: &mut Instance<()>, a: f64, b: f64| {
        inst.invoke("min", &[Value::F64(a), Value::F64(b)])
            .unwrap()
            .unwrap()
            .as_f64()
    };
    assert!(min(&mut inst, f64::NAN, 1.0).is_nan());
    assert!(min(&mut inst, 1.0, f64::NAN).is_nan());
    // min(+0, -0) must be -0.
    assert!(min(&mut inst, 0.0, -0.0).is_sign_negative());
    assert_eq!(min(&mut inst, -5.0, 3.0), -5.0);
    let max = inst
        .invoke("max", &[Value::F64(0.0), Value::F64(-0.0)])
        .unwrap()
        .unwrap()
        .as_f64();
    assert!(max.is_sign_positive());
}

#[test]
fn memory_load_store_roundtrip() {
    let src = r#"(module
      (memory 1)
      (func (export "store_load") (param i32 i64) (result i64)
        local.get 0
        local.get 1
        i64.store
        local.get 0
        i64.load))"#;
    assert_eq!(
        run1(
            src,
            "store_load",
            &[Value::I32(1000), Value::I64(-12345678901234)]
        ),
        Ok(Some(Value::I64(-12345678901234)))
    );
}

#[test]
fn memory_oob_traps_and_instance_survives() {
    let src = r#"(module
      (memory 1 1)
      (func (export "poke") (param i32) (result i32)
        local.get 0
        i32.const 7
        i32.store
        i32.const 1))"#;
    let mut inst = instantiate(src);
    // In-bounds works.
    assert_eq!(
        inst.invoke("poke", &[Value::I32(0)]),
        Ok(Some(Value::I32(1)))
    );
    // Out-of-bounds traps...
    let trap = inst.invoke("poke", &[Value::I32(65536)]).unwrap_err();
    assert!(matches!(trap, Trap::MemoryOutOfBounds { .. }));
    // ...and the instance keeps working afterwards (the paper's §5.D story).
    assert_eq!(
        inst.invoke("poke", &[Value::I32(16)]),
        Ok(Some(Value::I32(1)))
    );
    assert_eq!(inst.stats().traps, 1);
    assert_eq!(inst.stats().invokes, 2);
}

#[test]
fn memory_grow_and_limits() {
    let src = r#"(module
      (memory 1 3)
      (func (export "grow") (param i32) (result i32)
        local.get 0
        memory.grow)
      (func (export "size") (result i32)
        memory.size))"#;
    let mut inst = instantiate(src);
    assert_eq!(inst.invoke("size", &[]), Ok(Some(Value::I32(1))));
    assert_eq!(
        inst.invoke("grow", &[Value::I32(1)]),
        Ok(Some(Value::I32(1)))
    );
    assert_eq!(
        inst.invoke("grow", &[Value::I32(5)]),
        Ok(Some(Value::I32(-1)))
    );
    assert_eq!(inst.invoke("size", &[]), Ok(Some(Value::I32(2))));
}

#[test]
fn unreachable_traps() {
    let src = r#"(module (func (export "f") unreachable))"#;
    assert_eq!(run1(src, "f", &[]), Err(Trap::Unreachable));
}

#[test]
fn call_stack_depth_limited() {
    let src = r#"(module
      (func $inf (export "inf") call $inf))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let limits = ExecLimits {
        max_call_depth: 100,
        ..ExecLimits::default()
    };
    let mut inst = Instance::with_limits(module.into(), &Linker::<()>::new(), (), limits).unwrap();
    assert_eq!(inst.invoke("inf", &[]), Err(Trap::StackOverflow));
}

#[test]
fn fuel_bounds_infinite_loop() {
    let src = r#"(module
      (func (export "spin")
        loop $l
          br $l
        end))"#;
    let mut inst = instantiate(src);
    inst.set_fuel(Some(10_000));
    assert_eq!(inst.invoke("spin", &[]), Err(Trap::OutOfFuel));
    assert_eq!(inst.fuel_remaining(), Some(0));
    // Refuelling restores service.
    inst.set_fuel(Some(1_000_000));
    let src_ok = inst.invoke("spin", &[]); // still infinite: burns the new budget
    assert_eq!(src_ok, Err(Trap::OutOfFuel));
}

#[test]
fn fuel_accounting_is_deterministic() {
    let src = r#"(module
      (func (export "work") (param i32) (result i32)
        (local $acc i32)
        block $exit
          loop $top
            local.get 0
            i32.eqz
            br_if $exit
            local.get $acc local.get 0 i32.add local.set $acc
            local.get 0 i32.const 1 i32.sub local.set 0
            br $top
          end
        end
        local.get $acc))"#;
    let consumed = |n: i32| {
        let mut inst = instantiate(src);
        inst.set_fuel(Some(1_000_000));
        inst.invoke("work", &[Value::I32(n)]).unwrap();
        inst.fuel_consumed().unwrap()
    };
    // Same input -> identical fuel; fuel scales linearly with iterations.
    assert_eq!(consumed(10), consumed(10));
    let f10 = consumed(10);
    let f20 = consumed(20);
    let f30 = consumed(30);
    assert_eq!(f30 - f20, f20 - f10);
}

#[test]
fn deadline_interrupts_runaway_plugin() {
    let src = r#"(module
      (func (export "spin")
        loop $l
          br $l
        end))"#;
    let mut inst = instantiate(src);
    inst.set_deadline(Some(Duration::from_millis(5)));
    let start = std::time::Instant::now();
    assert_eq!(inst.invoke("spin", &[]), Err(Trap::DeadlineExceeded));
    // Must abort promptly (well within a second even on a loaded machine).
    assert!(start.elapsed() < Duration::from_secs(1));
}

#[test]
fn host_functions_called_with_memory_access() {
    let src = r#"(module
      (import "env" "add3" (func $add3 (param i32) (result i32)))
      (import "env" "peek" (func $peek (param i32) (result i32)))
      (memory 1)
      (data (i32.const 64) "\2a")
      (func (export "f") (param i32) (result i32)
        local.get 0
        call $add3
        i32.const 64
        call $peek
        i32.add))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let mut linker: Linker<u32> = Linker::new();
    linker.func(
        "env",
        "add3",
        &[ValType::I32],
        &[ValType::I32],
        |calls, _mem, args| {
            *calls += 1;
            Ok(Some(Value::I32(args[0].as_i32() + 3)))
        },
    );
    linker.func(
        "env",
        "peek",
        &[ValType::I32],
        &[ValType::I32],
        |_calls, mem, args| {
            let b = mem.read::<1>(args[0].as_u32(), 0)?;
            Ok(Some(Value::I32(b[0] as i32)))
        },
    );
    let mut inst = Instance::new(module.into(), &linker, 0u32).unwrap();
    // add3(10) + mem[64] = 13 + 42 = 55
    assert_eq!(
        inst.invoke("f", &[Value::I32(10)]),
        Ok(Some(Value::I32(55)))
    );
    assert_eq!(inst.data, 1);
}

#[test]
fn host_error_propagates_as_trap() {
    let src = r#"(module
      (import "env" "fail" (func $fail))
      (func (export "f") call $fail))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let mut linker: Linker<()> = Linker::new();
    linker.func("env", "fail", &[], &[], |_, _, _| {
        Err(Trap::HostError("boom".into()))
    });
    let mut inst = Instance::new(module.into(), &linker, ()).unwrap();
    assert_eq!(inst.invoke("f", &[]), Err(Trap::HostError("boom".into())));
}

#[test]
fn missing_import_rejected_at_instantiation() {
    let src = r#"(module
      (import "env" "nope" (func $n))
      (func (export "f") call $n))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let err = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap_err();
    assert!(matches!(err, InstantiateError::MissingImport { .. }));
}

#[test]
fn import_signature_mismatch_rejected() {
    let src = r#"(module
      (import "env" "f" (func $f (param i32)))
      (func (export "g") i32.const 1 call $f))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let mut linker: Linker<()> = Linker::new();
    linker.func("env", "f", &[ValType::I64], &[], |_, _, _| Ok(None));
    let err = Instance::new(module.into(), &linker, ()).unwrap_err();
    assert!(matches!(err, InstantiateError::ImportTypeMismatch { .. }));
}

#[test]
fn call_indirect_dispatch_and_traps() {
    // call_indirect needs a type annotation the WAT assembler doesn't
    // support, so build this module programmatically.
    use waran_wasm::builder::ModuleBuilder;
    let mut mb = ModuleBuilder::new();
    mb.table(3, None);
    let sig_i32_i32 = mb.func_type(&[ValType::I32], &[ValType::I32]);
    let sig_nil_i32 = mb.func_type(&[], &[ValType::I32]);
    let sig_apply = mb.func_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
    let double = mb.begin_func(sig_i32_i32);
    mb.code().local_get(0).i32_const(2).i32_mul();
    mb.end_func().unwrap();
    let square = mb.begin_func(sig_i32_i32);
    mb.code().local_get(0).local_get(0).i32_mul();
    mb.end_func().unwrap();
    let noargs = mb.begin_func(sig_nil_i32);
    mb.code().i32_const(9);
    mb.end_func().unwrap();
    mb.elem(0, &[double, square, noargs]);
    let apply = mb.begin_func(sig_apply);
    mb.code()
        .local_get(1)
        .local_get(0)
        .call_indirect(sig_i32_i32);
    mb.end_func().unwrap();
    mb.export_func("apply", apply);
    let module = mb.finish().unwrap();
    waran_wasm::validate::validate(&module).unwrap();
    let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();

    assert_eq!(
        inst.invoke("apply", &[Value::I32(0), Value::I32(21)]),
        Ok(Some(Value::I32(42)))
    );
    assert_eq!(
        inst.invoke("apply", &[Value::I32(1), Value::I32(7)]),
        Ok(Some(Value::I32(49)))
    );
    // Slot 2 holds a function of the wrong type.
    assert_eq!(
        inst.invoke("apply", &[Value::I32(2), Value::I32(7)]),
        Err(Trap::IndirectCallTypeMismatch)
    );
    // Out of table bounds.
    assert_eq!(
        inst.invoke("apply", &[Value::I32(10), Value::I32(7)]),
        Err(Trap::TableOutOfBounds)
    );
}

#[test]
fn uninitialized_table_slot_traps() {
    use waran_wasm::builder::ModuleBuilder;
    let mut mb = ModuleBuilder::new();
    mb.table(2, None);
    let sig = mb.func_type(&[], &[]);
    let f = mb.begin_func(sig);
    mb.code().i32_const(1).call_indirect(sig);
    mb.end_func().unwrap();
    mb.export_func("f", f);
    let module = mb.finish().unwrap();
    waran_wasm::validate::validate(&module).unwrap();
    let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();
    assert_eq!(inst.invoke("f", &[]), Err(Trap::UninitializedElement));
}

#[test]
fn globals_persist_across_invocations() {
    let src = r#"(module
      (global $count (mut i64) (i64.const 0))
      (func (export "tick") (result i64)
        global.get $count
        i64.const 1
        i64.add
        global.set $count
        global.get $count))"#;
    let mut inst = instantiate(src);
    for expect in 1..=5i64 {
        assert_eq!(inst.invoke("tick", &[]), Ok(Some(Value::I64(expect))));
    }
}

#[test]
fn start_function_runs_at_instantiation() {
    let src = r#"(module
      (global $g (mut i32) (i32.const 0))
      (func $init i32.const 99 global.set $g)
      (func (export "get") (result i32) global.get $g)
      (start $init))"#;
    let mut inst = instantiate(src);
    assert_eq!(inst.invoke("get", &[]), Ok(Some(Value::I32(99))));
}

#[test]
fn invoke_binding_errors() {
    let src = r#"(module (func (export "f") (param i32)))"#;
    let mut inst = instantiate(src);
    assert!(matches!(
        inst.invoke("missing", &[]),
        Err(Trap::HostError(_))
    ));
    assert!(matches!(inst.invoke("f", &[]), Err(Trap::HostError(_)))); // arity
    assert!(matches!(
        inst.invoke("f", &[Value::I64(1)]),
        Err(Trap::HostError(_))
    )); // type
    assert_eq!(inst.invoke("f", &[Value::I32(1)]), Ok(None));
}

#[test]
fn memory_copy_fill_instructions() {
    let src = r#"(module
      (memory 1)
      (func (export "f") (result i32)
        ;; fill [0, 8) with 0x11
        i32.const 0 i32.const 0x11 i32.const 8 memory.fill
        ;; copy [0, 8) to [100, 108)
        i32.const 100 i32.const 0 i32.const 8 memory.copy
        i32.const 104 i32.load))"#;
    assert_eq!(run1(src, "f", &[]), Ok(Some(Value::I32(0x11111111))));
}

#[test]
fn sign_extension_ops() {
    let src = r#"(module
      (func (export "ext8") (param i32) (result i32)
        local.get 0 i32.extend8_s))"#;
    assert_eq!(
        run1(src, "ext8", &[Value::I32(0x80)]),
        Ok(Some(Value::I32(-128)))
    );
    assert_eq!(
        run1(src, "ext8", &[Value::I32(0x7f)]),
        Ok(Some(Value::I32(127)))
    );
}

#[test]
fn select_instruction() {
    let src = r#"(module
      (func (export "pick") (param i32) (result f64)
        f64.const 1.5
        f64.const 2.5
        local.get 0
        select))"#;
    assert_eq!(
        run1(src, "pick", &[Value::I32(1)]),
        Ok(Some(Value::F64(1.5)))
    );
    assert_eq!(
        run1(src, "pick", &[Value::I32(0)]),
        Ok(Some(Value::F64(2.5)))
    );
}

#[test]
fn nested_loops_with_mixed_branches() {
    // Count primes below n with trial division — stresses nested control.
    let src = r#"(module
      (func (export "primes") (param $n i32) (result i32)
        (local $i i32) (local $j i32) (local $count i32) (local $prime i32)
        i32.const 2
        local.set $i
        block $done
          loop $outer
            local.get $i local.get $n i32.ge_s
            br_if $done
            i32.const 1
            local.set $prime
            i32.const 2
            local.set $j
            block $checked
              loop $inner
                local.get $j local.get $j i32.mul local.get $i i32.gt_s
                br_if $checked
                local.get $i local.get $j i32.rem_s
                i32.eqz
                if
                  i32.const 0
                  local.set $prime
                  br $checked
                end
                local.get $j i32.const 1 i32.add local.set $j
                br $inner
              end
            end
            local.get $count local.get $prime i32.add local.set $count
            local.get $i i32.const 1 i32.add local.set $i
            br $outer
          end
        end
        local.get $count))"#;
    assert_eq!(
        run1(src, "primes", &[Value::I32(30)]),
        Ok(Some(Value::I32(10)))
    );
    assert_eq!(
        run1(src, "primes", &[Value::I32(2)]),
        Ok(Some(Value::I32(0)))
    );
}

#[test]
fn float_math_pipeline() {
    // EWMA update: the PF scheduler's core arithmetic pattern.
    let src = r#"(module
      (func (export "ewma") (param $avg f64) (param $sample f64) (param $alpha f64) (result f64)
        f64.const 1
        local.get $alpha
        f64.sub
        local.get $avg
        f64.mul
        local.get $alpha
        local.get $sample
        f64.mul
        f64.add))"#;
    let got = run1(
        src,
        "ewma",
        &[Value::F64(10.0), Value::F64(20.0), Value::F64(0.25)],
    )
    .unwrap()
    .unwrap()
    .as_f64();
    assert!((got - 12.5).abs() < 1e-12);
}

#[test]
fn value_stack_limit_enforced() {
    // A function that pushes more than the configured stack bound.
    let src = r#"(module
      (func (export "deep") (result i32)
        (local $n i32)
        i32.const 0
        loop $l (result i32)
          i32.const 1
          local.get $n
          i32.const 1
          i32.add
          local.tee $n
          i32.const 100000
          i32.lt_s
          br_if $l
        end
        i32.add))"#;
    // Each iteration leaves one extra i32 on the stack... actually the loop
    // result discipline prevents unbounded growth in validated code, so we
    // emulate with a tiny limit instead.
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let limits = ExecLimits {
        max_value_stack: 3,
        ..ExecLimits::default()
    };
    let mut inst = Instance::with_limits(module.into(), &Linker::<()>::new(), (), limits).unwrap();
    assert_eq!(inst.invoke("deep", &[]), Err(Trap::ValueStackExhausted));
}

#[test]
fn reinterpret_bits() {
    let src = r#"(module
      (func (export "f") (param f32) (result i32)
        local.get 0 i32.reinterpret_f32))"#;
    assert_eq!(
        run1(src, "f", &[Value::F32(1.0)]),
        Ok(Some(Value::I32(0x3f800000)))
    );
}

#[test]
fn rotations() {
    let src = r#"(module
      (func (export "rotl") (param i32 i32) (result i32)
        local.get 0 local.get 1 i32.rotl))"#;
    assert_eq!(
        run1(
            src,
            "rotl",
            &[Value::I32(0x80000000u32 as i32), Value::I32(1)]
        ),
        Ok(Some(Value::I32(1)))
    );
}

#[test]
fn clz_ctz_popcnt() {
    let src = r#"(module
      (func (export "clz") (param i32) (result i32) local.get 0 i32.clz)
      (func (export "ctz") (param i32) (result i32) local.get 0 i32.ctz)
      (func (export "pop") (param i32) (result i32) local.get 0 i32.popcnt))"#;
    let mut inst = instantiate(src);
    assert_eq!(
        inst.invoke("clz", &[Value::I32(1)]),
        Ok(Some(Value::I32(31)))
    );
    assert_eq!(
        inst.invoke("clz", &[Value::I32(0)]),
        Ok(Some(Value::I32(32)))
    );
    assert_eq!(
        inst.invoke("ctz", &[Value::I32(8)]),
        Ok(Some(Value::I32(3)))
    );
    assert_eq!(
        inst.invoke("pop", &[Value::I32(0x0f0f0f0f)]),
        Ok(Some(Value::I32(16)))
    );
}

#[test]
fn out_of_fuel_still_counts_retired_instrs() {
    // Regression: the interpreter used to early-return on OutOfFuel without
    // flushing its local instruction counter into `ExecStats`, so a fuel
    // trap reported `instrs == 0` no matter how long the guest actually ran.
    use waran_wasm::instance::ExecMode;
    let src = r#"(module
      (func (export "spin")
        loop $l
          br $l
        end))"#;
    for mode in [ExecMode::Reference, ExecMode::Compiled, ExecMode::Reg] {
        let mut inst = instantiate(src);
        inst.set_exec_mode(mode);
        inst.set_fuel(Some(10_000));
        assert_eq!(inst.invoke("spin", &[]), Err(Trap::OutOfFuel));
        // Every unit of fuel retires exactly one source instruction, and the
        // stats must account for all of them even though the call trapped.
        assert_eq!(inst.stats().instrs, 10_000, "mode {mode:?}");
        assert_eq!(inst.stats().traps, 1);
    }
}

#[test]
fn exec_modes_agree_on_results_and_fuel() {
    use waran_wasm::instance::ExecMode;
    let src = r#"(module
      (func $fib (export "fib") (param i32) (result i32)
        local.get 0
        i32.const 2
        i32.lt_s
        if (result i32)
          local.get 0
        else
          local.get 0 i32.const 1 i32.sub call $fib
          local.get 0 i32.const 2 i32.sub call $fib
          i32.add
        end))"#;
    let run = |mode: ExecMode| {
        let mut inst = instantiate(src);
        inst.set_exec_mode(mode);
        inst.set_fuel(Some(1_000_000));
        let out = inst.invoke("fib", &[Value::I32(18)]);
        (out, inst.fuel_consumed(), inst.stats().instrs)
    };
    assert_eq!(run(ExecMode::Reference), run(ExecMode::Compiled));
    assert_eq!(run(ExecMode::Reference), run(ExecMode::Reg));
}
