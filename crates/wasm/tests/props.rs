//! Property-based tests for the Wasm substrate.
//!
//! Three invariant families:
//! 1. LEB128 and binary-format round trips (encode ∘ decode = identity).
//! 2. Builder output always validates (well-typed construction is safe).
//! 3. Differential execution: randomly generated arithmetic expression
//!    trees are compiled to Wasm via the builder and evaluated natively;
//!    both must agree bit-for-bit (traps included).

use proptest::prelude::*;

use waran_wasm::builder::ModuleBuilder;
use waran_wasm::instance::{Instance, Linker};
use waran_wasm::interp::Value;
use waran_wasm::leb128;
use waran_wasm::types::ValType;
use waran_wasm::Trap;

proptest! {
    #[test]
    fn leb_unsigned_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        leb128::write_unsigned(&mut buf, v);
        let (got, n) = leb128::read_unsigned(&buf, 64).unwrap();
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn leb_signed_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        leb128::write_signed(&mut buf, v);
        let (got, n) = leb128::read_signed(&buf, 64).unwrap();
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn leb_u32_roundtrip(v in any::<u32>()) {
        let mut buf = Vec::new();
        leb128::write_unsigned(&mut buf, v as u64);
        let (got, _) = leb128::read_unsigned(&buf, 32).unwrap();
        prop_assert_eq!(got, v as u64);
    }

    #[test]
    fn leb_i32_roundtrip(v in any::<i32>()) {
        let mut buf = Vec::new();
        leb128::write_signed(&mut buf, v as i64);
        let (got, _) = leb128::read_signed(&buf, 32).unwrap();
        prop_assert_eq!(got, v as i64);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any input must produce Ok or Err, never a panic.
        let _ = waran_wasm::decode::decode_module(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_module(
        flip_at in 0usize..200,
        flip_to in any::<u8>(),
    ) {
        let mut bytes = waran_wasm::wat::assemble(r#"
          (module
            (memory 1)
            (global $g (mut i64) (i64.const 5))
            (func (export "f") (param i32 f64) (result i64)
              global.get $g
              local.get 0
              i64.extend_i32_s
              i64.add))
        "#).unwrap();
        if flip_at < bytes.len() {
            bytes[flip_at] = flip_to;
        }
        // Decode + validate + (if both pass) instantiate: no panics allowed.
        if let Ok(module) = waran_wasm::load_module(&bytes) {
            let _ = Instance::new(module.into(), &Linker::<()>::new(), ());
        }
    }
}

// ---------------------------------------------------------------------
// Differential expression evaluation
// ---------------------------------------------------------------------

/// A tiny expression AST over i64 with trapping division.
#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Param(usize),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    DivS(Box<Expr>, Box<Expr>),
    RemS(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, Box<Expr>),
    ShrS(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Reference semantics (mirrors the Wasm spec).
    fn eval(&self, params: &[i64]) -> Result<i64, Trap> {
        use Expr::*;
        Ok(match self {
            Const(v) => *v,
            Param(i) => params[*i],
            Add(a, b) => a.eval(params)?.wrapping_add(b.eval(params)?),
            Sub(a, b) => a.eval(params)?.wrapping_sub(b.eval(params)?),
            Mul(a, b) => a.eval(params)?.wrapping_mul(b.eval(params)?),
            DivS(a, b) => {
                let (a, b) = (a.eval(params)?, b.eval(params)?);
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                if a == i64::MIN && b == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                a.wrapping_div(b)
            }
            RemS(a, b) => {
                let (a, b) = (a.eval(params)?, b.eval(params)?);
                if b == 0 {
                    return Err(Trap::IntegerDivByZero);
                }
                a.wrapping_rem(b)
            }
            And(a, b) => a.eval(params)? & b.eval(params)?,
            Or(a, b) => a.eval(params)? | b.eval(params)?,
            Xor(a, b) => a.eval(params)? ^ b.eval(params)?,
            Shl(a, b) => a.eval(params)?.wrapping_shl(b.eval(params)? as u32),
            ShrS(a, b) => a.eval(params)?.wrapping_shr(b.eval(params)? as u32),
        })
    }

    /// Emit the expression onto the Wasm stack.
    fn emit(&self, code: &mut waran_wasm::builder::CodeEmitter) {
        use Expr::*;
        match self {
            Const(v) => {
                code.i64_const(*v);
            }
            Param(i) => {
                code.local_get(*i as u32);
            }
            Add(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_add();
            }
            Sub(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_sub();
            }
            Mul(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_mul();
            }
            DivS(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_div_s();
            }
            RemS(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_rem_s();
            }
            And(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_and();
            }
            Or(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_or();
            }
            Xor(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_xor();
            }
            Shl(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_shl();
            }
            ShrS(a, b) => {
                a.emit(code);
                b.emit(code);
                code.i64_shr_s();
            }
        }
    }
}

fn arb_expr(n_params: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Expr::Const),
        (0..n_params).prop_map(Expr::Param),
        // Small constants make division traps reachable but not dominant.
        (-4i64..5).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::DivS(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::RemS(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Shl(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::ShrS(a.into(), b.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn differential_expression_execution(
        expr in arb_expr(3),
        p0 in any::<i64>(),
        p1 in -100i64..100,
        p2 in any::<i64>(),
    ) {
        let params = [p0, p1, p2];

        // Compile: (func (param i64 i64 i64) (result i64) <expr>)
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[ValType::I64; 3], &[ValType::I64]);
        let f = mb.begin_func(sig);
        expr.emit(mb.code());
        mb.end_func().unwrap();
        mb.export_func("e", f);

        // Round-trip through the binary format to cover encode+decode too.
        let bytes = mb.finish_bytes().unwrap();
        let module = waran_wasm::load_module(&bytes).expect("builder output validates");
        let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();

        let wasm_result = inst.invoke("e", &[Value::I64(p0), Value::I64(p1), Value::I64(p2)]);
        let native_result = expr.eval(&params);

        match (wasm_result, native_result) {
            (Ok(Some(Value::I64(w))), Ok(n)) => prop_assert_eq!(w, n),
            (Err(wt), Err(nt)) => prop_assert_eq!(wt, nt),
            (w, n) => prop_assert!(false, "diverged: wasm={:?} native={:?}", w, n),
        }
    }

    #[test]
    fn builder_expressions_always_validate(expr in arb_expr(2)) {
        let mut mb = ModuleBuilder::new();
        let sig = mb.func_type(&[ValType::I64; 2], &[ValType::I64]);
        let f = mb.begin_func(sig);
        expr.emit(mb.code());
        mb.end_func().unwrap();
        mb.export_func("e", f);
        let module = mb.finish().unwrap();
        prop_assert!(waran_wasm::validate::validate(&module).is_ok());
    }

    #[test]
    fn module_binary_roundtrip(
        n_funcs in 1usize..5,
        n_locals in 0usize..8,
        mem_pages in 0u32..4,
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut mb = ModuleBuilder::new();
        if mem_pages > 0 {
            mb.memory(mem_pages, Some(mem_pages + 2));
            if !data.is_empty() {
                mb.data(0, &data);
            }
        }
        let sig = mb.func_type(&[ValType::I32], &[ValType::I32]);
        for i in 0..n_funcs {
            let f = mb.begin_func(sig);
            for _ in 0..n_locals {
                mb.local(ValType::I64);
            }
            mb.code().local_get(0).i32_const(i as i32).i32_add();
            mb.end_func().unwrap();
            mb.export_func(&format!("f{i}"), f);
        }
        let module = mb.finish().unwrap();
        let bytes = waran_wasm::encode::encode_module(&module);
        let back = waran_wasm::decode::decode_module(&bytes).unwrap();
        prop_assert_eq!(back, module);
    }

    #[test]
    fn fuel_monotone_in_workload(n in 1u32..200) {
        // More loop iterations must never consume less fuel.
        let src = r#"(module
          (func (export "w") (param $n i32)
            block $x
              loop $l
                local.get $n
                i32.eqz
                br_if $x
                local.get $n i32.const 1 i32.sub local.set $n
                br $l
              end
            end))"#;
        let bytes = waran_wasm::wat::assemble(src).unwrap();
        let module = waran_wasm::load_module(&bytes).unwrap();
        let consumed = |k: u32| {
            let mut inst = Instance::new(std::sync::Arc::new(module.clone()), &Linker::<()>::new(), ()).unwrap();
            inst.set_fuel(Some(10_000_000));
            inst.invoke("w", &[Value::I32(k as i32)]).unwrap();
            inst.fuel_consumed().unwrap()
        };
        prop_assert!(consumed(n + 1) > consumed(n));
    }

    #[test]
    fn memory_ops_respect_bounds(addr in any::<u32>(), pages in 1u32..3) {
        use waran_wasm::interp::Memory;
        use waran_wasm::types::Limits;
        let mut mem = Memory::new(Limits::new(pages, Some(pages)), u32::MAX).unwrap();
        let size = mem.size_bytes() as u64;
        let write = mem.write::<8>(addr, 0, [7; 8]);
        if (addr as u64) + 8 <= size {
            prop_assert!(write.is_ok());
            prop_assert_eq!(mem.read::<8>(addr, 0).unwrap(), [7; 8]);
        } else {
            let is_oob = matches!(write, Err(Trap::MemoryOutOfBounds { .. }));
            prop_assert!(is_oob);
        }
    }
}
