//! Spec corner cases for the VM: the behaviours that differentiate a
//! conformant WebAssembly implementation from a plausible-looking one.

use waran_wasm::instance::{Instance, Linker};
use waran_wasm::interp::Value;
use waran_wasm::{load_module, wat, Trap};

fn run(src: &str, name: &str, args: &[Value]) -> Result<Option<Value>, Trap> {
    let bytes = wat::assemble(src).expect("assembles");
    let module = load_module(&bytes).expect("validates");
    Instance::new(module.into(), &Linker::<()>::new(), ())
        .expect("instantiates")
        .invoke(name, args)
}

#[test]
fn branch_from_nested_blocks_carries_value() {
    // br 2 out of three nested blocks, carrying the outermost's result.
    let src = r#"(module
      (func (export "f") (result i32)
        block $a (result i32)
          block $b
            block $c
              i32.const 42
              br $a
            end
          end
          i32.const 0
        end))"#;
    assert_eq!(run(src, "f", &[]), Ok(Some(Value::I32(42))));
}

#[test]
fn loop_branch_restarts_not_exits() {
    // br to a loop label must re-enter the loop, not leave it.
    let src = r#"(module
      (func (export "f") (result i32)
        (local $i i32)
        loop $l (result i32)
          local.get $i
          i32.const 1
          i32.add
          local.tee $i
          i32.const 5
          i32.lt_s
          br_if $l
          local.get $i
        end))"#;
    assert_eq!(run(src, "f", &[]), Ok(Some(Value::I32(5))));
}

#[test]
fn unreachable_after_branch_is_dead() {
    // Code after an unconditional br never executes (would trap if it did).
    let src = r#"(module
      (func (export "f") (result i32)
        block $b (result i32)
          i32.const 7
          br $b
          unreachable
        end))"#;
    assert_eq!(run(src, "f", &[]), Ok(Some(Value::I32(7))));
}

#[test]
fn empty_if_arms() {
    let src = r#"(module
      (func (export "f") (param i32) (result i32)
        local.get 0
        if
        end
        i32.const 1))"#;
    assert_eq!(run(src, "f", &[Value::I32(1)]), Ok(Some(Value::I32(1))));
    assert_eq!(run(src, "f", &[Value::I32(0)]), Ok(Some(Value::I32(1))));
}

#[test]
fn else_only_executes_on_false() {
    let src = r#"(module
      (func (export "f") (param i32) (result i32)
        local.get 0
        if (result i32)
          i32.const 10
        else
          i32.const 20
        end))"#;
    assert_eq!(run(src, "f", &[Value::I32(5)]), Ok(Some(Value::I32(10))));
    assert_eq!(run(src, "f", &[Value::I32(0)]), Ok(Some(Value::I32(20))));
}

#[test]
fn memarg_offset_applies() {
    let src = r#"(module
      (memory 1)
      (data (i32.const 100) "\2a\00\00\00")
      (func (export "f") (result i32)
        i32.const 60
        i32.load offset=40))"#;
    assert_eq!(run(src, "f", &[]), Ok(Some(Value::I32(42))));
}

#[test]
fn memarg_offset_overflow_traps() {
    // Effective address addr + offset overflowing 32 bits is OOB.
    let src = r#"(module
      (memory 1)
      (func (export "f") (result i32)
        i32.const -1
        i32.load offset=100))"#;
    assert!(matches!(
        run(src, "f", &[]),
        Err(Trap::MemoryOutOfBounds { .. })
    ));
}

#[test]
fn unsigned_comparisons_differ_from_signed() {
    let src = r#"(module
      (func (export "lt_s") (param i32 i32) (result i32)
        local.get 0 local.get 1 i32.lt_s)
      (func (export "lt_u") (param i32 i32) (result i32)
        local.get 0 local.get 1 i32.lt_u))"#;
    // -1 < 1 signed, but 0xffffffff > 1 unsigned.
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();
    assert_eq!(
        inst.invoke("lt_s", &[Value::I32(-1), Value::I32(1)]),
        Ok(Some(Value::I32(1)))
    );
    assert_eq!(
        inst.invoke("lt_u", &[Value::I32(-1), Value::I32(1)]),
        Ok(Some(Value::I32(0)))
    );
}

#[test]
fn wrap_and_extend_are_exact() {
    let src = r#"(module
      (func (export "wrap") (param i64) (result i32)
        local.get 0 i32.wrap_i64)
      (func (export "ext_u") (param i32) (result i64)
        local.get 0 i64.extend_i32_u)
      (func (export "ext_s") (param i32) (result i64)
        local.get 0 i64.extend_i32_s))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();
    assert_eq!(
        inst.invoke("wrap", &[Value::I64(0x1_2345_6789)]),
        Ok(Some(Value::I32(0x2345_6789)))
    );
    assert_eq!(
        inst.invoke("ext_u", &[Value::I32(-1)]),
        Ok(Some(Value::I64(0xffff_ffff)))
    );
    assert_eq!(
        inst.invoke("ext_s", &[Value::I32(-1)]),
        Ok(Some(Value::I64(-1)))
    );
}

#[test]
fn partial_oob_store_traps_before_writing() {
    // A 4-byte store straddling the memory end must trap and (in this VM)
    // leave the in-bounds prefix untouched.
    let src = r#"(module
      (memory 1 1)
      (func (export "poke") (result i32)
        i32.const 65534
        i32.const -1
        i32.store
        i32.const 1)
      (func (export "peek") (result i32)
        i32.const 65532
        i32.load))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();
    assert!(inst.invoke("poke", &[]).is_err());
    assert_eq!(
        inst.invoke("peek", &[]),
        Ok(Some(Value::I32(0))),
        "no partial write"
    );
}

#[test]
fn float_arithmetic_ieee_corner_cases() {
    let src = r#"(module
      (func (export "div") (param f64 f64) (result f64)
        local.get 0 local.get 1 f64.div)
      (func (export "sqrt") (param f64) (result f64)
        local.get 0 f64.sqrt))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();
    // 1/0 = inf, -1/0 = -inf, 0/0 = NaN; float division never traps.
    let div = |inst: &mut Instance<()>, a: f64, b: f64| {
        inst.invoke("div", &[Value::F64(a), Value::F64(b)])
            .unwrap()
            .unwrap()
            .as_f64()
    };
    assert_eq!(div(&mut inst, 1.0, 0.0), f64::INFINITY);
    assert_eq!(div(&mut inst, -1.0, 0.0), f64::NEG_INFINITY);
    assert!(div(&mut inst, 0.0, 0.0).is_nan());
    let s = inst
        .invoke("sqrt", &[Value::F64(-1.0)])
        .unwrap()
        .unwrap()
        .as_f64();
    assert!(s.is_nan());
}

#[test]
fn nearest_rounds_ties_to_even() {
    let src = r#"(module
      (func (export "n") (param f64) (result f64)
        local.get 0 f64.nearest))"#;
    for (input, expect) in [
        (0.5, 0.0),
        (1.5, 2.0),
        (2.5, 2.0),
        (-0.5, 0.0),
        (-1.5, -2.0),
    ] {
        let got = run(src, "n", &[Value::F64(input)])
            .unwrap()
            .unwrap()
            .as_f64();
        assert_eq!(got, expect, "nearest({input})");
    }
}

#[test]
fn start_function_trap_fails_instantiation() {
    let src = r#"(module
      (func $boom unreachable)
      (start $boom))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let err = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap_err();
    assert!(matches!(
        err,
        waran_wasm::instance::InstantiateError::StartTrap(Trap::Unreachable)
    ));
}

#[test]
fn data_segment_out_of_bounds_fails_instantiation() {
    let src = r#"(module
      (memory 1 1)
      (data (i32.const 65534) "xyz"))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    assert!(matches!(
        Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap_err(),
        waran_wasm::instance::InstantiateError::DataSegmentOutOfBounds
    ));
}

#[test]
fn elem_segment_out_of_bounds_fails_instantiation() {
    let src = r#"(module
      (table 1 funcref)
      (func $f)
      (elem (i32.const 1) $f))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    assert!(matches!(
        Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap_err(),
        waran_wasm::instance::InstantiateError::ElemSegmentOutOfBounds
    ));
}

#[test]
fn locals_zero_initialized() {
    let src = r#"(module
      (func (export "f") (result i64)
        (local i64)
        local.get 0))"#;
    assert_eq!(run(src, "f", &[]), Ok(Some(Value::I64(0))));
}

#[test]
fn deep_recursion_unwinds_cleanly_after_trap() {
    // After a stack-overflow trap the instance remains usable.
    let src = r#"(module
      (func $inf (export "inf") (result i32) call $inf)
      (func (export "ok") (result i32) i32.const 5))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = load_module(&bytes).unwrap();
    let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();
    assert_eq!(inst.invoke("inf", &[]), Err(Trap::StackOverflow));
    assert_eq!(inst.invoke("ok", &[]), Ok(Some(Value::I32(5))));
}

#[test]
fn copysign_and_neg_affect_sign_bit_only() {
    let src = r#"(module
      (func (export "cs") (param f64 f64) (result f64)
        local.get 0 local.get 1 f64.copysign))"#;
    let got = run(src, "cs", &[Value::F64(3.5), Value::F64(-0.0)])
        .unwrap()
        .unwrap()
        .as_f64();
    assert_eq!(got, -3.5);
    // copysign on NaN keeps NaN-ness.
    let got = run(src, "cs", &[Value::F64(f64::NAN), Value::F64(-1.0)])
        .unwrap()
        .unwrap()
        .as_f64();
    assert!(got.is_nan() && got.is_sign_negative());
}

#[test]
fn i64_shift_masking_uses_six_bits() {
    let src = r#"(module
      (func (export "shl") (param i64 i64) (result i64)
        local.get 0 local.get 1 i64.shl))"#;
    // 64+1 masks to 1.
    assert_eq!(
        run(src, "shl", &[Value::I64(1), Value::I64(65)]),
        Ok(Some(Value::I64(2)))
    );
}

#[test]
fn globals_are_per_instance() {
    let src = r#"(module
      (global $g (mut i32) (i32.const 0))
      (func (export "bump") (result i32)
        global.get $g i32.const 1 i32.add global.set $g global.get $g))"#;
    let bytes = wat::assemble(src).unwrap();
    let module = std::sync::Arc::new(load_module(&bytes).unwrap());
    let mut a = Instance::new(module.clone(), &Linker::<()>::new(), ()).unwrap();
    let mut b = Instance::new(module, &Linker::<()>::new(), ()).unwrap();
    assert_eq!(a.invoke("bump", &[]), Ok(Some(Value::I32(1))));
    assert_eq!(a.invoke("bump", &[]), Ok(Some(Value::I32(2))));
    // Instance b's global is untouched by a's mutations.
    assert_eq!(b.invoke("bump", &[]), Ok(Some(Value::I32(1))));
}
