//! Seeded PlugC program generator shared by the differential suite and
//! the static-analysis soundness suite. Include with
//! `#[path = "util/gen.rs"] mod gen;`.
//!
//! The generator is seeded (xorshift64*), so the same corpus runs as a
//! deterministic sweep across suites: a seed means the same program to
//! every consumer.

pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    pub fn next(&mut self) -> u64 {
        // xorshift64* — deterministic, dependency-free.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const VARS: [&str; 4] = ["v0", "v1", "v2", "v3"];
const BINOPS: [&str; 16] = [
    "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=", ">", ">=",
];

/// A fully parenthesized i32 expression over the mutable variables.
/// Division and remainder are reachable, so traps are part of the corpus.
fn gen_expr(rng: &mut Rng, depth: u32) -> String {
    if depth == 0 || rng.below(3) == 0 {
        if rng.below(2) == 0 {
            VARS[rng.below(VARS.len() as u64) as usize].to_string()
        } else {
            format!("{}", rng.below(1 << 14))
        }
    } else {
        let op = BINOPS[rng.below(BINOPS.len() as u64) as usize];
        format!(
            "({} {} {})",
            gen_expr(rng, depth - 1),
            op,
            gen_expr(rng, depth - 1)
        )
    }
}

/// Statements: assignments, if/else, bounded while loops. Loop counters
/// (`c<depth>`) are reset before each loop and only incremented by the
/// loop itself, so every generated program terminates.
fn gen_stmts(rng: &mut Rng, depth: u32, loop_depth: usize, out: &mut String, indent: usize) {
    let pad = " ".repeat(indent);
    let n = 1 + rng.below(4);
    for _ in 0..n {
        match rng.below(6) {
            0..=2 => {
                let v = VARS[rng.below(VARS.len() as u64) as usize];
                out.push_str(&format!("{pad}{v} = {};\n", gen_expr(rng, 3)));
            }
            3 if depth > 0 => {
                out.push_str(&format!("{pad}if ({}) {{\n", gen_expr(rng, 2)));
                gen_stmts(rng, depth - 1, loop_depth, out, indent + 2);
                if rng.below(2) == 0 {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    gen_stmts(rng, depth - 1, loop_depth, out, indent + 2);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            4 if depth > 0 && loop_depth < 4 => {
                let c = format!("c{loop_depth}");
                let bound = 1 + rng.below(8);
                out.push_str(&format!("{pad}{c} = 0;\n"));
                out.push_str(&format!("{pad}while (({c} < {bound})) {{\n"));
                gen_stmts(rng, depth - 1, loop_depth + 1, out, indent + 2);
                out.push_str(&format!("{pad}  {c} = ({c} + 1);\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {}
        }
    }
}

/// One complete PlugC program per seed: `main(a, b)` over four mutable
/// variables and four loop counters, ending in a value that depends on
/// everything so no assignment is dead.
pub fn gen_program(seed: u64) -> String {
    let mut rng = Rng::new(seed);
    let mut body = String::new();
    gen_stmts(&mut rng, 3, 0, &mut body, 4);
    let k2 = rng.below(1 << 14);
    let k3 = rng.below(1 << 14);
    format!(
        "export fn main(a: i32, b: i32) -> i32 {{\n\
         \x20   var v0: i32 = a;\n\
         \x20   var v1: i32 = b;\n\
         \x20   var v2: i32 = {k2};\n\
         \x20   var v3: i32 = {k3};\n\
         \x20   var c0: i32 = 0;\n\
         \x20   var c1: i32 = 0;\n\
         \x20   var c2: i32 = 0;\n\
         \x20   var c3: i32 = 0;\n\
         {body}\
         \x20   return ((((v0 ^ v1) + v2) ^ v3) + ((c0 + c1) + (c2 + c3)));\n\
         }}\n"
    )
}
