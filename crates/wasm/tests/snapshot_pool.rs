//! Regression tests for the template memory pool behind
//! [`InstancePre`]: dropped instances re-zero their dirty prefix and
//! donate the buffer back, so a stamp-out after churn must be
//! bit-identical to the very first stamp-out — no matter what the
//! previous tenant wrote, filled, copied or grew.

use waran_wasm::instance::{ExecLimits, InstancePre, Linker};
use waran_wasm::interp::Value;
use waran_wasm::{load_module, wat};

const PAGE: u32 = 65536;

/// A module with a data segment, a mutable global and store/fill probes.
fn pool_module() -> InstancePre<()> {
    let bytes = wat::assemble(
        r#"(module
             (memory (export "memory") 1 4)
             (data (i32.const 64) "snapshot-image")
             (global $g (mut i32) (i32.const 7))
             (export "g" (global $g))
             (func (export "poke") (param i32 i32)
               local.get 0 local.get 1 i32.store)
             (func (export "bump") (result i32)
               global.get $g i32.const 1 i32.add global.set $g global.get $g)
             (func (export "grow") (result i32)
               i32.const 1 memory.grow))"#,
    )
    .expect("assembles");
    let module = load_module(&bytes).expect("validates");
    InstancePre::new(module.into(), &Linker::new(), ExecLimits::default()).expect("pre builds")
}

/// Full-memory image plus globals: everything a stamp-out must restore.
fn image(pre: &InstancePre<()>) -> (Vec<u8>, Value) {
    let inst = pre.instantiate(()).unwrap();
    let mem = inst.memory().read_bytes(0, PAGE).unwrap().to_vec();
    let g = inst.get_global("g").unwrap();
    (mem, g)
}

#[test]
fn restamp_after_mutation_matches_first_stamp() {
    let pre = pool_module();
    let (first_mem, first_g) = image(&pre);
    assert_eq!(&first_mem[64..78], b"snapshot-image");

    // Dirty a tenant far beyond the data segment, mutate its global, drop
    // it — the buffer goes back to the pool.
    {
        let mut inst = pre.instantiate(()).unwrap();
        inst.invoke("poke", &[Value::I32(0), Value::I32(-1)])
            .unwrap();
        inst.invoke(
            "poke",
            &[Value::I32((PAGE - 4) as i32), Value::I32(0x5a5a_5a5a)],
        )
        .unwrap();
        inst.invoke("bump", &[]).unwrap();
    }

    // The next stamp-out reuses that buffer and must be pristine.
    let (mem, g) = image(&pre);
    assert_eq!(
        mem, first_mem,
        "recycled buffer leaked a previous tenant's writes"
    );
    assert_eq!(g, first_g, "globals must be restamped from the snapshot");
}

#[test]
fn host_side_writes_are_reclaimed_too() {
    let pre = pool_module();
    let (first_mem, _) = image(&pre);

    // Dirty memory through every host-side mutation path — write_bytes,
    // fill, copy — at addresses the guest never touches.
    {
        let mut inst = pre.instantiate(()).unwrap();
        let mem = inst.memory_mut();
        mem.write_bytes(1000, b"host-dirt").unwrap();
        mem.fill(30_000, 0xaa, 512).unwrap();
        mem.copy(60_000, 64, 14).unwrap();
    }

    let (mem, _) = image(&pre);
    assert_eq!(mem, first_mem, "host-side writes leaked through the pool");
}

#[test]
fn grown_memories_are_not_recycled() {
    let pre = pool_module();

    // A tenant grows to 2 pages and writes into the grown page.
    {
        let mut inst = pre.instantiate(()).unwrap();
        assert_eq!(inst.invoke("grow", &[]).unwrap(), Some(Value::I32(1)));
        inst.invoke("poke", &[Value::I32((PAGE + 100) as i32), Value::I32(77)])
            .unwrap();
    }

    // The next stamp-out is back at the template's declared 1 page.
    let inst = pre.instantiate(()).unwrap();
    assert_eq!(inst.memory().size_pages(), 1);
    assert_eq!(
        &inst.memory().read_bytes(64, 14).unwrap(),
        &b"snapshot-image"
    );
}

#[test]
fn live_siblings_never_share_a_buffer() {
    let pre = pool_module();
    let mut a = pre.instantiate(()).unwrap();
    let b = pre.instantiate(()).unwrap();

    a.invoke("poke", &[Value::I32(128), Value::I32(0x0bad_f00d)])
        .unwrap();
    assert_eq!(b.memory().read::<4>(128, 0).unwrap(), [0; 4]);

    // And the template image itself is untouched by either tenant.
    drop(a);
    let c = pre.instantiate(()).unwrap();
    assert_eq!(c.memory().read::<4>(128, 0).unwrap(), [0; 4]);
}

#[test]
fn churn_reuses_buffers_without_unbounded_growth() {
    let pre = pool_module();
    // Interleaved stamp/drop churn with tenants that dirty their memory:
    // correctness (each stamp pristine) is the assertion; boundedness is
    // covered by the pool cap and the bench's RSS gate.
    let (first_mem, _) = image(&pre);
    for round in 0..100 {
        let mut inst = pre.instantiate(()).unwrap();
        inst.invoke("poke", &[Value::I32(4096), Value::I32(round)])
            .unwrap();
        let (mem, _) = image(&pre);
        assert_eq!(mem, first_mem, "round {round} saw a dirty stamp-out");
    }
}
