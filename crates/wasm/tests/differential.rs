//! Differential execution: the flat-IR compiled executor and the
//! register-form executor vs the reference instruction walker.
//!
//! Programs are generated in PlugC (the plugin language real workloads are
//! written in), compiled to Wasm, and run under all three [`ExecMode`]s.
//! The executors must agree on:
//!
//! * the result value (bit-for-bit) or the trap,
//! * `fuel_consumed()` and `ExecStats::instrs` on complete executions,
//! * `ExecStats::instrs` on `OutOfFuel` traps (the compiled executor
//!   retires exactly the remaining fuel before trapping, matching the
//!   per-instruction walker).
//!
//! On non-fuel traps that fire mid-block (e.g. division by zero) the two
//! modes may differ in fuel by less than one basic block — that is the
//! documented granularity change of block metering — so fuel is only
//! compared on completion and on fuel exhaustion.
//!
//! The generator is seeded (xorshift64*), so the same corpus runs both as a
//! deterministic sweep and, below, under proptest with random seeds.

use waran_wasm::builder::ModuleBuilder;
use waran_wasm::instance::{ExecMode, Instance, Linker};
use waran_wasm::interp::Value;
use waran_wasm::types::{BlockType, ValType};
use waran_wasm::{load_module, Trap};

#[path = "util/gen.rs"]
mod gen;
use gen::gen_program;

// ---------------------------------------------------------------------
// Three-mode runner
// ---------------------------------------------------------------------

type Outcome = (Result<Option<Value>, Trap>, Option<u64>, u64, u64);

fn exec_one(wasm: &[u8], mode: ExecMode, args: &[Value], fuel: u64) -> Outcome {
    let module = load_module(wasm).expect("generated module validates");
    let mut inst = Instance::new(module.into(), &Linker::<()>::new(), ()).unwrap();
    inst.set_exec_mode(mode);
    inst.set_fuel(Some(fuel));
    let out = inst.invoke("main", args);
    (
        out,
        inst.fuel_consumed(),
        inst.stats().instrs,
        inst.stats().traps,
    )
}

/// Run all three executors and assert the documented agreement contract.
/// Returns the fuel consumed when the program completed successfully.
fn assert_modes_agree(wasm: &[u8], args: &[Value], fuel: u64, ctx: &str) -> Option<u64> {
    let (r_res, r_fuel, r_instrs, r_traps) = exec_one(wasm, ExecMode::Reference, args, fuel);
    for mode in [ExecMode::Compiled, ExecMode::Reg] {
        let (c_res, c_fuel, c_instrs, c_traps) = exec_one(wasm, mode, args, fuel);
        assert_eq!(r_res, c_res, "result diverged vs {mode:?} ({ctx})");
        assert_eq!(r_traps, c_traps, "trap count diverged vs {mode:?} ({ctx})");
        match &r_res {
            Ok(_) => {
                assert_eq!(
                    r_fuel, c_fuel,
                    "fuel diverged on success vs {mode:?} ({ctx})"
                );
                assert_eq!(
                    r_instrs, c_instrs,
                    "instrs diverged on success vs {mode:?} ({ctx})"
                );
            }
            Err(Trap::OutOfFuel) => {
                assert_eq!(
                    r_fuel, c_fuel,
                    "fuel diverged on exhaustion vs {mode:?} ({ctx})"
                );
                assert_eq!(
                    r_instrs, c_instrs,
                    "instrs diverged on exhaustion vs {mode:?} ({ctx})"
                );
            }
            // Mid-block traps: fuel may differ by < 1 block (documented).
            Err(_) => {}
        }
    }
    match &r_res {
        Ok(_) => r_fuel,
        Err(_) => None,
    }
}

/// The full contract for one generated program: agreement at a generous
/// fuel budget, then — if it completed — agreement on the `OutOfFuel`
/// path by rerunning with half the consumed fuel.
fn check_seed(seed: u64, a: i32, b: i32) {
    let src = gen_program(seed);
    let wasm = waran_plugc::compile(&src)
        .unwrap_or_else(|e| panic!("seed {seed}: plugc rejected generated program: {e}\n{src}"));
    let args = [Value::I32(a), Value::I32(b)];
    let ctx = format!("seed {seed}, args ({a}, {b})");
    if let Some(consumed) = assert_modes_agree(&wasm, &args, 5_000_000, &ctx) {
        if consumed > 1 {
            assert_modes_agree(&wasm, &args, consumed / 2, &format!("{ctx}, half fuel"));
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic corpus (runs with no external dev-dependencies)
// ---------------------------------------------------------------------

#[test]
fn differential_seed_sweep() {
    for seed in 0..300u64 {
        let a = (seed as i32).wrapping_mul(-0x61c8_8647);
        let b = (seed as i32).wrapping_mul(0x0101_0101) ^ 0x55;
        check_seed(seed, a, b);
    }
}

#[test]
fn differential_edge_arguments() {
    for seed in [3, 17, 99, 1234, 0xdead_beef] {
        for &(a, b) in &[
            (0, 0),
            (i32::MIN, -1),
            (i32::MAX, i32::MIN),
            (-1, 1),
            (i32::MIN, i32::MIN),
        ] {
            check_seed(seed, a, b);
        }
    }
}

#[test]
fn differential_br_table() {
    // PlugC never emits br_table, so cover the side-table interning path
    // with a hand-built switch: three nested blocks, br_table over them.
    let mut mb = ModuleBuilder::new();
    let sig = mb.func_type(&[ValType::I32], &[ValType::I32]);
    let f = mb.begin_func(sig);
    mb.code()
        .block(BlockType::Empty)
        .block(BlockType::Empty)
        .block(BlockType::Empty)
        .local_get(0)
        .br_table(&[0, 1], 2)
        .end()
        .i32_const(10)
        .return_()
        .end()
        .i32_const(20)
        .return_()
        .end()
        .i32_const(30);
    mb.end_func().unwrap();
    mb.export_func("main", f);
    let wasm = mb.finish_bytes().unwrap();

    for sel in [0, 1, 2, 7, -1] {
        let args = [Value::I32(sel)];
        assert_modes_agree(&wasm, &args, 1_000_000, &format!("br_table sel {sel}"));
    }
    // Spot-check the actual values through the compiled executor.
    let (res, _, _, _) = exec_one(&wasm, ExecMode::Compiled, &[Value::I32(1)], 1_000_000);
    assert_eq!(res, Ok(Some(Value::I32(20))));
    let (res, _, _, _) = exec_one(&wasm, ExecMode::Compiled, &[Value::I32(9)], 1_000_000);
    assert_eq!(res, Ok(Some(Value::I32(30))));
}

#[test]
fn differential_scheduler_shape() {
    // The fig. 5 hot shape: pointer-walking loop over packed records with
    // an accumulating comparison — exercises the local.get+load and
    // compare+br_if superinstructions together.
    let src = r#"
export fn main(n: i32, base: i32) -> i32 {
    var i: i32 = 0;
    var best: i32 = 0 - 2147483647;
    var best_at: i32 = 0;
    while (i < n) {
        store_i32(base + i * 8, i * 37);
        store_i32(base + i * 8 + 4, (i * 1103515245) >> 16);
        i = i + 1;
    }
    i = 0;
    while (i < n) {
        var w: i32 = load_i32(base + i * 8 + 4);
        if (w > best) {
            best = w;
            best_at = load_i32(base + i * 8);
        }
        i = i + 1;
    }
    return best_at + best;
}
"#;
    let wasm = waran_plugc::compile(src).expect("scheduler shape compiles");
    for n in [0, 1, 7, 64, 500] {
        let args = [Value::I32(n), Value::I32(64)];
        let consumed = assert_modes_agree(&wasm, &args, 5_000_000, &format!("scheduler n={n}"));
        if let Some(consumed) = consumed {
            if consumed > 1 {
                assert_modes_agree(
                    &wasm,
                    &args,
                    consumed / 2,
                    &format!("scheduler n={n}, half fuel"),
                );
            }
        }
    }
}

#[test]
fn differential_leaf_calls() {
    // Straight-line leaf helpers are inlined by the compiler; fuel parity
    // must survive that (call = 1, each body instruction = 1, the
    // return/end terminator = 1 — identical to the reference walker
    // running the call for real). `mix` keeps an `if` so it stays a real
    // call, covering the inlined-and-not path in one program.
    let src = r#"
fn weight(x: i32, y: i32) -> i32 {
    return (x * 3) + (y ^ 5);
}
fn probe(addr: i32) -> i32 {
    store_i32(addr, addr * 7);
    return load_i32(addr) + 1;
}
fn mix(a: i32, b: i32) -> i32 {
    if (a > b) {
        return weight(a, b);
    }
    return weight(b, a);
}
export fn main(n: i32, base: i32) -> i32 {
    var i: i32 = 0;
    var acc: i32 = 0;
    while (i < n) {
        acc = acc + weight(i, acc);
        acc = acc + probe(base + i * 4);
        acc = acc + mix(i, acc);
        i = i + 1;
    }
    return acc;
}
"#;
    let wasm = waran_plugc::compile(src).expect("leaf-call program compiles");
    for n in [0, 1, 5, 40] {
        let args = [Value::I32(n), Value::I32(96)];
        let consumed = assert_modes_agree(&wasm, &args, 5_000_000, &format!("leaf calls n={n}"));
        if let Some(consumed) = consumed {
            if consumed > 1 {
                assert_modes_agree(
                    &wasm,
                    &args,
                    consumed / 2,
                    &format!("leaf calls n={n}, half fuel"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Randomized corpus (proptest)
// ---------------------------------------------------------------------

mod proptests {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn differential_random_plugc(
            seed in any::<u64>(),
            a in any::<i32>(),
            b in any::<i32>(),
        ) {
            super::check_seed(seed, a, b);
        }
    }
}
