//! Concurrency tests for the plugin host: the Fig. 5b claim is that
//! operators push new plugins while the gNB schedules. Here the scheduler
//! loop and the swapper genuinely race on different threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use waran_host::plugin::{Plugin, SandboxPolicy};
use waran_host::PluginHost;
use waran_wasm::instance::Linker;

fn plugin_returning(byte: u8) -> Plugin<()> {
    let src = format!(
        r#"export fn run(ptr: i32, len: i32) -> i64 {{
            var out: i32 = wrn_alloc(1);
            store_u8(out, {byte});
            return pack(out, 1);
        }}"#
    );
    let wasm = waran_plugc::compile(&src).expect("compiles");
    Plugin::new(&wasm, &Linker::new(), (), SandboxPolicy::default()).expect("instantiates")
}

#[test]
fn swap_races_with_calls_without_torn_results() {
    let host: Arc<PluginHost<()>> = Arc::new(PluginHost::new());
    host.install("p", plugin_returning(b'A'));

    let stop = Arc::new(AtomicBool::new(false));

    // Caller thread: hammers the plugin, recording every answer.
    let caller = {
        let host = host.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut answers = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let out = host.call("p", "run", &[]).expect("plugin always callable");
                answers.push(out[0]);
            }
            answers
        })
    };

    // Swapper thread: flips the plugin back and forth.
    let swapper = {
        let host = host.clone();
        thread::spawn(move || {
            for i in 0..50 {
                let byte = if i % 2 == 0 { b'B' } else { b'A' };
                host.install("p", plugin_returning(byte));
                thread::sleep(Duration::from_millis(1));
            }
        })
    };

    swapper.join().expect("swapper finishes");
    stop.store(true, Ordering::Relaxed);
    let answers = caller.join().expect("caller finishes");

    // Every observed answer is a complete response from *some* installed
    // version — never torn, never an error.
    assert!(!answers.is_empty());
    assert!(answers.iter().all(|b| *b == b'A' || *b == b'B'));
    // Both versions were actually observed (the swap is not a no-op).
    assert!(answers.contains(&b'A'));
    assert!(answers.contains(&b'B'));
    assert_eq!(host.health("p").expect("slot exists").swaps, 50);
}

#[test]
fn concurrent_calls_to_different_plugins_do_not_serialize_errors() {
    let host: Arc<PluginHost<()>> = Arc::new(PluginHost::new());
    for i in 0..4 {
        host.install(&format!("p{i}"), plugin_returning(b'0' + i));
    }
    let mut handles = Vec::new();
    for i in 0..4u8 {
        let host = host.clone();
        handles.push(thread::spawn(move || {
            let name = format!("p{i}");
            for _ in 0..500 {
                let out = host.call(&name, "run", &[]).expect("callable");
                assert_eq!(out[0], b'0' + i, "cross-slot contamination");
            }
        }));
    }
    for h in handles {
        h.join().expect("worker finishes");
    }
    for i in 0..4 {
        assert_eq!(host.health(&format!("p{i}")).expect("slot").calls_ok, 500);
    }
}

#[test]
fn quarantine_is_race_free() {
    // Many threads hammer a crashing plugin; the quarantine threshold must
    // not be bypassed by interleaving.
    let host: Arc<PluginHost<()>> = Arc::new(PluginHost::with_quarantine_after(5));
    let wasm =
        waran_plugc::compile("export fn run(ptr: i32, len: i32) -> i64 { trap(); return 0i64; }")
            .expect("compiles");
    host.install(
        "bad",
        Plugin::new(&wasm, &Linker::new(), (), SandboxPolicy::default()).expect("instantiates"),
    );

    let mut handles = Vec::new();
    for _ in 0..4 {
        let host = host.clone();
        handles.push(thread::spawn(move || {
            let mut guest_faults = 0u64;
            for _ in 0..100 {
                match host.call("bad", "run", &[]) {
                    Err(waran_host::PluginError::Trap(_)) => guest_faults += 1,
                    Err(waran_host::PluginError::Quarantined { .. }) => {}
                    other => panic!("unexpected: {other:?}"),
                }
            }
            guest_faults
        }));
    }
    let total_guest_faults: u64 = handles.into_iter().map(|h| h.join().expect("joins")).sum();
    // Exactly the threshold ran guest code; everything after was refused.
    assert_eq!(total_guest_faults, 5);
    assert_eq!(host.health("bad").expect("slot").total_faults, 5);
}
