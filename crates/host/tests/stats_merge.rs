//! Property tests for mergeable statistics: sharded accumulation must be
//! indistinguishable (exactly, for exact accumulators; within estimator
//! tolerance, for P²) from feeding one accumulator sequentially. This is
//! what lets the multi-cell engine keep per-worker stats lock-free and
//! merge after the join.

use std::time::Duration;

use proptest::prelude::*;
use waran_host::{ExactQuantiles, ExecTimeStats, P2Quantile, ShardedExecStats};

/// Exact pooled quantile by sorting, the ground truth the estimators are
/// compared against.
fn pooled_quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

proptest! {
    #[test]
    fn exact_merge_equals_single_accumulator(
        xs in proptest::collection::vec(0.0f64..1000.0, 0..120),
        ys in proptest::collection::vec(0.0f64..1000.0, 0..120),
    ) {
        let mut left = ExactQuantiles::new();
        let mut right = ExactQuantiles::new();
        for &x in &xs {
            left.record(x);
        }
        for &y in &ys {
            right.record(y);
        }
        left.merge(&right);

        let mut single = ExactQuantiles::new();
        for &v in xs.iter().chain(ys.iter()) {
            single.record(v);
        }

        prop_assert_eq!(left.count(), single.count());
        prop_assert!((left.mean() - single.mean()).abs() <= 1e-9 * single.mean().abs().max(1.0));
        prop_assert_eq!(left.max(), single.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            // Both sides sort the identical multiset: exact equality.
            prop_assert_eq!(left.quantile(q), single.quantile(q));
        }
    }

    #[test]
    fn p2_merge_tracks_pooled_sample_quantiles(
        xs in proptest::collection::vec(0.0f64..1000.0, 0..150),
        ys in proptest::collection::vec(0.0f64..1000.0, 0..150),
    ) {
        let mut left = P2Quantile::new(0.5);
        let mut right = P2Quantile::new(0.5);
        for &x in &xs {
            left.record(x);
        }
        for &y in &ys {
            right.record(y);
        }
        left.merge(&right);

        let pooled: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(left.count(), pooled.len());
        if pooled.is_empty() {
            return Ok(());
        }
        let min = pooled.iter().copied().fold(f64::INFINITY, f64::min);
        let max = pooled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let est = left.value();
        prop_assert!(est >= min && est <= max, "estimate {est} outside [{min}, {max}]");
        if pooled.len() >= 10 {
            // P² is an estimator; on uniform draws its median stays well
            // inside a 15%-of-range band around the exact pooled median.
            let exact = pooled_quantile(&pooled, 0.5);
            let tol = 0.15 * (max - min) + 1e-9;
            prop_assert!(
                (est - exact).abs() <= tol,
                "merged p50 {est} vs pooled {exact} (tol {tol})"
            );
        }
    }

    #[test]
    fn sharded_exec_stats_merge_matches_single(
        samples in proptest::collection::vec((0u8..4, 1_000u64..2_000_000), 0..200),
    ) {
        let mut sharded = ShardedExecStats::new(4);
        let mut single = ExecTimeStats::new();
        for &(worker, nanos) in &samples {
            let d = Duration::from_nanos(nanos);
            sharded.record(worker as usize, d);
            single.record(d);
        }
        let merged = sharded.merged();

        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.min_us(), single.min_us());
        prop_assert_eq!(merged.max_us(), single.max_us());
        // Summation order differs between the sharded and single paths;
        // the means agree to floating-point round-off.
        prop_assert!(
            (merged.mean_us() - single.mean_us()).abs()
                <= 1e-9 * single.mean_us().abs().max(1.0)
        );
        if samples.len() >= 10 {
            let us: Vec<f64> = samples.iter().map(|&(_, ns)| ns as f64 / 1000.0).collect();
            let min = us.iter().copied().fold(f64::INFINITY, f64::min);
            let max = us.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let tol = 0.2 * (max - min) + 1e-9;
            let exact = pooled_quantile(&us, 0.5);
            prop_assert!(
                (merged.p50_us() - exact).abs() <= tol,
                "sharded p50 {} vs pooled {exact} (tol {tol})",
                merged.p50_us()
            );
        }
    }
}
