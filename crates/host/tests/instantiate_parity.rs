//! Snapshot-instantiation parity: stamping a plugin out of a cached
//! [`PluginPre`] snapshot must be observationally identical to a cold
//! decode → validate → segment-init pass over the same bytes.
//!
//! Modules are generated randomly over [`ModuleBuilder`] (memories with
//! data segments, mutable/immutable globals of every type, tables with
//! element segments, start functions that mutate state per instance) and
//! the suite pins down, per module:
//!
//! * bit-identical linear memory, globals and export surface between the
//!   cold path and snapshot stamp-outs;
//! * identical trap/error behavior — both for guest-visible traps
//!   (out-of-bounds loads) and for instantiation-time failures
//!   (out-of-bounds segments);
//! * isolation: mutating one stamped instance never leaks into siblings,
//!   later stamp-outs, or the snapshot itself.

use proptest::prelude::*;
use waran_host::plugin::{Plugin, PluginError, SandboxPolicy};
use waran_host::{Linker as HostLinker, ModuleCache, PluginPre};
use waran_wasm::builder::ModuleBuilder;
use waran_wasm::instance::{InstantiateError, Linker};
use waran_wasm::interp::Value;
use waran_wasm::module::ConstExpr;
use waran_wasm::types::{Mutability, ValType, PAGE_SIZE};

// ---------------------------------------------------------------------
// Seeded random module generator
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — deterministic, dependency-free.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// What the generator promises about a module, so the parity harness
/// knows what to compare.
struct Shape {
    /// Exported global names (`"g0"`, `"g1"`, …).
    globals: Vec<String>,
    /// Initial memory pages.
    pages: u32,
}

/// A random module: 1-2 pages of memory seeded by 0-4 data segments,
/// 0-5 exported globals of every type, an optional table + element
/// segment, `peek`/`poke` memory accessors, an optional `bump` over the
/// first mutable i32 global, and (half the time) a start function that
/// stamps per-instance state into memory and globals.
fn build_module(seed: u64) -> (Vec<u8>, Shape) {
    let mut rng = Rng::new(seed);
    let mut mb = ModuleBuilder::new();

    let pages = 1 + rng.below(2) as u32;
    let max = if rng.below(2) == 0 {
        Some(pages + rng.below(3) as u32)
    } else {
        None
    };
    mb.memory(pages, max);
    mb.export_memory("memory");

    // Data segments, always in bounds here (the error-parity test below
    // builds the hostile ones deliberately).
    for _ in 0..rng.below(5) {
        let len = 1 + rng.below(64) as usize;
        let offset = rng.below((pages as u64 * PAGE_SIZE as u64) - len as u64) as i32;
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        mb.data(offset, &bytes);
    }

    // Globals of every type; floats come from small integers so `Value`
    // equality is NaN-free.
    let mut globals = Vec::new();
    let mut mut_i32 = None;
    for i in 0..rng.below(6) {
        let mutability = if rng.below(2) == 0 {
            Mutability::Var
        } else {
            Mutability::Const
        };
        let (ty, init) = match rng.below(4) {
            0 => (ValType::I32, ConstExpr::I32(rng.next() as i32)),
            1 => (ValType::I64, ConstExpr::I64(rng.next() as i64)),
            2 => (
                ValType::F32,
                ConstExpr::F32(rng.below(1 << 20) as f32 * 0.5),
            ),
            _ => (
                ValType::F64,
                ConstExpr::F64(rng.below(1 << 20) as f64 * 0.25),
            ),
        };
        let idx = mb.global(ty, mutability, init);
        if mut_i32.is_none() && mutability == Mutability::Var && ty == ValType::I32 {
            mut_i32 = Some(idx);
        }
        let name = format!("g{i}");
        mb.export_global(&name, idx);
        globals.push(name);
    }

    // peek(addr) -> i32: the probe the harness compares memories with.
    let peek_ty = mb.func_type(&[ValType::I32], &[ValType::I32]);
    let peek = mb.begin_func(peek_ty);
    mb.code().local_get(0).i32_load(0);
    mb.end_func().unwrap();
    mb.export_func("peek", peek);

    // poke(addr, v): the mutation the isolation tests drive.
    let poke_ty = mb.func_type(&[ValType::I32, ValType::I32], &[]);
    let poke = mb.begin_func(poke_ty);
    mb.code().local_get(0).local_get(1).i32_store(0);
    mb.end_func().unwrap();
    mb.export_func("poke", poke);

    // bump() -> i32 over the first mutable i32 global, when one exists.
    if let Some(g) = mut_i32 {
        let bump_ty = mb.func_type(&[], &[ValType::I32]);
        let bump = mb.begin_func(bump_ty);
        mb.code()
            .global_get(g)
            .i32_const(1)
            .i32_add()
            .global_set(g)
            .global_get(g);
        mb.end_func().unwrap();
        mb.export_func("bump", bump);
    }

    // Optional table + element segment over the functions defined so far.
    if rng.below(2) == 0 {
        let slots = 2 + rng.below(6) as u32;
        mb.table(slots, Some(slots));
        let offset = rng.below(slots as u64 - 1) as i32;
        mb.elem(offset, &[peek]);
    }

    // Half the modules run per-instance start-time mutation: a byte
    // stamped into memory, plus a global bump when available. The start
    // function runs per stamp-out on *both* paths, so parity must hold.
    if rng.below(2) == 0 {
        let start_ty = mb.func_type(&[], &[]);
        let start = mb.begin_func(start_ty);
        let addr = rng.below(pages as u64 * PAGE_SIZE as u64 - 4) as i32;
        mb.code()
            .i32_const(addr)
            .i32_const(rng.next() as i32)
            .i32_store(0);
        if let Some(g) = mut_i32 {
            mb.code().global_get(g).i32_const(7).i32_add().global_set(g);
        }
        mb.end_func().unwrap();
        mb.start(start);
    }

    let bytes = mb.finish_bytes().expect("generated module encodes");
    (bytes, Shape { globals, pages })
}

// ---------------------------------------------------------------------
// Parity harness
// ---------------------------------------------------------------------

fn policy() -> SandboxPolicy {
    SandboxPolicy::default()
}

/// Full observable-state comparison between two plugins.
fn assert_same_state(a: &Plugin<()>, b: &Plugin<()>, shape: &Shape, what: &str) {
    let mem_a = a
        .instance()
        .memory()
        .read_bytes(0, (shape.pages as usize * PAGE_SIZE) as u32)
        .unwrap();
    let mem_b = b
        .instance()
        .memory()
        .read_bytes(0, (shape.pages as usize * PAGE_SIZE) as u32)
        .unwrap();
    assert!(mem_a == mem_b, "{what}: linear memory diverged");
    for g in &shape.globals {
        assert_eq!(
            a.instance().get_global(g),
            b.instance().get_global(g),
            "{what}: global {g} diverged"
        );
    }
    for export in ["peek", "poke", "bump", "absent"] {
        assert_eq!(
            a.has_export(export),
            b.has_export(export),
            "{what}: export surface diverged at `{export}`"
        );
    }
}

/// Drive both plugins through the same probe calls; results (including
/// traps) must match bit for bit.
fn assert_same_behavior(a: &mut Plugin<()>, b: &mut Plugin<()>, shape: &Shape, what: &str) {
    let probes = [
        0,
        17,
        (shape.pages as i32 * PAGE_SIZE as i32) - 4,
        // Past the end: both must trap identically.
        shape.pages as i32 * PAGE_SIZE as i32,
        i32::MAX,
    ];
    for addr in probes {
        let ra = a.instance_mut().invoke("peek", &[Value::I32(addr)]);
        let rb = b.instance_mut().invoke("peek", &[Value::I32(addr)]);
        assert_eq!(ra, rb, "{what}: peek({addr}) diverged");
    }
    if a.has_export("bump") {
        for _ in 0..3 {
            let ra = a.instance_mut().invoke("bump", &[]);
            let rb = b.instance_mut().invoke("bump", &[]);
            assert_eq!(ra, rb, "{what}: bump diverged");
        }
    }
}

/// The core property, factored so the deterministic sweep and proptest
/// share it.
fn check_parity(seed: u64) {
    let (bytes, shape) = build_module(seed);

    // Cold: full decode/validate/init per instance.
    let mut cold = Plugin::new(&bytes, &Linker::new(), (), policy()).unwrap();

    // Template: resolve + snapshot once, stamp thrice.
    let cache = ModuleCache::new();
    let module = cache.load(&bytes).unwrap();
    let pre = HostLinker::<()>::new()
        .instantiate_pre(module, policy())
        .unwrap();
    assert!(pre.has_snapshot());
    let mut s1 = pre.instantiate(()).unwrap();
    let mut s2 = pre.instantiate(()).unwrap();

    assert_same_state(&cold, &s1, &shape, "cold vs stamp");
    assert_same_state(&s1, &s2, &shape, "stamp vs sibling stamp");

    // Mutate s1 heavily: memory pokes + global bumps. Siblings, later
    // stamp-outs and the cold path must not see any of it.
    s1.instance_mut()
        .invoke("poke", &[Value::I32(64), Value::I32(seed as i32 | 1)])
        .unwrap();
    if s1.has_export("bump") {
        s1.instance_mut().invoke("bump", &[]).unwrap();
    }
    assert_same_state(&cold, &s2, &shape, "sibling after mutation");
    let mut s3 = pre.instantiate(()).unwrap();
    assert_same_state(&cold, &s3, &shape, "fresh stamp after mutation");

    // Behavioral parity, on the untouched pair (these calls mutate).
    assert_same_behavior(&mut cold, &mut s2, &shape, "cold vs stamp");

    // Snapshot-off templates are the same machine, minus the memcpy.
    let module = cache.load(&bytes).unwrap();
    let off = PluginPre::with_snapshot(module, &Linker::new(), policy(), false).unwrap();
    assert!(!off.has_snapshot());
    let mut o1 = off.instantiate(()).unwrap();
    assert_same_state(&s3, &o1, &shape, "snapshot-on vs snapshot-off");
    assert_same_behavior(&mut s3, &mut o1, &shape, "snapshot-on vs snapshot-off");
}

// ---------------------------------------------------------------------
// Deterministic sweep + randomized corpus
// ---------------------------------------------------------------------

#[test]
fn parity_sweep_deterministic() {
    for seed in 0..200u64 {
        check_parity(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parity_random_seeds(seed in any::<u64>()) {
        check_parity(seed);
    }

    #[test]
    fn oob_data_segment_errors_match(seed in any::<u64>(), past in 1u32..1024) {
        // A data segment ending past the initial memory must fail the
        // same way on the cold path and at template build.
        let mut rng = Rng::new(seed);
        let mut mb = ModuleBuilder::new();
        mb.memory(1, Some(1));
        let len = 1 + rng.below(16) as usize;
        mb.data((PAGE_SIZE as u32 + past - len as u32) as i32, &vec![0xAB; len]);
        let bytes = mb.finish_bytes().unwrap();

        let cold = Plugin::new(&bytes, &Linker::<()>::new(), (), policy()).unwrap_err();
        let cache = ModuleCache::new();
        let module = cache.load(&bytes).unwrap();
        let template = HostLinker::<()>::new()
            .instantiate_pre(module, policy())
            .unwrap_err();
        prop_assert_eq!(&cold, &template);
        prop_assert_eq!(
            cold,
            PluginError::Instantiate(InstantiateError::DataSegmentOutOfBounds)
        );
    }

    #[test]
    fn oob_elem_segment_errors_match(slots in 1u32..8, past in 1u32..16) {
        let mut mb = ModuleBuilder::new();
        mb.memory(1, Some(1));
        let ty = mb.func_type(&[], &[]);
        let f = mb.begin_func(ty);
        mb.end_func().unwrap();
        mb.export_func("f", f);
        mb.table(slots, Some(slots));
        mb.elem((slots + past - 1) as i32, &[f]);
        let bytes = mb.finish_bytes().unwrap();

        let cold = Plugin::new(&bytes, &Linker::<()>::new(), (), policy()).unwrap_err();
        let cache = ModuleCache::new();
        let module = cache.load(&bytes).unwrap();
        let template = HostLinker::<()>::new()
            .instantiate_pre(module, policy())
            .unwrap_err();
        prop_assert_eq!(&cold, &template);
        prop_assert_eq!(
            cold,
            PluginError::Instantiate(InstantiateError::ElemSegmentOutOfBounds)
        );
    }

    #[test]
    fn missing_import_errors_match(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let mut mb = ModuleBuilder::new();
        let ty = mb.func_type(&[ValType::I32], &[]);
        let name = format!("host_fn_{}", rng.below(1000));
        mb.import_func("env", &name, ty).unwrap();
        mb.memory(1, None);
        let bytes = mb.finish_bytes().unwrap();

        let cold = Plugin::new(&bytes, &Linker::<()>::new(), (), policy()).unwrap_err();
        let cache = ModuleCache::new();
        let module = cache.load(&bytes).unwrap();
        let template = HostLinker::<()>::new()
            .instantiate_pre(module, policy())
            .unwrap_err();
        prop_assert_eq!(&cold, &template);
        prop_assert_eq!(
            cold,
            PluginError::Instantiate(InstantiateError::MissingImport {
                module: "env".into(),
                name,
            })
        );
    }
}
