//! Integration tests: PlugC-compiled plugins running under the host's
//! sandbox policies — the mechanics behind the paper's §5.B–§5.E results.

use std::time::Duration;

use waran_abi::sched::{Allocation, SchedRequest, SchedResponse, UeInfo};
use waran_host::plugin::{Plugin, PluginError, SandboxPolicy};
use waran_host::{PluginHost, SlotState};
use waran_wasm::instance::Linker;
use waran_wasm::Trap;

fn compile(src: &str) -> Vec<u8> {
    waran_plugc::compile(src).expect("plugin compiles")
}

fn plugin(src: &str) -> Plugin<()> {
    Plugin::new(&compile(src), &Linker::new(), (), SandboxPolicy::default()).expect("instantiates")
}

fn ue(id: u32, mcs: u8, avg: f64) -> UeInfo {
    UeInfo {
        ue_id: id,
        cqi: 10,
        mcs,
        flags: 0,
        buffer_bytes: 1_000_000,
        avg_tput_bps: avg,
        prb_capacity_bits: 20_000.0 * (mcs as f64 + 2.0),
    }
}

/// A round-robin intra-slice scheduler in PlugC against the documented ABI
/// offsets (see waran-abi::sched).
const RR_PLUGIN: &str = r#"
global next: i32 = 0;

export fn schedule(req: i32, len: i32) -> i64 {
    var n: i32 = load_u8(req + 4) | (load_u8(req + 5) << 8);
    var prbs: i32 = load_i32(req + 16);
    var out: i32 = wrn_alloc(8 + n * 8);
    // Response header: magic 0x5752, version 1, count n, reserved.
    store_u8(out, 0x52); store_u8(out + 1, 0x57);
    store_u8(out + 2, 1); store_u8(out + 3, 0);
    store_u8(out + 4, n & 255); store_u8(out + 5, (n >> 8) & 255);
    store_u8(out + 6, 0); store_u8(out + 7, 0);
    if (n == 0) { return pack(out, 8); }
    var share: i32 = prbs / n;
    var extra: i32 = prbs - share * n;
    var i: i32 = 0;
    while (i < n) {
        var idx: i32 = (next + i) % n;
        var rec: i32 = req + 24 + idx * 32;
        var slot: i32 = out + 8 + i * 8;
        store_i32(slot, load_i32(rec));        // ue_id
        var give: i32 = share;
        if (i < extra) { give = give + 1; }
        store_u8(slot + 4, give & 255);
        store_u8(slot + 5, (give >> 8) & 255);
        store_u8(slot + 6, i & 255);            // priority by position
        store_u8(slot + 7, 0);
        i = i + 1;
    }
    next = (next + 1) % n;
    return pack(out, 8 + n * 8);
}
"#;

#[test]
fn byte_abi_echo() {
    let mut p = plugin(r#"export fn run(ptr: i32, len: i32) -> i64 { return pack(ptr, len); }"#);
    assert_eq!(p.call("run", b"abc123").unwrap(), b"abc123");
    assert_eq!(p.call("run", &[]).unwrap(), b"");
    assert!(p.last_call_duration().is_some());
}

#[test]
fn byte_abi_transform() {
    // Reverse the input buffer into a fresh allocation.
    let mut p = plugin(
        r#"
        export fn run(ptr: i32, len: i32) -> i64 {
            var out: i32 = wrn_alloc(len);
            var i: i32 = 0;
            while (i < len) {
                store_u8(out + i, load_u8(ptr + len - 1 - i));
                i = i + 1;
            }
            return pack(out, len);
        }
        "#,
    );
    assert_eq!(p.call("run", b"wasm").unwrap(), b"msaw");
}

#[test]
fn sched_plugin_round_robin() {
    let mut p = plugin(RR_PLUGIN);
    let req = SchedRequest {
        slot: 1,
        prbs_granted: 52,
        slice_id: 0,
        ues: vec![ue(10, 20, 1e6), ue(11, 24, 2e6), ue(12, 28, 3e6)],
    };
    let resp = p.call_sched(&req).unwrap();
    assert_eq!(resp.allocs.len(), 3);
    assert_eq!(resp.total_prbs(), 52);
    // All UEs covered.
    let mut ids: Vec<u32> = resp.allocs.iter().map(|a| a.ue_id).collect();
    ids.sort();
    assert_eq!(ids, vec![10, 11, 12]);
    // Rotation advances between slots.
    let first_priority_ue = resp.allocs.iter().find(|a| a.priority == 0).unwrap().ue_id;
    let resp2 = p.call_sched(&req).unwrap();
    let second_priority_ue = resp2.allocs.iter().find(|a| a.priority == 0).unwrap().ue_id;
    assert_ne!(first_priority_ue, second_priority_ue);
}

#[test]
fn runaway_plugin_hits_deadline_or_fuel() {
    let src = r#"
        export fn run(ptr: i32, len: i32) -> i64 {
            while (1) { }
            return 0i64;
        }
    "#;
    let policy = SandboxPolicy {
        fuel_per_call: Some(100_000),
        deadline: None,
        ..SandboxPolicy::default()
    };
    let mut p = Plugin::new(&compile(src), &Linker::<()>::new(), (), policy).unwrap();
    assert_eq!(p.call("run", &[]), Err(PluginError::Trap(Trap::OutOfFuel)));

    let policy = SandboxPolicy {
        fuel_per_call: None,
        deadline: Some(Duration::from_millis(3)),
        ..SandboxPolicy::default()
    };
    let mut p = Plugin::new(&compile(src), &Linker::<()>::new(), (), policy).unwrap();
    assert_eq!(
        p.call("run", &[]),
        Err(PluginError::Trap(Trap::DeadlineExceeded))
    );
}

#[test]
fn leaky_plugin_memory_is_capped() {
    // Allocate 64 KiB per call without freeing: the §5.D leak experiment.
    // Compiled without the ABI prelude (whose `wrn_reset` would recycle the
    // heap between calls) — this plugin leaks on purpose.
    let src = r#"
        global heap: i32 = 4096;
        fn leak_alloc(n: i32) -> i32 {
            var p: i32 = heap;
            heap = heap + n;
            while (memory_size() * 65536 < heap) {
                if (memory_grow(1) < 0) { trap(); }
            }
            return p;
        }
        export fn run(ptr: i32, len: i32) -> i64 {
            var p: i32 = leak_alloc(65536);
            store_u8(p, 1);
            return pack(0, 0);
        }
    "#;
    let bytes = waran_plugc::compile_with(
        src,
        &waran_plugc::Options::default().with_abi_prelude(false),
    )
    .expect("compiles");
    let policy = SandboxPolicy {
        max_memory_pages: 8, // 512 KiB hard cap
        ..SandboxPolicy::default()
    };
    let mut p = Plugin::new(&bytes, &Linker::<()>::new(), (), policy).unwrap();
    let mut failed = 0;
    for _ in 0..64 {
        if p.call("run", &[]).is_err() {
            failed += 1;
        }
    }
    // The cap holds: memory never exceeds 8 pages and later calls fault
    // instead of growing the host's footprint.
    assert!(p.memory_bytes() <= 8 * 65536);
    assert!(failed > 0, "allocations beyond the cap must fault");
}

#[test]
fn malicious_response_pointer_rejected() {
    // Plugin returns a pointer far outside its memory.
    let src = r#"
        export fn run(ptr: i32, len: i32) -> i64 {
            return pack(0x7fffffff, 16);
        }
    "#;
    let mut p = plugin(src);
    let err = p.call("run", &[]).unwrap_err();
    assert!(matches!(err, PluginError::Abi(_)), "got {err:?}");
}

#[test]
fn oversized_response_rejected() {
    let src = r#"
        export fn run(ptr: i32, len: i32) -> i64 {
            return pack(0, 0x7fffffff);
        }
    "#;
    let mut p = plugin(src);
    let err = p.call("run", &[]).unwrap_err();
    assert!(matches!(err, PluginError::Abi(_)));
}

#[test]
fn missing_entry_is_a_fault_not_a_panic() {
    let mut p = plugin("export fn other(a: i32, b: i32) -> i64 { return 0i64; }");
    assert!(matches!(
        p.call("run", &[]),
        Err(PluginError::Trap(Trap::HostError(_)))
    ));
}

#[test]
fn host_install_call_and_names() {
    let host: PluginHost<()> = PluginHost::new();
    host.install("rr", plugin(RR_PLUGIN));
    host.install(
        "echo",
        plugin(r#"export fn run(ptr: i32, len: i32) -> i64 { return pack(ptr, len); }"#),
    );
    assert_eq!(host.names(), vec!["echo".to_string(), "rr".to_string()]);
    assert_eq!(host.call("echo", "run", b"x").unwrap(), b"x");
    assert!(matches!(
        host.call("nope", "run", b""),
        Err(PluginError::NoSuchPlugin(_))
    ));
}

#[test]
fn host_hot_swap_changes_behaviour() {
    let host: PluginHost<()> = PluginHost::new();
    host.install(
        "p",
        plugin(
            r#"export fn run(ptr: i32, len: i32) -> i64 {
            var out: i32 = wrn_alloc(1);
            store_u8(out, 65);
            return pack(out, 1);
        }"#,
        ),
    );
    assert_eq!(host.call("p", "run", &[]).unwrap(), b"A");
    // Live swap: same name, new code, no teardown of the host.
    host.install(
        "p",
        plugin(
            r#"export fn run(ptr: i32, len: i32) -> i64 {
            var out: i32 = wrn_alloc(1);
            store_u8(out, 66);
            return pack(out, 1);
        }"#,
        ),
    );
    assert_eq!(host.call("p", "run", &[]).unwrap(), b"B");
    assert_eq!(host.health("p").unwrap().swaps, 1);
    assert_eq!(host.health("p").unwrap().calls_ok, 2);
}

#[test]
fn host_quarantines_after_consecutive_faults() {
    let host: PluginHost<()> = PluginHost::with_quarantine_after(3);
    host.install(
        "bad",
        plugin(r#"export fn run(ptr: i32, len: i32) -> i64 { trap(); return 0i64; }"#),
    );
    for _ in 0..3 {
        assert!(matches!(
            host.call("bad", "run", &[]),
            Err(PluginError::Trap(Trap::Unreachable))
        ));
    }
    assert_eq!(host.state("bad"), Some(SlotState::Quarantined));
    // Further calls are refused without running guest code.
    assert!(matches!(
        host.call("bad", "run", &[]),
        Err(PluginError::Quarantined { .. })
    ));
    assert_eq!(host.health("bad").unwrap().total_faults, 3);

    // A swap (the operator pushing fixed code) clears the quarantine.
    host.install(
        "bad",
        plugin(r#"export fn run(ptr: i32, len: i32) -> i64 { return pack(0, 0); }"#),
    );
    assert_eq!(host.state("bad"), Some(SlotState::Active));
    assert!(host.call("bad", "run", &[]).is_ok());
}

#[test]
fn success_resets_consecutive_faults() {
    let host: PluginHost<()> = PluginHost::with_quarantine_after(3);
    // Traps only when the first input byte is non-zero.
    host.install(
        "flaky",
        plugin(
            r#"export fn run(ptr: i32, len: i32) -> i64 {
                if (len > 0 && load_u8(ptr) != 0) { trap(); }
                return pack(0, 0);
            }"#,
        ),
    );
    for _ in 0..10 {
        let _ = host.call("flaky", "run", &[1]); // fault
        let _ = host.call("flaky", "run", &[0]); // success resets
    }
    assert_eq!(host.state("flaky"), Some(SlotState::Active));
    assert_eq!(host.health("flaky").unwrap().total_faults, 10);
}

#[test]
fn host_records_exec_stats() {
    let host: PluginHost<()> = PluginHost::new();
    host.install("rr", plugin(RR_PLUGIN));
    let req = SchedRequest {
        slot: 0,
        prbs_granted: 52,
        slice_id: 0,
        ues: (0..10).map(|i| ue(i, 20, 1e6)).collect(),
    };
    for _ in 0..100 {
        host.call_sched("rr", &req).unwrap();
    }
    let stats = host.stats("rr").unwrap();
    assert_eq!(stats.count(), 100);
    assert!(stats.p99_us() >= stats.p50_us());
    assert!(stats.p50_us() > 0.0);
    // Far below the 1000 µs slot (the Fig. 5d headline).
    assert!(stats.p99_us() < 1000.0, "p99 {} µs", stats.p99_us());
}

#[test]
fn sched_response_semantic_check() {
    // Plugin answers with more allocation records than UEs + slack: a
    // semantic fault, caught by the typed decode.
    let src = r#"
        export fn schedule(req: i32, len: i32) -> i64 {
            var out: i32 = wrn_alloc(8);
            store_u8(out, 0x52); store_u8(out + 1, 0x57);
            store_u8(out + 2, 1); store_u8(out + 3, 0);
            store_u8(out + 4, 255); store_u8(out + 5, 0); // claims 255 allocs
            store_u8(out + 6, 0); store_u8(out + 7, 0);
            return pack(out, 8);
        }
    "#;
    let mut p = plugin(src);
    let req = SchedRequest {
        slot: 0,
        prbs_granted: 10,
        slice_id: 0,
        ues: vec![ue(1, 10, 1.0)],
    };
    assert!(matches!(p.call_sched(&req), Err(PluginError::Codec(_))));
}

#[test]
fn rust_side_reference_scheduler_matches_plugin() {
    // The RR plugin's allocation must equal the obvious native computation.
    let mut p = plugin(RR_PLUGIN);
    let req = SchedRequest {
        slot: 9,
        prbs_granted: 17,
        slice_id: 2,
        ues: (0..5).map(|i| ue(100 + i, 15, 1e6)).collect(),
    };
    let resp = p.call_sched(&req).unwrap();
    let expected: Vec<Allocation> = (0..5)
        .map(|i| Allocation {
            ue_id: 100 + i,
            prbs: if (i as usize) < 17 % 5 {
                17 / 5 + 1
            } else {
                17 / 5
            },
            priority: i as u8,
        })
        .collect();
    // First call: rotation starts at 0, so order is identity.
    assert_eq!(resp, SchedResponse { allocs: expected });
}
