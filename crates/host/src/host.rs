//! The plugin registry: named slots, atomic hot swap, fault accounting and
//! quarantine.
//!
//! This is the piece that delivers the paper's §5.C (live swap without
//! stopping the gNB) and §6.A (fault tolerance: detect misbehaving plugins
//! and fall back / disconnect). Swaps are atomic per slot: a call already
//! in flight finishes on the old instance; every later call sees the new
//! one.
//!
//! # Locking (the sharded-engine audit)
//!
//! The hot path — one scheduler call per slice per 1 ms slot, on every
//! worker — holds exactly one lock: the slot's own `inner` mutex, which is
//! what hands out `&mut Plugin` and cannot be removed without giving up
//! exclusive instance state. Everything else is arranged so that lock is
//! never held longer than one call:
//!
//! * The name → slot map is behind a `RwLock` taken only for *reading* on
//!   the call path (and not at all once a caller pins a [`SlotHandle`]).
//!   Writers appear only on first install / remove.
//! * Hot swap is **epoch-style publication**: [`PluginHost::install`] on an
//!   existing name stages the new plugin in a side cell and bumps the
//!   slot's epoch counter — it never waits for the global writer lock or
//!   for an in-flight call on the slot. The caller adopts the staged
//!   plugin at its next call boundary, which is exactly the "in-flight
//!   call finishes on the old instance" contract.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use waran_abi::sched::{SchedRequest, SchedResponse};

use crate::plugin::{GovernanceClass, Plugin, PluginError};
use crate::stats::ExecTimeStats;
use waran_wasm::Trap;

/// Health of one plugin slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Serving calls.
    Active,
    /// Exceeded its fault budget; calls are refused until the next swap.
    Quarantined,
}

/// The governance-relevant classification of one fault.
///
/// Strike accounting distinguishes *why* a plugin faulted: a trap points at
/// buggy or hostile guest logic, fuel exhaustion at a blown deterministic
/// budget, a deadline at wall-clock overrun. Operators tune strike budgets
/// per class, so the counters must keep them apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A guest trap other than a metering limit (OOB access, unreachable,
    /// division by zero, …).
    Trap,
    /// The deterministic per-call fuel budget ran out.
    FuelExhausted,
    /// The wall-clock per-call deadline expired.
    DeadlineExceeded,
    /// Host-side faults: ABI violations, payload codec errors, anything
    /// that is a plugin fault but not a trap.
    Other,
}

impl FaultKind {
    /// Classify a plugin error for strike accounting.
    pub fn classify(err: &PluginError) -> FaultKind {
        match err {
            PluginError::Trap(Trap::OutOfFuel) => FaultKind::FuelExhausted,
            PluginError::Trap(Trap::DeadlineExceeded) => FaultKind::DeadlineExceeded,
            PluginError::Trap(_) => FaultKind::Trap,
            _ => FaultKind::Other,
        }
    }
}

/// Per-kind lifetime strike counters (survive swaps and rollbacks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrikeCounters {
    /// Guest traps other than metering limits.
    pub trap: u64,
    /// Fuel-exhaustion faults.
    pub fuel_exhausted: u64,
    /// Wall-clock deadline faults.
    pub deadline: u64,
    /// ABI/codec/other plugin faults.
    pub other: u64,
}

impl StrikeCounters {
    /// Record one fault of the given kind.
    pub fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Trap => self.trap += 1,
            FaultKind::FuelExhausted => self.fuel_exhausted += 1,
            FaultKind::DeadlineExceeded => self.deadline += 1,
            FaultKind::Other => self.other += 1,
        }
    }

    /// Fold another counter set into this one (report aggregation).
    pub fn merge(&mut self, other: &StrikeCounters) {
        self.trap += other.trap;
        self.fuel_exhausted += other.fuel_exhausted;
        self.deadline += other.deadline;
        self.other += other.other;
    }

    /// Total strikes across all kinds.
    pub fn total(&self) -> u64 {
        self.trap + self.fuel_exhausted + self.deadline + self.other
    }
}

/// One automatic rollback: a freshly-swapped module crossed its strike
/// budget and the host republished the retained last-good module through
/// the epoch publication path.
#[derive(Debug, Clone)]
pub struct RollbackEvent {
    /// Slot (plugin name) that rolled back.
    pub name: String,
    /// Publication epoch of the rollback (the "when" in swap time: the
    /// bad module's adoption epoch is `epoch - 1`).
    pub epoch: u64,
    /// Governance class of the module that was rolled back.
    pub class: GovernanceClass,
    /// Lifetime strike counters at the moment of rollback.
    pub strikes: StrikeCounters,
    /// Consecutive faults that crossed the budget.
    pub consecutive_faults: u32,
    /// Content hash of the module rolled back *from* (the bad push), when
    /// it came out of the template cache.
    pub from_hash: Option<u64>,
    /// Content hash of the last-good module rolled back *to*.
    pub to_hash: Option<u64>,
}

/// Cumulative per-slot health counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlotHealth {
    /// Consecutive faults (reset by a successful call or a swap).
    pub consecutive_faults: u32,
    /// Total faults over the slot's lifetime (survives swaps).
    pub total_faults: u64,
    /// Lifetime faults broken down by kind (trap / fuel / deadline / other).
    pub strikes: StrikeCounters,
    /// Automatic rollbacks to the last-good module.
    pub rollbacks: u64,
    /// Successful calls.
    pub calls_ok: u64,
    /// Times the slot was hot-swapped.
    pub swaps: u64,
}

struct Slot<T> {
    plugin: Plugin<T>,
    state: SlotState,
    health: SlotHealth,
    stats: ExecTimeStats,
    /// The publication epoch this slot last adopted.
    seen_epoch: u64,
    /// Successful calls since the current plugin was adopted. A swapped-out
    /// plugin is retained as last-good only when this is nonzero — a module
    /// that never served a call is not a proven fallback.
    ok_since_adopt: u64,
    /// The previous module, retained at swap time while it was healthy;
    /// republished automatically when its replacement crosses the strike
    /// budget. `take()`n at rollback so a bad→bad chain cannot loop.
    last_good: Option<Plugin<T>>,
    /// Log of automatic rollbacks on this slot, newest last, capped at
    /// [`ROLLBACK_LOG_CAP`] entries.
    rollback_log: Vec<RollbackEvent>,
}

/// Retained [`RollbackEvent`]s per slot. A fleet that churns through
/// push/rollback cycles for days must not grow host memory; the health
/// counters keep the lifetime totals, the log keeps the recent forensics.
const ROLLBACK_LOG_CAP: usize = 64;

/// The shared identity of a named slot: callers hold the `inner` mutex for
/// the duration of one plugin call; installers publish replacements
/// through `pending`/`epoch` without ever taking `inner`.
struct SlotShared<T> {
    inner: Mutex<Slot<T>>,
    /// Staged replacement, adopted at the next call boundary. Latest
    /// install wins if several are staged between calls.
    pending: Mutex<Option<Plugin<T>>>,
    /// Publications completed on this slot (== lifetime swap count).
    epoch: AtomicU64,
}

impl<T> SlotShared<T> {
    fn new(plugin: Plugin<T>) -> Self {
        SlotShared {
            inner: Mutex::new(Slot {
                plugin,
                state: SlotState::Active,
                health: SlotHealth::default(),
                stats: ExecTimeStats::new(),
                seen_epoch: 0,
                ok_since_adopt: 0,
                last_good: None,
                rollback_log: Vec::new(),
            }),
            pending: Mutex::new(None),
            epoch: AtomicU64::new(0),
        }
    }

    /// Stage `plugin` and bump the epoch. Never blocks on `inner`.
    fn publish(&self, plugin: Plugin<T>) {
        *self.pending.lock() = Some(plugin);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Adopt a staged replacement, if any. Called with `inner` held, so
    /// adoption is serialized and lands exactly between two calls.
    fn sync(&self, slot: &mut Slot<T>) {
        let epoch = self.epoch.load(Ordering::Acquire);
        if slot.seen_epoch == epoch {
            return;
        }
        if let Some(plugin) = self.pending.lock().take() {
            let outgoing = std::mem::replace(&mut slot.plugin, plugin);
            // Retain the outgoing module as the rollback target iff it was
            // healthy: active (not quarantined, not the module a rollback
            // is currently replacing) and proven by at least one
            // successful call. A slot swapped bad→bad keeps its older
            // last-good instead.
            if slot.state == SlotState::Active && slot.ok_since_adopt > 0 {
                slot.last_good = Some(outgoing);
            }
            // The new code gets a fresh chance: quarantine and the
            // consecutive counter clear; lifetime counters survive.
            slot.state = SlotState::Active;
            slot.health.consecutive_faults = 0;
            slot.ok_since_adopt = 0;
        }
        slot.seen_epoch = epoch;
    }
}

/// Run one closure against a synced slot under the fault policy.
///
/// The strike budget comes from the slot's own [`SandboxPolicy`]
/// (`quarantine_after`, part of its governance class) unless the host was
/// built with an explicit override. Crossing the budget rolls the slot
/// back to its retained last-good module when one exists — republished
/// through the same epoch path as an operator swap, adopted at the next
/// call boundary — and quarantines the slot otherwise.
///
/// [`SandboxPolicy`]: crate::plugin::SandboxPolicy
fn run_guarded<T, R>(
    shared: &SlotShared<T>,
    quarantine_override: Option<u32>,
    name: &str,
    slot: &mut Slot<T>,
    f: impl FnOnce(&mut Plugin<T>) -> Result<R, PluginError>,
) -> Result<R, PluginError> {
    if slot.state == SlotState::Quarantined {
        return Err(PluginError::Quarantined {
            name: name.to_string(),
        });
    }
    let budget = quarantine_override.unwrap_or(slot.plugin.policy().quarantine_after);
    let seq_before = slot.plugin.call_seq();
    let result = f(&mut slot.plugin);
    // Record the call duration on both arms — trapping and fuel-exhausted
    // calls are precisely the slow ones, and dropping them would deflate
    // the reported tail latency. The sequence check keeps closures that
    // failed before reaching a plugin call from re-recording a stale
    // duration.
    if slot.plugin.call_seq() != seq_before {
        if let Some(d) = slot.plugin.last_call_duration() {
            slot.stats.record(d);
        }
    }
    match result {
        Ok(out) => {
            slot.health.calls_ok += 1;
            slot.health.consecutive_faults = 0;
            slot.ok_since_adopt += 1;
            Ok(out)
        }
        Err(e) => {
            slot.health.total_faults += 1;
            slot.health.consecutive_faults += 1;
            slot.health.strikes.bump(FaultKind::classify(&e));
            if budget > 0 && slot.health.consecutive_faults >= budget {
                if let Some(good) = slot.last_good.take() {
                    // Automatic rollback: republish the last-good module
                    // through the epoch path. The next call on this slot
                    // adopts it (clearing the quarantine below) exactly
                    // like an operator-pushed swap would.
                    let event = RollbackEvent {
                        name: name.to_string(),
                        epoch: shared.epoch.load(Ordering::Acquire) + 1,
                        class: slot.plugin.policy().class,
                        strikes: slot.health.strikes,
                        consecutive_faults: slot.health.consecutive_faults,
                        from_hash: slot.plugin.content_hash(),
                        to_hash: good.content_hash(),
                    };
                    shared.publish(good);
                    slot.health.rollbacks += 1;
                    if slot.rollback_log.len() == ROLLBACK_LOG_CAP {
                        slot.rollback_log.remove(0);
                    }
                    slot.rollback_log.push(event);
                }
                // Quarantined until the rollback (or any other pending
                // publication) is adopted at the next call boundary; with
                // no last-good retained this parks the slot for good.
                slot.state = SlotState::Quarantined;
            }
            Err(e)
        }
    }
}

/// A named registry of plugins with hot swap and fault policy.
///
/// All methods take `&self`; slots are independently locked so calls into
/// different plugins proceed concurrently and a swap never tears a call.
pub struct PluginHost<T> {
    slots: RwLock<HashMap<String, Arc<SlotShared<T>>>>,
    /// `None` ⇒ each slot's strike budget comes from its own plugin's
    /// `SandboxPolicy::quarantine_after` (its governance class);
    /// `Some(n)` ⇒ a host-wide override of `n` consecutive faults.
    quarantine_override: Option<u32>,
}

impl<T> Default for PluginHost<T> {
    fn default() -> Self {
        PluginHost {
            slots: RwLock::new(HashMap::new()),
            quarantine_override: None,
        }
    }
}

impl<T> PluginHost<T> {
    /// Host enforcing each plugin's own strike budget
    /// (`SandboxPolicy::quarantine_after`, set by its governance class).
    pub fn new() -> Self {
        Self::default()
    }

    /// Host whose strike budget is a flat `n` consecutive faults for every
    /// slot (0 = never), overriding the per-plugin policy budgets.
    pub fn with_quarantine_after(n: u32) -> Self {
        PluginHost {
            slots: RwLock::new(HashMap::new()),
            quarantine_override: Some(n),
        }
    }

    /// Install or atomically replace the plugin under `name`. Replacement
    /// clears quarantine and consecutive-fault state (the new code gets a
    /// fresh chance) but keeps lifetime counters.
    ///
    /// Replacing an existing slot is wait-free with respect to callers:
    /// the new plugin is *published* (staged + epoch bump) and adopted at
    /// the slot's next call boundary, so an installer never blocks behind
    /// an in-flight call and never takes the global writer lock.
    pub fn install(&self, name: &str, plugin: Plugin<T>) {
        if let Some(shared) = self.slots.read().get(name).cloned() {
            shared.publish(plugin);
            return;
        }
        let mut slots = self.slots.write();
        match slots.entry(name.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Raced with another first-installer: publish instead.
                e.get().publish(plugin);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Arc::new(SlotShared::new(plugin)));
            }
        }
    }

    /// Remove a plugin. Returns true when it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.slots.write().remove(name).is_some()
    }

    /// Installed plugin names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.slots.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn slot(&self, name: &str) -> Result<Arc<SlotShared<T>>, PluginError> {
        self.slots
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))
    }

    /// Pin the slot `name` for repeated hot-path calls.
    ///
    /// The handle bypasses the name → slot map lookup on every call; hot
    /// swaps through [`Self::install`] still take effect because the
    /// handle shares the slot's publication cell. The handle pins the
    /// slot's *identity*: after [`Self::remove`], a handle keeps the
    /// removed slot alive and a later `install` under the same name
    /// creates a fresh slot the old handle does not see.
    pub fn handle(&self, name: &str) -> Option<SlotHandle<T>> {
        let shared = self.slots.read().get(name).cloned()?;
        Some(SlotHandle {
            name: name.to_string(),
            shared,
            quarantine_override: self.quarantine_override,
        })
    }

    /// Call `entry` on the plugin `name` through the byte ABI, applying the
    /// fault policy: faults increment the slot's counters and may
    /// quarantine it; successes reset the consecutive counter.
    pub fn call(&self, name: &str, entry: &str, input: &[u8]) -> Result<Vec<u8>, PluginError> {
        self.with_plugin(name, |plugin| plugin.call(entry, input))
    }

    /// Typed scheduler call with the same fault policy as [`Self::call`].
    pub fn call_sched(&self, name: &str, req: &SchedRequest) -> Result<SchedResponse, PluginError> {
        self.with_plugin(name, |plugin| plugin.call_sched(req))
    }

    /// Run an arbitrary closure against the plugin under the fault policy.
    pub fn with_plugin<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Plugin<T>) -> Result<R, PluginError>,
    ) -> Result<R, PluginError> {
        let shared = self.slot(name)?;
        let mut slot = shared.inner.lock();
        shared.sync(&mut slot);
        run_guarded(&shared, self.quarantine_override, name, &mut slot, f)
    }

    /// Lock, sync and read one slot. `f` also receives the slot's
    /// publication epoch (== lifetime swap count), which lives on the
    /// shared cell rather than under the inner lock.
    fn read_slot<R>(&self, name: &str, f: impl FnOnce(&Slot<T>, u64) -> R) -> Option<R> {
        let shared = self.slot(name).ok()?;
        let mut slot = shared.inner.lock();
        shared.sync(&mut slot);
        let epoch = shared.epoch.load(Ordering::Acquire);
        Some(f(&slot, epoch))
    }

    /// Slot state, if the plugin exists.
    pub fn state(&self, name: &str) -> Option<SlotState> {
        self.read_slot(name, |s, _| s.state)
    }

    /// Health counters, if the plugin exists.
    pub fn health(&self, name: &str) -> Option<SlotHealth> {
        self.read_slot(name, |s, epoch| SlotHealth {
            swaps: epoch,
            ..s.health
        })
    }

    /// Execution-time statistics, if the plugin exists.
    pub fn stats(&self, name: &str) -> Option<ExecTimeStats> {
        self.read_slot(name, |s, _| s.stats.clone())
    }

    /// Current guest memory footprint of the plugin, bytes.
    pub fn memory_bytes(&self, name: &str) -> Option<usize> {
        self.read_slot(name, |s, _| s.plugin.memory_bytes())
    }

    /// Most recent call duration of the plugin.
    pub fn last_call_duration(&self, name: &str) -> Option<Duration> {
        self.read_slot(name, |s, _| s.plugin.last_call_duration())?
    }

    /// Log of automatic rollbacks on the slot, oldest first.
    pub fn rollback_log(&self, name: &str) -> Option<Vec<RollbackEvent>> {
        self.read_slot(name, |s, _| s.rollback_log.clone())
    }

    /// True when the slot currently retains a last-good module to roll
    /// back to.
    pub fn has_last_good(&self, name: &str) -> Option<bool> {
        self.read_slot(name, |s, _| s.last_good.is_some())
    }

    /// Content hash of the module currently serving the slot, when it came
    /// out of a content-addressed template.
    pub fn content_hash(&self, name: &str) -> Option<u64> {
        self.read_slot(name, |s, _| s.plugin.content_hash())?
    }

    /// Lift a quarantine without swapping (operator override).
    pub fn reset_quarantine(&self, name: &str) -> bool {
        match self.slot(name) {
            Ok(shared) => {
                let mut slot = shared.inner.lock();
                shared.sync(&mut slot);
                slot.state = SlotState::Active;
                slot.health.consecutive_faults = 0;
                true
            }
            Err(_) => false,
        }
    }
}

impl<T> std::fmt::Debug for PluginHost<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PluginHost")
            .field("plugins", &self.names())
            .finish()
    }
}

/// A pinned reference to one host slot, for hot paths that call the same
/// plugin every slot (the per-cell scheduler binding).
///
/// Calls through the handle skip the host's name → slot map entirely: the
/// only synchronization left is the slot's own call mutex. Hot swaps
/// published via [`PluginHost::install`] are still adopted at the next
/// call boundary.
pub struct SlotHandle<T> {
    name: String,
    shared: Arc<SlotShared<T>>,
    quarantine_override: Option<u32>,
}

impl<T> Clone for SlotHandle<T> {
    fn clone(&self) -> Self {
        SlotHandle {
            name: self.name.clone(),
            shared: Arc::clone(&self.shared),
            quarantine_override: self.quarantine_override,
        }
    }
}

impl<T> SlotHandle<T> {
    /// The slot name this handle pins.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Typed scheduler call under the fault policy (see
    /// [`PluginHost::call_sched`]).
    pub fn call_sched(&self, req: &SchedRequest) -> Result<SchedResponse, PluginError> {
        self.with_plugin(|plugin| plugin.call_sched(req))
    }

    /// Byte-ABI call under the fault policy (see [`PluginHost::call`]).
    pub fn call(&self, entry: &str, input: &[u8]) -> Result<Vec<u8>, PluginError> {
        self.with_plugin(|plugin| plugin.call(entry, input))
    }

    /// Run a closure against the pinned plugin under the fault policy.
    pub fn with_plugin<R>(
        &self,
        f: impl FnOnce(&mut Plugin<T>) -> Result<R, PluginError>,
    ) -> Result<R, PluginError> {
        let mut slot = self.shared.inner.lock();
        self.shared.sync(&mut slot);
        run_guarded(
            &self.shared,
            self.quarantine_override,
            &self.name,
            &mut slot,
            f,
        )
    }
}

impl<T> std::fmt::Debug for SlotHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotHandle")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}
