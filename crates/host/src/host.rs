//! The plugin registry: named slots, atomic hot swap, fault accounting and
//! quarantine.
//!
//! This is the piece that delivers the paper's §5.C (live swap without
//! stopping the gNB) and §6.A (fault tolerance: detect misbehaving plugins
//! and fall back / disconnect). Swaps are atomic per slot: a call already
//! in flight finishes on the old instance; every later call sees the new
//! one.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use waran_abi::sched::{SchedRequest, SchedResponse};

use crate::plugin::{Plugin, PluginError};
use crate::stats::ExecTimeStats;

/// Health of one plugin slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Serving calls.
    Active,
    /// Exceeded its fault budget; calls are refused until the next swap.
    Quarantined,
}

/// Cumulative per-slot health counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlotHealth {
    /// Consecutive faults (reset by a successful call or a swap).
    pub consecutive_faults: u32,
    /// Total faults over the slot's lifetime (survives swaps).
    pub total_faults: u64,
    /// Successful calls.
    pub calls_ok: u64,
    /// Times the slot was hot-swapped.
    pub swaps: u64,
}

struct Slot<T> {
    plugin: Plugin<T>,
    state: SlotState,
    health: SlotHealth,
    stats: ExecTimeStats,
}

/// A named registry of plugins with hot swap and fault policy.
///
/// All methods take `&self`; slots are independently locked so calls into
/// different plugins proceed concurrently and a swap never tears a call.
pub struct PluginHost<T> {
    slots: RwLock<HashMap<String, Arc<Mutex<Slot<T>>>>>,
    quarantine_after: u32,
}

impl<T> Default for PluginHost<T> {
    fn default() -> Self {
        PluginHost { slots: RwLock::new(HashMap::new()), quarantine_after: 3 }
    }
}

impl<T> PluginHost<T> {
    /// Host with the default fault budget (3 consecutive faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Host quarantining after `n` consecutive faults (0 = never).
    pub fn with_quarantine_after(n: u32) -> Self {
        PluginHost { slots: RwLock::new(HashMap::new()), quarantine_after: n }
    }

    /// Install or atomically replace the plugin under `name`. Replacement
    /// clears quarantine and consecutive-fault state (the new code gets a
    /// fresh chance) but keeps lifetime counters.
    pub fn install(&self, name: &str, plugin: Plugin<T>) {
        let mut slots = self.slots.write();
        match slots.get(name) {
            Some(existing) => {
                let mut slot = existing.lock();
                slot.plugin = plugin;
                slot.state = SlotState::Active;
                slot.health.consecutive_faults = 0;
                slot.health.swaps += 1;
            }
            None => {
                slots.insert(
                    name.to_string(),
                    Arc::new(Mutex::new(Slot {
                        plugin,
                        state: SlotState::Active,
                        health: SlotHealth::default(),
                        stats: ExecTimeStats::new(),
                    })),
                );
            }
        }
    }

    /// Remove a plugin. Returns true when it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.slots.write().remove(name).is_some()
    }

    /// Installed plugin names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.slots.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn slot(&self, name: &str) -> Result<Arc<Mutex<Slot<T>>>, PluginError> {
        self.slots
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))
    }

    /// Call `entry` on the plugin `name` through the byte ABI, applying the
    /// fault policy: faults increment the slot's counters and may
    /// quarantine it; successes reset the consecutive counter.
    pub fn call(&self, name: &str, entry: &str, input: &[u8]) -> Result<Vec<u8>, PluginError> {
        let slot = self.slot(name)?;
        let mut slot = slot.lock();
        self.run_in_slot(name, &mut slot, |plugin| plugin.call(entry, input))
    }

    /// Typed scheduler call with the same fault policy as [`Self::call`].
    pub fn call_sched(
        &self,
        name: &str,
        req: &SchedRequest,
    ) -> Result<SchedResponse, PluginError> {
        let slot = self.slot(name)?;
        let mut slot = slot.lock();
        self.run_in_slot(name, &mut slot, |plugin| plugin.call_sched(req))
    }

    /// Run an arbitrary closure against the plugin under the fault policy.
    pub fn with_plugin<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Plugin<T>) -> Result<R, PluginError>,
    ) -> Result<R, PluginError> {
        let slot = self.slot(name)?;
        let mut slot = slot.lock();
        self.run_in_slot(name, &mut slot, f)
    }

    fn run_in_slot<R>(
        &self,
        name: &str,
        slot: &mut Slot<T>,
        f: impl FnOnce(&mut Plugin<T>) -> Result<R, PluginError>,
    ) -> Result<R, PluginError> {
        if slot.state == SlotState::Quarantined {
            return Err(PluginError::Quarantined { name: name.to_string() });
        }
        match f(&mut slot.plugin) {
            Ok(out) => {
                slot.health.calls_ok += 1;
                slot.health.consecutive_faults = 0;
                if let Some(d) = slot.plugin.last_call_duration() {
                    slot.stats.record(d);
                }
                Ok(out)
            }
            Err(e) => {
                slot.health.total_faults += 1;
                slot.health.consecutive_faults += 1;
                if self.quarantine_after > 0
                    && slot.health.consecutive_faults >= self.quarantine_after
                {
                    slot.state = SlotState::Quarantined;
                }
                Err(e)
            }
        }
    }

    /// Slot state, if the plugin exists.
    pub fn state(&self, name: &str) -> Option<SlotState> {
        Some(self.slot(name).ok()?.lock().state)
    }

    /// Health counters, if the plugin exists.
    pub fn health(&self, name: &str) -> Option<SlotHealth> {
        Some(self.slot(name).ok()?.lock().health)
    }

    /// Execution-time statistics, if the plugin exists.
    pub fn stats(&self, name: &str) -> Option<ExecTimeStats> {
        Some(self.slot(name).ok()?.lock().stats.clone())
    }

    /// Current guest memory footprint of the plugin, bytes.
    pub fn memory_bytes(&self, name: &str) -> Option<usize> {
        Some(self.slot(name).ok()?.lock().plugin.memory_bytes())
    }

    /// Most recent call duration of the plugin.
    pub fn last_call_duration(&self, name: &str) -> Option<Duration> {
        self.slot(name).ok()?.lock().plugin.last_call_duration()
    }

    /// Lift a quarantine without swapping (operator override).
    pub fn reset_quarantine(&self, name: &str) -> bool {
        match self.slot(name) {
            Ok(slot) => {
                let mut slot = slot.lock();
                slot.state = SlotState::Active;
                slot.health.consecutive_faults = 0;
                true
            }
            Err(_) => false,
        }
    }
}

impl<T> std::fmt::Debug for PluginHost<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PluginHost").field("plugins", &self.names()).finish()
    }
}
