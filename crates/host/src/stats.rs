//! Execution-time statistics.
//!
//! The paper measures plugin running speed with Boost Accumulators and
//! reports 50th/99th-percentile execution times (Fig. 5d). This module is
//! the equivalent instrument: [`ExactQuantiles`] stores every sample
//! (used by the figure harnesses, where sample counts are modest) and
//! [`P2Quantile`] is the constant-memory streaming estimator (used by the
//! always-on per-plugin stats in the host).

use std::time::Duration;

/// Exact quantile accumulator: stores all samples.
#[derive(Debug, Clone, Default)]
pub struct ExactQuantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl ExactQuantiles {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Add a duration sample in microseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64() * 1e6);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// The q-quantile (nearest-rank on the sorted samples), 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }
}

/// The P² (piecewise-parabolic) streaming quantile estimator
/// (Jain & Chlamtac, 1985): estimates one quantile in O(1) memory.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    /// Samples seen (first 5 go straight into `heights`).
    count: usize,
}

impl P2Quantile {
    /// Estimator for the `q`-quantile (e.g. 0.99).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Add a sample.
    pub fn record(&mut self, v: f64) {
        if self.count < 5 {
            self.heights[self.count] = v;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k containing v and clamp extreme markers.
        let k = if v < self.heights[0] {
            self.heights[0] = v;
            0
        } else if v < self.heights[1] {
            0
        } else if v < self.heights[2] {
            1
        } else if v < self.heights[3] {
            2
        } else if v <= self.heights[4] {
            3
        } else {
            self.heights[4] = v;
            3
        };

        // Increment positions of markers above the cell.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            if (d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0)
                || (d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (exact for <5 samples; 0 when empty).
    pub fn value(&self) -> f64 {
        match self.count {
            0 => 0.0,
            n @ 1..=4 => {
                let mut v = self.heights[..n].to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
                let idx = ((n as f64 - 1.0) * self.q).round() as usize;
                v[idx]
            }
            _ => self.heights[2],
        }
    }
}

/// Per-plugin execution-time tracker: count, mean, min/max and streaming
/// p50/p99, in microseconds.
#[derive(Debug, Clone)]
pub struct ExecTimeStats {
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
    p50: P2Quantile,
    p99: P2Quantile,
}

impl Default for ExecTimeStats {
    fn default() -> Self {
        ExecTimeStats {
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
            p50: P2Quantile::new(0.5),
            p99: P2Quantile::new(0.99),
        }
    }
}

impl ExecTimeStats {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one execution.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_secs_f64() * 1e6;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.p50.record(us);
        self.p99.record(us);
    }

    /// Executions recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, µs.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Minimum, µs (0 when empty).
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us
        }
    }

    /// Maximum, µs.
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Streaming median estimate, µs.
    pub fn p50_us(&self) -> f64 {
        self.p50.value()
    }

    /// Streaming 99th-percentile estimate, µs.
    pub fn p99_us(&self) -> f64 {
        self.p99.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles_basic() {
        let mut q = ExactQuantiles::new();
        for v in 1..=100 {
            q.record(v as f64);
        }
        assert_eq!(q.count(), 100);
        assert!((q.mean() - 50.5).abs() < 1e-9);
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 100.0);
        assert!((q.quantile(0.5) - 50.0).abs() <= 1.0);
        assert!((q.quantile(0.99) - 99.0).abs() <= 1.0);
        assert_eq!(q.max(), 100.0);
    }

    #[test]
    fn exact_quantiles_empty() {
        let mut q = ExactQuantiles::new();
        assert_eq!(q.quantile(0.5), 0.0);
        assert_eq!(q.mean(), 0.0);
    }

    #[test]
    fn p2_median_of_uniform() {
        let mut p2 = P2Quantile::new(0.5);
        // Deterministic pseudo-random walk over [0, 1000).
        let mut x: u64 = 12345;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p2.record((x >> 33) as f64 % 1000.0);
        }
        let est = p2.value();
        assert!((est - 500.0).abs() < 50.0, "median estimate {est} too far from 500");
    }

    #[test]
    fn p2_p99_of_uniform() {
        let mut p2 = P2Quantile::new(0.99);
        let mut x: u64 = 99;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p2.record((x >> 33) as f64 % 1000.0);
        }
        let est = p2.value();
        assert!((est - 990.0).abs() < 30.0, "p99 estimate {est} too far from 990");
    }

    #[test]
    fn p2_small_sample_exact() {
        let mut p2 = P2Quantile::new(0.5);
        p2.record(10.0);
        assert_eq!(p2.value(), 10.0);
        p2.record(20.0);
        p2.record(30.0);
        assert_eq!(p2.value(), 20.0);
    }

    #[test]
    fn p2_monotone_input() {
        let mut p2 = P2Quantile::new(0.9);
        for i in 0..1000 {
            p2.record(i as f64);
        }
        let est = p2.value();
        assert!((est - 900.0).abs() < 40.0, "p90 of 0..1000 was {est}");
    }

    #[test]
    fn exec_time_stats_accumulate() {
        let mut s = ExecTimeStats::new();
        for i in 1..=100u64 {
            s.record(Duration::from_micros(i));
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean_us() - 50.5).abs() < 0.5);
        assert!((s.min_us() - 1.0).abs() < 0.1);
        assert!((s.max_us() - 100.0).abs() < 0.1);
        assert!(s.p50_us() > 30.0 && s.p50_us() < 70.0);
        assert!(s.p99_us() > 85.0);
    }
}
