//! Execution-time statistics.
//!
//! The paper measures plugin running speed with Boost Accumulators and
//! reports 50th/99th-percentile execution times (Fig. 5d). This module is
//! the equivalent instrument: [`ExactQuantiles`] stores every sample
//! (used by the figure harnesses, where sample counts are modest) and
//! [`P2Quantile`] is the constant-memory streaming estimator (used by the
//! always-on per-plugin stats in the host).
//!
//! Every accumulator is *mergeable*: the sharded multi-cell engine gives
//! each worker its own accumulator (no cross-thread contention on the hot
//! path) and combines them after the run with `merge`, so Fig. 5d-style
//! quantiles come out of a parallel run without a single shared lock.
//! [`ShardedExecStats`] packages that pattern: one [`ExecTimeStats`] per
//! worker, merged on read.

use std::time::Duration;

/// Exact quantile accumulator: stores all samples.
#[derive(Debug, Clone, Default)]
pub struct ExactQuantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl ExactQuantiles {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Add a duration sample in microseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64() * 1e6);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Fold another accumulator's samples into this one. Exact: the result
    /// is indistinguishable from having recorded every sample here.
    pub fn merge(&mut self, other: &ExactQuantiles) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// The q-quantile (nearest-rank on the sorted samples), 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }
}

/// The P² (piecewise-parabolic) streaming quantile estimator
/// (Jain & Chlamtac, 1985): estimates one quantile in O(1) memory.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    /// Samples seen (first 5 go straight into `heights`).
    count: usize,
}

impl P2Quantile {
    /// Estimator for the `q`-quantile (e.g. 0.99).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Add a sample.
    pub fn record(&mut self, v: f64) {
        if self.count < 5 {
            self.heights[self.count] = v;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k containing v and clamp extreme markers.
        let k = if v < self.heights[0] {
            self.heights[0] = v;
            0
        } else if v < self.heights[1] {
            0
        } else if v < self.heights[2] {
            1
        } else if v < self.heights[3] {
            2
        } else if v <= self.heights[4] {
            3
        } else {
            self.heights[4] = v;
            3
        };

        // Increment positions of markers above the cell.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            if (d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0)
                || (d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    /// Merge another estimator of the same quantile into this one.
    ///
    /// Exact while either side still holds raw samples (fewer than 5).
    /// Otherwise both marker sets are read as piecewise-linear empirical
    /// CDFs, pooled with weights proportional to their sample counts, and
    /// this estimator's markers are re-seeded from the pooled distribution
    /// at their ideal ranks. The result is approximate — as P² itself is —
    /// but for identically-distributed shards (the sharded-engine case,
    /// where workers split one stream) it tracks the pooled-sample
    /// quantile; the property tests pin the tolerance.
    pub fn merge(&mut self, other: &P2Quantile) {
        if other.count == 0 {
            return;
        }
        if other.count < 5 {
            for &v in &other.heights[..other.count] {
                self.record(v);
            }
            return;
        }
        if self.count < 5 {
            let mut merged = other.clone();
            for &v in &self.heights[..self.count] {
                merged.record(v);
            }
            *self = merged;
            return;
        }

        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        // Pooled CDF sampled at every marker height of either estimator.
        let mut xs: Vec<f64> = self
            .heights
            .iter()
            .chain(other.heights.iter())
            .copied()
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let points: Vec<(f64, f64)> = xs
            .iter()
            .map(|&x| (x, (n1 * self.cdf_at(x) + n2 * other.cdf_at(x)) / n))
            .collect();

        // Re-seed the markers at their ideal fractions of the pooled CDF.
        let fracs = [0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0];
        let mut heights = [0.0; 5];
        heights[0] = xs[0];
        heights[4] = xs[xs.len() - 1];
        for i in 1..4 {
            heights[i] = Self::inverse_cdf(&points, fracs[i]);
        }
        for i in 1..5 {
            if heights[i] < heights[i - 1] {
                heights[i] = heights[i - 1];
            }
        }
        self.heights = heights;

        let count = self.count + other.count;
        self.positions[0] = 1.0;
        self.positions[4] = n;
        for (pos, &frac) in self.positions.iter_mut().zip(&fracs).take(4).skip(1) {
            *pos = (1.0 + frac * (n - 1.0)).round();
        }
        for i in 1..4 {
            // Keep ranks strictly increasing (always possible: n >= 10).
            self.positions[i] = self.positions[i]
                .max(self.positions[i - 1] + 1.0)
                .min(n - (4 - i) as f64);
        }
        // Desired positions follow the standard P² recurrence at count n.
        let init = [
            1.0,
            1.0 + 2.0 * self.q,
            1.0 + 4.0 * self.q,
            3.0 + 2.0 * self.q,
            5.0,
        ];
        let increments = self.increments;
        for ((desired, &seed), &inc) in self.desired.iter_mut().zip(&init).zip(&increments) {
            *desired = seed + (count as f64 - 5.0) * inc;
        }
        self.count = count;
    }

    /// Empirical CDF through this estimator's markers (requires >= 5
    /// samples): piecewise linear between `(height[i], rank-fraction[i])`,
    /// 0 below the minimum and 1 above the maximum.
    fn cdf_at(&self, x: f64) -> f64 {
        let m = self.count as f64;
        let frac = |i: usize| (self.positions[i] - 1.0) / (m - 1.0);
        if x <= self.heights[0] {
            return 0.0;
        }
        if x >= self.heights[4] {
            return 1.0;
        }
        for i in 0..4 {
            let (x0, x1) = (self.heights[i], self.heights[i + 1]);
            if x <= x1 {
                let (f0, f1) = (frac(i), frac(i + 1));
                if x1 <= x0 {
                    return f1;
                }
                return f0 + (f1 - f0) * (x - x0) / (x1 - x0);
            }
        }
        1.0
    }

    /// Invert a sampled, non-decreasing CDF by linear interpolation.
    fn inverse_cdf(points: &[(f64, f64)], f: f64) -> f64 {
        if f <= points[0].1 {
            return points[0].0;
        }
        for w in points.windows(2) {
            let (x0, f0) = w[0];
            let (x1, f1) = w[1];
            if f <= f1 {
                if f1 <= f0 {
                    return x1;
                }
                return x0 + (x1 - x0) * (f - f0) / (f1 - f0);
            }
        }
        points[points.len() - 1].0
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (exact for <5 samples; 0 when empty).
    pub fn value(&self) -> f64 {
        match self.count {
            0 => 0.0,
            n @ 1..=4 => {
                let mut v = self.heights[..n].to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
                let idx = ((n as f64 - 1.0) * self.q).round() as usize;
                v[idx]
            }
            _ => self.heights[2],
        }
    }
}

/// Per-plugin execution-time tracker: count, mean, min/max and streaming
/// p50/p99, in microseconds.
#[derive(Debug, Clone)]
pub struct ExecTimeStats {
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
    p50: P2Quantile,
    p99: P2Quantile,
}

impl Default for ExecTimeStats {
    fn default() -> Self {
        ExecTimeStats {
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
            p50: P2Quantile::new(0.5),
            p99: P2Quantile::new(0.99),
        }
    }
}

impl ExecTimeStats {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one execution.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_secs_f64() * 1e6;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.p50.record(us);
        self.p99.record(us);
    }

    /// Executions recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, µs.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Minimum, µs (0 when empty).
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us
        }
    }

    /// Maximum, µs.
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Streaming median estimate, µs.
    pub fn p50_us(&self) -> f64 {
        self.p50.value()
    }

    /// Streaming 99th-percentile estimate, µs.
    pub fn p99_us(&self) -> f64 {
        self.p99.value()
    }

    /// Fold another tracker into this one: counts, sums and extrema are
    /// exact; the streaming quantiles use [`P2Quantile::merge`].
    pub fn merge(&mut self, other: &ExecTimeStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        self.p50.merge(&other.p50);
        self.p99.merge(&other.p99);
    }
}

/// Depth/drop accounting for one bounded queue (the RIC plane's
/// indication bus and per-cell action mailboxes): how many items were
/// accepted, how many a full queue displaced, and the deepest the queue
/// ever got. Mergeable like every other accumulator here, so the
/// multi-cell engine can fold per-cell mailbox gauges into one deployment
/// view the same way it merges per-worker [`ExecTimeStats`] shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueDepthStats {
    /// Items accepted into the queue.
    pub enqueued: u64,
    /// Items displaced or refused by a full queue.
    pub dropped: u64,
    /// High-water mark of the queue depth.
    pub max_depth: u64,
}

impl QueueDepthStats {
    /// Empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another queue's gauges into this one: counters add, the
    /// high-water mark takes the maximum.
    pub fn merge(&mut self, other: &QueueDepthStats) {
        self.enqueued += other.enqueued;
        self.dropped += other.dropped;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// Per-worker execution-time accumulators with contention-free recording:
/// each worker writes only its own shard (no locks, no shared cache
/// lines) and readers merge all shards into one [`ExecTimeStats`].
#[derive(Debug, Clone)]
pub struct ShardedExecStats {
    shards: Vec<ExecTimeStats>,
}

impl ShardedExecStats {
    /// One shard per worker.
    pub fn new(workers: usize) -> Self {
        ShardedExecStats {
            shards: vec![ExecTimeStats::new(); workers.max(1)],
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when there are no shards (never: `new` clamps to >= 1).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Exclusive access to one worker's shard.
    pub fn shard_mut(&mut self, worker: usize) -> &mut ExecTimeStats {
        &mut self.shards[worker]
    }

    /// Record one execution on a worker's shard.
    pub fn record(&mut self, worker: usize, d: Duration) {
        self.shards[worker].record(d);
    }

    /// Split into per-worker accumulators (hand one to each thread).
    pub fn into_shards(self) -> Vec<ExecTimeStats> {
        self.shards
    }

    /// Rebuild from per-worker accumulators after a parallel run.
    pub fn from_shards(shards: Vec<ExecTimeStats>) -> Self {
        ShardedExecStats { shards }
    }

    /// Merge every shard into one tracker.
    pub fn merged(&self) -> ExecTimeStats {
        let mut out = ExecTimeStats::new();
        for shard in &self.shards {
            out.merge(shard);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles_basic() {
        let mut q = ExactQuantiles::new();
        for v in 1..=100 {
            q.record(v as f64);
        }
        assert_eq!(q.count(), 100);
        assert!((q.mean() - 50.5).abs() < 1e-9);
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 100.0);
        assert!((q.quantile(0.5) - 50.0).abs() <= 1.0);
        assert!((q.quantile(0.99) - 99.0).abs() <= 1.0);
        assert_eq!(q.max(), 100.0);
    }

    #[test]
    fn exact_quantiles_empty() {
        let mut q = ExactQuantiles::new();
        assert_eq!(q.quantile(0.5), 0.0);
        assert_eq!(q.mean(), 0.0);
    }

    #[test]
    fn p2_median_of_uniform() {
        let mut p2 = P2Quantile::new(0.5);
        // Deterministic pseudo-random walk over [0, 1000).
        let mut x: u64 = 12345;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p2.record((x >> 33) as f64 % 1000.0);
        }
        let est = p2.value();
        assert!(
            (est - 500.0).abs() < 50.0,
            "median estimate {est} too far from 500"
        );
    }

    #[test]
    fn p2_p99_of_uniform() {
        let mut p2 = P2Quantile::new(0.99);
        let mut x: u64 = 99;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p2.record((x >> 33) as f64 % 1000.0);
        }
        let est = p2.value();
        assert!(
            (est - 990.0).abs() < 30.0,
            "p99 estimate {est} too far from 990"
        );
    }

    #[test]
    fn p2_small_sample_exact() {
        let mut p2 = P2Quantile::new(0.5);
        p2.record(10.0);
        assert_eq!(p2.value(), 10.0);
        p2.record(20.0);
        p2.record(30.0);
        assert_eq!(p2.value(), 20.0);
    }

    #[test]
    fn p2_monotone_input() {
        let mut p2 = P2Quantile::new(0.9);
        for i in 0..1000 {
            p2.record(i as f64);
        }
        let est = p2.value();
        assert!((est - 900.0).abs() < 40.0, "p90 of 0..1000 was {est}");
    }

    #[test]
    fn exact_merge_is_exact() {
        let mut all = ExactQuantiles::new();
        let mut a = ExactQuantiles::new();
        let mut b = ExactQuantiles::new();
        for v in 0..1000 {
            all.record(v as f64);
            if v % 3 == 0 {
                a.record(v as f64);
            } else {
                b.record(v as f64);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
        assert_eq!(a.mean(), all.mean());
    }

    #[test]
    fn p2_merge_small_sides_is_exact() {
        // While either side holds < 5 samples the merge replays raw values.
        let mut a = P2Quantile::new(0.5);
        let mut b = P2Quantile::new(0.5);
        for v in [1.0, 2.0] {
            a.record(v);
        }
        for v in [3.0, 4.0, 5.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.value(), 3.0);
    }

    #[test]
    fn p2_merge_tracks_pooled_quantile() {
        // Two big shards of one deterministic uniform stream: the merged
        // p99 must stay close to the pooled estimate.
        let mut pooled = P2Quantile::new(0.99);
        let mut shards = [P2Quantile::new(0.99), P2Quantile::new(0.99)];
        let mut x: u64 = 2024;
        for i in 0..40_000usize {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as f64 % 1000.0;
            pooled.record(v);
            shards[i % 2].record(v);
        }
        let [mut merged, other] = shards;
        merged.merge(&other);
        assert_eq!(merged.count(), pooled.count());
        let (m, p) = (merged.value(), pooled.value());
        assert!((m - p).abs() < 30.0, "merged {m} vs pooled {p}");
        assert!((m - 990.0).abs() < 30.0, "merged {m} vs true 990");
    }

    #[test]
    fn sharded_exec_stats_merge_matches_single() {
        let mut single = ExecTimeStats::new();
        let mut sharded = ShardedExecStats::new(4);
        for i in 1..=2000u64 {
            let d = Duration::from_micros(i % 97 + 1);
            single.record(d);
            sharded.record((i % 4) as usize, d);
        }
        let merged = sharded.merged();
        assert_eq!(merged.count(), single.count());
        assert!((merged.mean_us() - single.mean_us()).abs() < 1e-9);
        assert_eq!(merged.min_us(), single.min_us());
        assert_eq!(merged.max_us(), single.max_us());
        assert!((merged.p50_us() - single.p50_us()).abs() < 10.0);
        assert!((merged.p99_us() - single.p99_us()).abs() < 10.0);
    }

    #[test]
    fn queue_depth_stats_merge() {
        let mut a = QueueDepthStats {
            enqueued: 10,
            dropped: 2,
            max_depth: 7,
        };
        let b = QueueDepthStats {
            enqueued: 5,
            dropped: 0,
            max_depth: 12,
        };
        a.merge(&b);
        assert_eq!(
            a,
            QueueDepthStats {
                enqueued: 15,
                dropped: 2,
                max_depth: 12,
            }
        );
        a.merge(&QueueDepthStats::new());
        assert_eq!(a.enqueued, 15);
    }

    #[test]
    fn exec_time_stats_accumulate() {
        let mut s = ExecTimeStats::new();
        for i in 1..=100u64 {
            s.record(Duration::from_micros(i));
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean_us() - 50.5).abs() < 0.5);
        assert!((s.min_us() - 1.0).abs() < 0.1);
        assert!((s.max_us() - 100.0).abs() < 0.1);
        assert!(s.p50_us() > 30.0 && s.p50_us() < 70.0);
        assert!(s.p99_us() > 85.0);
    }
}
