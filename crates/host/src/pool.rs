//! Per-worker plugin instance pools stamped from one shared template.
//!
//! The sharded scenario engine follows the cache's compile-once rule to
//! its conclusion: *compile per bytecode hash, template per deployment,
//! stamp per worker*. A [`PluginPool`] is the per-worker half — a set of
//! ready instances all stamped from the same [`PluginPre`], so N workers
//! running the same xApp share one decoded, validated, flat-IR-lowered
//! module *and* one resolved import vector + state snapshot, and differ
//! only in the cheap mutable state (memory, globals, host data).
//!
//! A pool is meant to be *owned by one worker thread*: none of its
//! methods lock, because exclusive ownership is the synchronization. The
//! template-level sharing happens before the pool exists, in
//! [`ModuleCache::load`] / [`PluginPre`] construction. `Plugin<T>: Send`
//! (for `T: Send`) is what lets a pool built on the control thread move
//! into its worker.

use std::sync::Arc;

use waran_wasm::instance::Linker;
use waran_wasm::Module;

use crate::linker::PluginPre;
use crate::plugin::{ModuleCache, Plugin, PluginError, SandboxPolicy};

/// A worker-owned pool of plugin instances stamped from one shared
/// template.
///
/// Instances are addressed by index — the sharded engine uses one index
/// per cell assigned to the worker — and the pool can grow on demand when
/// cells migrate between workers.
pub struct PluginPool<T> {
    pre: PluginPre<T>,
    plugins: Vec<Plugin<T>>,
}

impl<T> PluginPool<T> {
    /// Build a pool from raw bytecode, deduplicating the compiled module
    /// through `cache`. Every pool built from the same bytes (across all
    /// workers) shares one `Arc<Module>`; this pool additionally gets its
    /// own instantiation template (import resolution + snapshot run once
    /// here, not per spawn).
    pub fn from_cache(
        cache: &ModuleCache,
        bytes: &[u8],
        linker: Linker<T>,
        policy: SandboxPolicy,
    ) -> Result<Self, PluginError> {
        let module = cache.load(bytes).map_err(PluginError::Load)?;
        Self::from_module(module, linker, policy)
    }

    /// Build an empty pool over an already-compiled module.
    pub fn from_module(
        module: Arc<Module>,
        linker: Linker<T>,
        policy: SandboxPolicy,
    ) -> Result<Self, PluginError> {
        Ok(Self::from_pre(PluginPre::new(module, &linker, policy)?))
    }

    /// Build an empty pool stamping from an existing (possibly fleet-wide
    /// shared) template.
    pub fn from_pre(pre: PluginPre<T>) -> Self {
        PluginPool {
            pre,
            plugins: Vec::new(),
        }
    }

    /// The shared module this pool instantiates from.
    pub fn module(&self) -> &Arc<Module> {
        self.pre.module()
    }

    /// The template this pool stamps from.
    pub fn pre(&self) -> &PluginPre<T> {
        &self.pre
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.plugins.len()
    }

    /// True when no instance has been spawned yet.
    pub fn is_empty(&self) -> bool {
        self.plugins.is_empty()
    }

    /// Stamp one fresh instance with host data `data`; returns its index.
    pub fn spawn(&mut self, data: T) -> Result<usize, PluginError> {
        self.plugins.push(self.pre.instantiate(data)?);
        Ok(self.plugins.len() - 1)
    }

    /// Grow the pool to `n` instances, producing host data from `make`.
    pub fn grow_to(
        &mut self,
        n: usize,
        mut make: impl FnMut(usize) -> T,
    ) -> Result<(), PluginError> {
        while self.plugins.len() < n {
            let idx = self.plugins.len();
            self.spawn(make(idx))?;
        }
        Ok(())
    }

    /// Borrow instance `idx` mutably (no lock: the pool is worker-owned).
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Plugin<T>> {
        self.plugins.get_mut(idx)
    }

    /// Iterate over all instances mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Plugin<T>> {
        self.plugins.iter_mut()
    }
}

impl<T> std::fmt::Debug for PluginPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PluginPool")
            .field("instances", &self.plugins.len())
            .field("snapshot", &self.pre.has_snapshot())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_wasm() -> Vec<u8> {
        waran_wasm::wat::assemble(
            r#"(module
                 (global $g (mut i32) (i32.const 0))
                 (func (export "bump") (result i32)
                   global.get $g
                   i32.const 1
                   i32.add
                   global.set $g
                   global.get $g))"#,
        )
        .unwrap()
    }

    #[test]
    fn pools_share_module_but_not_state() {
        use waran_wasm::interp::Value;

        let wasm = counter_wasm();
        let cache = ModuleCache::new();
        let mut a =
            PluginPool::from_cache(&cache, &wasm, Linker::<()>::new(), SandboxPolicy::default())
                .unwrap();
        let mut b =
            PluginPool::from_cache(&cache, &wasm, Linker::<()>::new(), SandboxPolicy::default())
                .unwrap();
        assert!(
            Arc::ptr_eq(a.module(), b.module()),
            "pools must share the compiled module"
        );
        assert_eq!(cache.len(), 1);

        a.grow_to(2, |_| ()).unwrap();
        b.grow_to(1, |_| ()).unwrap();
        assert_eq!(a.len(), 2);

        // Mutating one instance is invisible to every other.
        let bump = |p: &mut Plugin<()>| p.instance_mut().invoke("bump", &[]).unwrap();
        assert_eq!(bump(a.get_mut(0).unwrap()), Some(Value::I32(1)));
        assert_eq!(bump(a.get_mut(0).unwrap()), Some(Value::I32(2)));
        assert_eq!(bump(a.get_mut(1).unwrap()), Some(Value::I32(1)));
        assert_eq!(bump(b.get_mut(0).unwrap()), Some(Value::I32(1)));
    }

    #[test]
    fn pools_can_share_one_template() {
        let wasm = counter_wasm();
        let cache = ModuleCache::new();
        let module = cache.load(&wasm).unwrap();
        let pre = PluginPre::new(module, &Linker::<()>::new(), SandboxPolicy::default()).unwrap();
        let mut a = PluginPool::from_pre(pre.clone());
        let mut b = PluginPool::from_pre(pre);
        a.grow_to(2, |_| ()).unwrap();
        b.grow_to(2, |_| ()).unwrap();
        assert!(Arc::ptr_eq(a.module(), b.module()));
    }

    #[test]
    fn pool_moves_into_worker_thread() {
        let wasm = counter_wasm();
        let cache = ModuleCache::new();
        let mut pool =
            PluginPool::from_cache(&cache, &wasm, Linker::<()>::new(), SandboxPolicy::default())
                .unwrap();
        pool.grow_to(1, |_| ()).unwrap();
        // `Plugin<T>: Send` — a control thread builds the pool, a worker
        // runs it.
        let handle = std::thread::spawn(move || {
            let p = pool.get_mut(0).unwrap();
            p.instance_mut().invoke("bump", &[]).unwrap()
        });
        use waran_wasm::interp::Value;
        assert_eq!(handle.join().unwrap(), Some(Value::I32(1)));
    }
}
