//! # waran-host — the WA-RAN plugin hosting runtime
//!
//! The Extism-equivalent layer of the reproduction: it owns loaded plugins,
//! enforces per-plugin sandbox policies, moves bytes across the guest
//! boundary, hot-swaps plugin code without stopping the host (§5.C of the
//! paper) and applies the fault policy sketched in §6.A (count faults,
//! quarantine repeat offenders so the embedder can fall back to a default
//! implementation).
//!
//! * [`plugin::Plugin`] — one loaded instance + its [`plugin::SandboxPolicy`],
//!   with the byte-buffer ABI (`wrn_alloc` / `entry(ptr, len) -> packed` /
//!   `wrn_reset`) and typed scheduler calls.
//! * [`linker::Linker`] — the two-level (`module` → `name`) host-function
//!   namespace with shadowing control; [`linker::PluginPre`] — the
//!   pre-validated instantiation template (resolved imports + sandbox
//!   policy + post-segment-init snapshot) fleets stamp instances from in
//!   O(µs); [`linker::TemplateCache`] — the content-addressed fleet-wide
//!   template store.
//! * [`host::PluginHost`] — the named registry: atomic [`host::PluginHost::install`]
//!   (hot swap), per-slot health and quarantine, per-slot execution-time
//!   statistics.
//! * [`stats`] — the measurement instruments (P² streaming quantiles and
//!   exact accumulators) behind the Fig. 5d reproduction.
//!
//! ```
//! use waran_host::plugin::{Plugin, SandboxPolicy};
//! use waran_wasm::instance::Linker;
//!
//! // A plugin written in PlugC that echoes its input back.
//! let wasm = waran_plugc::compile(r#"
//!     export fn run(ptr: i32, len: i32) -> i64 {
//!         return pack(ptr, len);
//!     }
//! "#).unwrap();
//! let mut plugin = Plugin::new(&wasm, &Linker::<()>::new(), (), SandboxPolicy::default()).unwrap();
//! let out = plugin.call("run", b"hello").unwrap();
//! assert_eq!(out, b"hello");
//! ```

pub mod host;
pub mod linker;
pub mod plugin;
pub mod pool;
pub mod stats;

pub use host::{
    FaultKind, PluginHost, RollbackEvent, SlotHandle, SlotHealth, SlotState, StrikeCounters,
};
pub use linker::{Linker, PluginPre, ShadowError, TemplateCache};
pub use plugin::{fnv1a, GovernanceClass, ModuleCache, Plugin, PluginError, SandboxPolicy};
pub use pool::PluginPool;
pub use stats::{ExactQuantiles, ExecTimeStats, P2Quantile, QueueDepthStats, ShardedExecStats};
