//! Two-level linker and pre-validated plugin templates.
//!
//! Production fleets install the *same* plugin into hundreds of cells.
//! Before this module existed, every install re-ran import resolution,
//! import type-checking, ABI export resolution and data/elem-segment
//! initialization per instance. The types here hoist all of that to
//! per-*module* work:
//!
//! * [`Linker`] — a wasmtime-style two-level (`module` → `name`) namespace
//!   of host functions with shadowing control. Definitions are
//!   type-checked against a guest module exactly once, when a template is
//!   built.
//! * [`PluginPre`] — the pre-validated instantiation template: a
//!   [`waran_wasm::InstancePre`] (resolved import vector + post-segment-init
//!   memory/table/globals snapshot) plus the [`SandboxPolicy`] applied at
//!   stamp-out and the pre-resolved byte-buffer ABI table.
//!   [`PluginPre::instantiate`] is a memcpy of the snapshot, a handful of
//!   `Arc` bumps and the start function — O(µs), independent of module
//!   size.
//! * [`TemplateCache`] — the fleet-wide template store, content-addressed
//!   by `(bytecode, policy, linker)`. Content addressing is what makes
//!   epoch live swaps safe: swapping different bytes into a slot *cannot*
//!   reuse the old module's snapshot, because the new bytes hash to a
//!   different template.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use waran_wasm::analysis::Bound;
use waran_wasm::instance::{ExecLimits, InstancePre, Linker as WasmLinker};
use waran_wasm::interp::{Memory, Value};
use waran_wasm::types::{FuncType, ValType};
use waran_wasm::{Module, Trap};

use crate::plugin::{fnv1a, AbiTable, ModuleCache, Plugin, PluginError, SandboxPolicy};

/// A definition registered twice under the same `(module, name)` pair with
/// shadowing disabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowError {
    /// Import-module namespace of the rejected definition.
    pub module: String,
    /// Field name of the rejected definition.
    pub name: String,
}

impl std::fmt::Display for ShadowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "`{}.{}` is already defined and shadowing is disallowed",
            self.module, self.name
        )
    }
}

impl std::error::Error for ShadowError {}

/// A two-level (`module` → `name`) namespace of host functions.
///
/// This wraps the engine-level [`waran_wasm::Linker`] (the flat resolver
/// instances consume) with the bookkeeping an embedder needs: per-module
/// namespaces, redefinition ("shadowing") control as in wasmtime's linker,
/// and a structural fingerprint so template caches can key on linker
/// configuration. The fingerprint covers names and signatures — two
/// linkers that register different *behavior* under identical names are
/// the embedder's responsibility to keep apart (the same contract as any
/// config-keyed cache).
pub struct Linker<T> {
    inner: WasmLinker<T>,
    /// `module` → `name` → registered signature.
    namespaces: HashMap<String, HashMap<String, FuncType>>,
    allow_shadowing: bool,
    /// Order-independent XOR of per-definition hashes; shadowed
    /// definitions are XORed back out, so the fingerprint reflects the
    /// *surviving* definitions only.
    fingerprint: u64,
}

impl<T> Default for Linker<T> {
    fn default() -> Self {
        Linker {
            inner: WasmLinker::new(),
            namespaces: HashMap::new(),
            allow_shadowing: false,
            fingerprint: 0,
        }
    }
}

impl<T> Clone for Linker<T> {
    fn clone(&self) -> Self {
        Linker {
            inner: self.inner.clone(),
            namespaces: self.namespaces.clone(),
            allow_shadowing: self.allow_shadowing,
            fingerprint: self.fingerprint,
        }
    }
}

impl<T> std::fmt::Debug for Linker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Linker")
            .field("definitions", &self.len())
            .field("allow_shadowing", &self.allow_shadowing)
            .finish_non_exhaustive()
    }
}

impl<T> Linker<T> {
    /// An empty linker that rejects redefinitions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allow (or forbid) redefining an existing `(module, name)` pair.
    /// Later definitions shadow earlier ones, as in wasmtime.
    pub fn allow_shadowing(&mut self, allow: bool) -> &mut Self {
        self.allow_shadowing = allow;
        self
    }

    /// Register a host function under `module.name` with the given
    /// signature.
    ///
    /// Errors when the pair is already defined and shadowing is off; with
    /// shadowing on, the new definition replaces the old one.
    pub fn func(
        &mut self,
        module: &str,
        name: &str,
        params: &[ValType],
        results: &[ValType],
        f: impl Fn(&mut T, &mut Memory, &[Value]) -> Result<Option<Value>, Trap> + Send + Sync + 'static,
    ) -> Result<&mut Self, ShadowError> {
        let ns = self.namespaces.entry(module.to_string()).or_default();
        if let Some(prev) = ns.get(name) {
            if !self.allow_shadowing {
                return Err(ShadowError {
                    module: module.to_string(),
                    name: name.to_string(),
                });
            }
            self.fingerprint ^= def_hash(module, name, prev);
        }
        let ty = FuncType::new(params, results);
        self.fingerprint ^= def_hash(module, name, &ty);
        ns.insert(name.to_string(), ty);
        self.inner.func(module, name, params, results, f);
        Ok(self)
    }

    /// True when `module.name` is defined.
    pub fn defines(&self, module: &str, name: &str) -> bool {
        self.namespaces
            .get(module)
            .is_some_and(|ns| ns.contains_key(name))
    }

    /// The registered signature of `module.name`, if any.
    pub fn signature(&self, module: &str, name: &str) -> Option<&FuncType> {
        self.namespaces.get(module)?.get(name)
    }

    /// Total number of definitions across all module namespaces.
    pub fn len(&self) -> usize {
        self.namespaces.values().map(HashMap::len).sum()
    }

    /// True when nothing is defined.
    pub fn is_empty(&self) -> bool {
        self.namespaces.is_empty()
    }

    /// Structural fingerprint of the surviving definitions (names +
    /// signatures, order-independent). [`TemplateCache`] keys on this.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The engine-level resolver view of this linker, as consumed by
    /// [`waran_wasm::Instance`] and [`waran_wasm::InstancePre`].
    pub fn wasm(&self) -> &WasmLinker<T> {
        &self.inner
    }

    /// Resolve + type-check `module`'s imports against this linker once,
    /// returning the reusable instantiation template.
    pub fn instantiate_pre(
        &self,
        module: Arc<Module>,
        policy: SandboxPolicy,
    ) -> Result<PluginPre<T>, PluginError> {
        PluginPre::new(module, &self.inner, policy)
    }

    /// One-shot convenience: build a snapshot-less template and stamp a
    /// single [`Plugin`] out of it.
    pub fn instantiate(
        &self,
        module: Arc<Module>,
        data: T,
        policy: SandboxPolicy,
    ) -> Result<Plugin<T>, PluginError> {
        Plugin::from_module(module, &self.inner, data, policy)
    }
}

/// Admission gate: check every exported function's static resource
/// bounds against the policy. Runs at template build time — i.e. at
/// `install_plugin` / `TemplateCache` population — so a rejected plugin
/// never stamps an instance.
///
/// Opt-in gates (`max_fuel_bound`, `no_unbounded_loops`) reject anything
/// the analyzer could not prove conforming. The always-on stack/depth
/// gates reject only *provable* violations — a finite worst case that
/// exceeds the runtime limit — so plugins the analyzer cannot bound keep
/// today's behavior (the runtime meters still trap them).
fn admit(module: &Module, policy: &SandboxPolicy) -> Result<(), PluginError> {
    let analysis = module
        .analysis()
        .expect("template construction already validated the lowering");
    for r in analysis.exports() {
        let func = r.export.clone().unwrap_or_default();
        if let Some(limit) = policy.max_fuel_bound {
            if r.fuel > Bound::Finite(limit) {
                return Err(PluginError::Admission {
                    func,
                    bound: "fuel",
                    value: r.fuel,
                    limit,
                });
            }
        }
        if policy.no_unbounded_loops && (r.unbounded_loops || r.recursive) {
            return Err(PluginError::Admission {
                func,
                bound: "loop-bound",
                value: Bound::Unbounded,
                limit: 0,
            });
        }
        if let Bound::Finite(s) = r.stack {
            if s > policy.max_value_stack as u64 {
                return Err(PluginError::Admission {
                    func,
                    bound: "value-stack",
                    value: r.stack,
                    limit: policy.max_value_stack as u64,
                });
            }
        }
        if let Bound::Finite(d) = r.frames {
            if d > policy.max_call_depth as u64 {
                return Err(PluginError::Admission {
                    func,
                    bound: "call-depth",
                    value: r.frames,
                    limit: policy.max_call_depth as u64,
                });
            }
        }
    }
    Ok(())
}

/// Hash of one linker definition, mixed into the structural fingerprint.
fn def_hash(module: &str, name: &str, ty: &FuncType) -> u64 {
    fnv1a(format!("{module}\u{0}{name}\u{0}{ty}").as_bytes())
}

/// A pre-validated plugin instantiation template.
///
/// Bundles the engine-level [`InstancePre`] (resolved imports + state
/// snapshot) with the host-level context every stamped instance needs: the
/// [`SandboxPolicy`] (deadline, exec tier, fuel — applied at stamp-out
/// time) and the pre-resolved byte-buffer [`AbiTable`].
///
/// Cloning is a few `Arc` bumps; a template is `Send + Sync` and meant to
/// be built once per `(module, policy)` and shared by every worker.
pub struct PluginPre<T> {
    pre: InstancePre<T>,
    policy: SandboxPolicy,
    abi: AbiTable,
    /// FNV-1a of the source bytecode, stamped by [`TemplateCache`] so every
    /// instance knows which content-addressed version it came from (the
    /// identity rollback logs report). `None` when the template was built
    /// straight from a `Module` and the bytes were never seen.
    content_hash: Option<u64>,
}

impl<T> Clone for PluginPre<T> {
    fn clone(&self) -> Self {
        PluginPre {
            pre: self.pre.clone(),
            policy: self.policy,
            abi: self.abi,
            content_hash: self.content_hash,
        }
    }
}

impl<T> std::fmt::Debug for PluginPre<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PluginPre")
            .field("pre", &self.pre)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl<T> PluginPre<T> {
    /// Build a template for `module` under `policy`, snapshotting per the
    /// policy's `snapshot_instantiation` knob.
    pub fn new(
        module: Arc<Module>,
        linker: &WasmLinker<T>,
        policy: SandboxPolicy,
    ) -> Result<Self, PluginError> {
        Self::with_snapshot(module, linker, policy, policy.snapshot_instantiation)
    }

    /// Build a template with an explicit snapshot decision (the one-shot
    /// construction path forces it off: state used once is copied never).
    pub fn with_snapshot(
        module: Arc<Module>,
        linker: &WasmLinker<T>,
        policy: SandboxPolicy,
        snapshot: bool,
    ) -> Result<Self, PluginError> {
        let limits = ExecLimits {
            max_call_depth: policy.max_call_depth,
            max_value_stack: policy.max_value_stack,
            max_memory_pages: policy.max_memory_pages,
        };
        let abi = AbiTable::resolve(&module);
        let pre = InstancePre::new_with(module, linker, limits, snapshot)
            .map_err(PluginError::Instantiate)?;
        admit(pre.module(), &policy)?;
        Ok(PluginPre {
            pre,
            policy,
            abi,
            content_hash: None,
        })
    }

    /// Stamp the bytecode content hash onto this template; every plugin
    /// instantiated from it reports the hash as its version identity.
    pub fn with_content_hash(mut self, hash: u64) -> Self {
        self.content_hash = Some(hash);
        self
    }

    /// The bytecode content hash, when known.
    pub fn content_hash(&self) -> Option<u64> {
        self.content_hash
    }

    /// The templated module.
    pub fn module(&self) -> &Arc<Module> {
        self.pre.module()
    }

    /// The sandbox policy stamped instances run under.
    pub fn policy(&self) -> SandboxPolicy {
        self.policy
    }

    /// True when stamp-outs copy a captured snapshot instead of re-running
    /// segment init.
    pub fn has_snapshot(&self) -> bool {
        self.pre.has_snapshot()
    }

    /// Stamp out a live [`Plugin`] with host state `data`: memcpy the
    /// snapshot, arm the policy's deadline and exec tier, run `start`.
    pub fn instantiate(&self, data: T) -> Result<Plugin<T>, PluginError> {
        let mut instance = self
            .pre
            .instantiate(data)
            .map_err(PluginError::Instantiate)?;
        instance.set_deadline(self.policy.deadline);
        instance.set_exec_mode(self.policy.exec_mode);
        Ok(Plugin::from_parts(
            instance,
            self.policy,
            self.abi,
            self.content_hash,
        ))
    }
}

/// All cached templates whose bytecode shares one FNV-1a hash.
type TemplateBucket<T> = Vec<TemplateEntry<T>>;

struct TemplateEntry<T> {
    bytes: Arc<[u8]>,
    policy: SandboxPolicy,
    linker_fp: u64,
    pre: PluginPre<T>,
}

impl<T> Clone for TemplateEntry<T> {
    fn clone(&self) -> Self {
        TemplateEntry {
            bytes: Arc::clone(&self.bytes),
            policy: self.policy,
            linker_fp: self.linker_fp,
            pre: self.pre.clone(),
        }
    }
}

/// A fleet-wide cache of [`PluginPre`] templates, content-addressed by
/// `(bytecode, policy, linker fingerprint)`.
///
/// Sits one level above [`ModuleCache`]: where the module cache dedupes
/// decode + validate + IR lowering per distinct bytecode, the template
/// cache additionally dedupes import resolution, ABI resolution and the
/// segment-init snapshot per distinct *deployment* of that bytecode.
/// Installing one xApp into 100 cells costs one template build and 100
/// memcpy stamp-outs.
///
/// Content addressing doubles as live-swap correctness: an epoch swap that
/// installs different bytes necessarily builds (or re-uses) a *different*
/// template, so post-swap instances can never be stamped from the old
/// module's snapshot. Swapping back to previous bytes deliberately re-uses
/// the previous template — the snapshot is a pure function of its key.
///
/// Keys are FNV-1a hashes verified by byte equality (collisions can never
/// alias two plugins), same discipline as [`ModuleCache`]; the mutex only
/// guards the map, with byte verification running outside the lock.
pub struct TemplateCache<T> {
    entries: Mutex<HashMap<u64, TemplateBucket<T>>>,
}

impl<T> TemplateCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        TemplateCache {
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Return the cached template for `(bytes, policy, linker)`, building
    /// it (module via the global [`ModuleCache`], then a [`PluginPre`])
    /// on the first request.
    pub fn get_or_build(
        &self,
        linker: &Linker<T>,
        bytes: &[u8],
        policy: SandboxPolicy,
    ) -> Result<PluginPre<T>, PluginError> {
        let key = fnv1a(bytes);
        let fp = linker.fingerprint();
        if let Some(pre) = self.lookup(key, bytes, policy, fp) {
            return Ok(pre);
        }
        // Build outside the lock: decode/validate/snapshot are the
        // expensive paths and concurrent installs must not serialize.
        let module = ModuleCache::global()
            .load(bytes)
            .map_err(PluginError::Load)?;
        let pre = PluginPre::new(module, linker.wasm(), policy)?.with_content_hash(key);
        let mut entries = self.entries.lock().expect("template cache poisoned");
        let bucket = entries.entry(key).or_default();
        // A racing install may have added it between unlock and relock.
        for entry in bucket.iter() {
            if entry.matches(bytes, policy, fp) {
                return Ok(entry.pre.clone());
            }
        }
        bucket.push(TemplateEntry {
            bytes: Arc::from(bytes),
            policy,
            linker_fp: fp,
            pre: pre.clone(),
        });
        Ok(pre)
    }

    /// Hit path: snapshot the bucket under the lock, verify byte equality
    /// after releasing it.
    fn lookup(
        &self,
        key: u64,
        bytes: &[u8],
        policy: SandboxPolicy,
        linker_fp: u64,
    ) -> Option<PluginPre<T>> {
        let bucket: TemplateBucket<T> = {
            let entries = self.entries.lock().expect("template cache poisoned");
            entries.get(&key)?.clone()
        };
        bucket
            .iter()
            .find(|entry| entry.matches(bytes, policy, linker_fp))
            .map(|entry| entry.pre.clone())
    }

    /// Number of distinct templates cached.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("template cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every template whose bytecode is `bytes` (all policies and
    /// linkers), e.g. after an operator retires a plugin version. Returns
    /// the number of templates dropped; live clones stay valid.
    pub fn invalidate(&self, bytes: &[u8]) -> usize {
        let key = fnv1a(bytes);
        let mut entries = self.entries.lock().expect("template cache poisoned");
        let Some(bucket) = entries.get_mut(&key) else {
            return 0;
        };
        let before = bucket.len();
        bucket.retain(|entry| entry.bytes.as_ref() != bytes);
        let dropped = before - bucket.len();
        if bucket.is_empty() {
            entries.remove(&key);
        }
        dropped
    }

    /// Drop every cached template (live clones stay valid).
    pub fn clear(&self) {
        self.entries
            .lock()
            .expect("template cache poisoned")
            .clear();
    }
}

impl<T> TemplateEntry<T> {
    fn matches(&self, bytes: &[u8], policy: SandboxPolicy, linker_fp: u64) -> bool {
        self.linker_fp == linker_fp && self.policy == policy && self.bytes.as_ref() == bytes
    }
}

impl<T> Default for TemplateCache<T> {
    fn default() -> Self {
        TemplateCache::new()
    }
}

impl TemplateCache<()> {
    /// The process-wide cache used by the scenario engine's stateless
    /// (`T = ()`) plugin installs.
    pub fn global() -> &'static TemplateCache<()> {
        static GLOBAL: OnceLock<TemplateCache<()>> = OnceLock::new();
        GLOBAL.get_or_init(TemplateCache::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_wasm() -> Vec<u8> {
        waran_wasm::wat::assemble(
            r#"(module
                 (memory 1)
                 (data (i32.const 16) "seeded")
                 (global $g (mut i32) (i32.const 7))
                 (func (export "bump") (result i32)
                   global.get $g
                   i32.const 1
                   i32.add
                   global.set $g
                   global.get $g))"#,
        )
        .unwrap()
    }

    #[test]
    fn shadowing_is_rejected_then_allowed() {
        let mut linker = Linker::<()>::new();
        linker
            .func("env", "f", &[], &[], |_, _, _| Ok(None))
            .unwrap();
        let err = linker
            .func("env", "f", &[], &[], |_, _, _| Ok(None))
            .unwrap_err();
        assert_eq!(err.module, "env");
        assert_eq!(err.name, "f");
        // Same name in a different module namespace is not shadowing.
        linker
            .func("env2", "f", &[], &[], |_, _, _| Ok(None))
            .unwrap();
        linker.allow_shadowing(true);
        linker
            .func("env", "f", &[ValType::I32], &[], |_, _, _| Ok(None))
            .unwrap();
        assert_eq!(linker.len(), 2);
        assert_eq!(
            linker.signature("env", "f").unwrap().params,
            vec![ValType::I32]
        );
    }

    #[test]
    fn fingerprint_tracks_surviving_definitions() {
        let mut a = Linker::<()>::new();
        let mut b = Linker::<()>::new();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.func("env", "f", &[], &[], |_, _, _| Ok(None)).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same names+signatures, different registration order: equal.
        a.func("env", "g", &[ValType::I32], &[], |_, _, _| Ok(None))
            .unwrap();
        b.func("env", "g", &[ValType::I32], &[], |_, _, _| Ok(None))
            .unwrap();
        b.func("env", "f", &[], &[], |_, _, _| Ok(None)).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Shadowing with a different signature changes the fingerprint…
        a.allow_shadowing(true);
        a.func("env", "f", &[ValType::I64], &[], |_, _, _| Ok(None))
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        // …and shadowing back restores it.
        a.func("env", "f", &[], &[], |_, _, _| Ok(None)).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn template_stamps_are_isolated_and_seeded() {
        let wasm = counter_wasm();
        let module = ModuleCache::new().load(&wasm).unwrap();
        let pre = Linker::<()>::new()
            .instantiate_pre(module, SandboxPolicy::default())
            .unwrap();
        assert!(pre.has_snapshot());
        let mut p1 = pre.instantiate(()).unwrap();
        let mut p2 = pre.instantiate(()).unwrap();
        // Data segment present in every stamp-out.
        assert_eq!(p1.instance().memory().read_bytes(16, 6).unwrap(), b"seeded");
        // Globals start from the snapshot and diverge per instance.
        let bump = |p: &mut Plugin<()>| p.instance_mut().invoke("bump", &[]).unwrap();
        assert_eq!(bump(&mut p1), Some(Value::I32(8)));
        assert_eq!(bump(&mut p1), Some(Value::I32(9)));
        assert_eq!(bump(&mut p2), Some(Value::I32(8)));
        // Mutating a stamped instance never leaks back into the template.
        p1.instance_mut()
            .memory_mut()
            .write_bytes(16, b"dirty!")
            .unwrap();
        let p3 = pre.instantiate(()).unwrap();
        assert_eq!(p3.instance().memory().read_bytes(16, 6).unwrap(), b"seeded");
    }

    #[test]
    fn template_cache_keys_on_bytes_policy_and_linker() {
        let cache = TemplateCache::new();
        let linker = Linker::<()>::new();
        let wasm = counter_wasm();
        let p1 = cache
            .get_or_build(&linker, &wasm, SandboxPolicy::default())
            .unwrap();
        let p2 = cache
            .get_or_build(&linker, &wasm, SandboxPolicy::default())
            .unwrap();
        assert!(Arc::ptr_eq(p1.module(), p2.module()));
        assert_eq!(cache.len(), 1);
        // Different policy → different template.
        cache
            .get_or_build(&linker, &wasm, SandboxPolicy::slot_budget())
            .unwrap();
        assert_eq!(cache.len(), 2);
        // Different linker config → different template.
        let mut other = Linker::<()>::new();
        other
            .func("env", "h", &[], &[], |_, _, _| Ok(None))
            .unwrap();
        cache
            .get_or_build(&other, &wasm, SandboxPolicy::default())
            .unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.invalidate(&wasm), 3);
        assert!(cache.is_empty());
    }

    #[test]
    fn snapshot_off_policy_is_honored() {
        let wasm = counter_wasm();
        let module = ModuleCache::new().load(&wasm).unwrap();
        let policy = SandboxPolicy {
            snapshot_instantiation: false,
            ..SandboxPolicy::default()
        };
        let pre = Linker::<()>::new().instantiate_pre(module, policy).unwrap();
        assert!(!pre.has_snapshot());
        let mut p = pre.instantiate(()).unwrap();
        assert_eq!(
            p.instance_mut().invoke("bump", &[]).unwrap(),
            Some(Value::I32(8))
        );
    }
}
