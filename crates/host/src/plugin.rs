//! A single hosted plugin: compiled module + live instance + sandbox policy.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use waran_abi::sched::{SchedRequest, SchedResponse};
use waran_abi::CodecError;
use waran_wasm::instance::{ExecMode, Instance, InstantiateError, Linker};
use waran_wasm::interp::Value;
use waran_wasm::types::ValType;
use waran_wasm::{LoadError, Module, Trap};

use crate::linker::PluginPre;

/// Named resource class a plugin is admitted under.
///
/// A class is an operator-facing label for a bundle of sandbox budgets
/// (fuel, memory, deadline, strike budget). The numeric fields on
/// [`SandboxPolicy`] stay the source of truth — the class records *which
/// preset* produced them, so reports and rollback logs can say "realtime
/// plugin exceeded its strike budget" instead of dumping raw numbers, and
/// so two deployments can assert they run the same tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GovernanceClass {
    /// Strict tier for logic on the slot-critical path: one-slot deadline,
    /// small fuel budget, low strike tolerance. See
    /// [`SandboxPolicy::realtime`].
    Realtime,
    /// Flexible tier for non-critical logic: the default deadline/fuel
    /// budgets with a generous strike budget. See
    /// [`SandboxPolicy::besteffort`].
    BestEffort,
    /// Hand-tuned budgets that match no preset (the default for policies
    /// built field-by-field).
    #[default]
    Custom,
}

impl GovernanceClass {
    /// Stable lowercase label, used in reports and rollback logs.
    pub fn label(&self) -> &'static str {
        match self {
            GovernanceClass::Realtime => "realtime",
            GovernanceClass::BestEffort => "besteffort",
            GovernanceClass::Custom => "custom",
        }
    }
}

/// Per-plugin sandbox policy.
///
/// Defaults are sized for the paper's setting: a scheduler plugin that must
/// finish well inside a 1 ms slot with a few MiB of state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SandboxPolicy {
    /// Hard cap on linear-memory pages (layered under the module's own
    /// declared maximum). 64 pages = 4 MiB.
    pub max_memory_pages: u32,
    /// Deterministic instruction budget per call (`None` = unmetered).
    pub fuel_per_call: Option<u64>,
    /// Wall-clock budget per call (`None` = no deadline).
    pub deadline: Option<Duration>,
    /// Maximum nested call depth inside the plugin.
    pub max_call_depth: usize,
    /// Maximum operand-stack slots a call may use. Enforced at runtime by
    /// the block meters and at install time against the static per-export
    /// bound from load-time analysis.
    pub max_value_stack: usize,
    /// Upper bound on the byte length a plugin may return through the ABI.
    pub max_response_bytes: u32,
    /// Admission gate: require every exported function's *static*
    /// worst-case fuel bound to be finite and at most this value
    /// (`None` = no requirement). A real-time deployment class sets this
    /// so a plugin that could blow the slot budget is rejected at
    /// install time instead of trapping mid-slot.
    pub max_fuel_bound: Option<u64>,
    /// Admission gate: reject plugins whose exported call trees contain a
    /// loop the analyzer cannot bound (data-dependent trip count) or
    /// recursion. Stricter than `max_fuel_bound` alone: it also forbids
    /// code whose bound exists but is data-dependent.
    pub no_unbounded_loops: bool,
    /// Consecutive faults before the host quarantines the plugin (0 =
    /// never). When a last-good module is retained for the slot, crossing
    /// this budget rolls back to it instead of parking the slot.
    pub quarantine_after: u32,
    /// The resource class these budgets came from (reporting only; the
    /// numeric fields are authoritative).
    pub class: GovernanceClass,
    /// Which interpreter tier runs the plugin (reference tree walker,
    /// flat IR, or register form). All tiers are semantically identical —
    /// this only trades dispatch overhead, so it is a policy knob rather
    /// than a correctness one.
    pub exec_mode: ExecMode,
    /// Stamp instances out of a captured post-segment-init snapshot
    /// (memcpy) instead of re-running data/elem/global initialization per
    /// instance. Like `exec_mode` this is observationally neutral — the
    /// parity proptests pin snapshot-on and snapshot-off to bit-identical
    /// state — so it is a perf knob, on by default.
    pub snapshot_instantiation: bool,
}

impl Default for SandboxPolicy {
    fn default() -> Self {
        SandboxPolicy {
            max_memory_pages: 64,
            fuel_per_call: Some(50_000_000),
            deadline: Some(Duration::from_millis(10)),
            max_call_depth: 512,
            max_value_stack: 1 << 20,
            max_response_bytes: 1 << 20,
            max_fuel_bound: None,
            no_unbounded_loops: false,
            quarantine_after: 3,
            class: GovernanceClass::Custom,
            exec_mode: ExecMode::default(),
            snapshot_instantiation: true,
        }
    }
}

impl SandboxPolicy {
    /// A policy tuned to the 5G slot budget used in the paper's evaluation
    /// (1 ms slots): deadline at one slot, modest fuel.
    pub fn slot_budget() -> Self {
        SandboxPolicy {
            deadline: Some(Duration::from_millis(1)),
            fuel_per_call: Some(5_000_000),
            ..SandboxPolicy::default()
        }
    }

    /// Disable fuel and deadline (benchmarking the raw interpreter).
    pub fn unmetered() -> Self {
        SandboxPolicy {
            fuel_per_call: None,
            deadline: None,
            ..SandboxPolicy::default()
        }
    }

    /// The `realtime` governance class: slot-critical budgets (one-slot
    /// deadline, modest fuel, 4 MiB memory) with a *small* strike budget —
    /// two consecutive faults and the host rolls the slot back to its
    /// last-good module (or quarantines it when there is none).
    pub fn realtime() -> Self {
        SandboxPolicy {
            max_memory_pages: 64,
            fuel_per_call: Some(5_000_000),
            deadline: Some(Duration::from_millis(1)),
            quarantine_after: 2,
            class: GovernanceClass::Realtime,
            ..SandboxPolicy::default()
        }
    }

    /// The `besteffort` governance class: off the slot-critical path, so
    /// the budgets are generous (default deadline/fuel, 8 MiB memory) and
    /// the strike budget tolerant (eight consecutive faults before
    /// rollback/quarantine).
    pub fn besteffort() -> Self {
        SandboxPolicy {
            max_memory_pages: 128,
            quarantine_after: 8,
            class: GovernanceClass::BestEffort,
            ..SandboxPolicy::default()
        }
    }
}

/// Everything that can go wrong hosting a plugin.
#[derive(Debug, Clone, PartialEq)]
pub enum PluginError {
    /// The byte stream failed decode/validation.
    Load(LoadError),
    /// Imports unresolved, segments out of bounds, start trapped.
    Instantiate(InstantiateError),
    /// Guest execution trapped.
    Trap(Trap),
    /// The plugin violated the byte-buffer ABI (missing exports, bogus
    /// pointers, oversized responses).
    Abi(String),
    /// Typed payload decode failure (a *semantic* plugin fault).
    Codec(CodecError),
    /// The plugin exceeded its fault budget and is quarantined.
    Quarantined {
        /// Plugin name.
        name: String,
    },
    /// Unknown plugin name.
    NoSuchPlugin(String),
    /// Load-time admission rejected the plugin: a static resource bound
    /// from the analyzer violates this policy's limits. Carries which
    /// bound, for which exported function, against which limit, so the
    /// operator can tell a policy problem from a plugin bug.
    Admission {
        /// The exported function whose bound failed the gate.
        func: String,
        /// Which bound failed (`"fuel"`, `"value-stack"`, `"call-depth"`,
        /// `"loop-bound"`).
        bound: &'static str,
        /// The statically computed worst case.
        value: waran_wasm::analysis::Bound,
        /// The policy limit it must not exceed.
        limit: u64,
    },
}

impl std::fmt::Display for PluginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PluginError::Load(e) => write!(f, "load: {e}"),
            PluginError::Instantiate(e) => write!(f, "instantiate: {e}"),
            PluginError::Trap(t) => write!(f, "trap: {t}"),
            PluginError::Abi(m) => write!(f, "ABI violation: {m}"),
            PluginError::Codec(e) => write!(f, "payload: {e}"),
            PluginError::Quarantined { name } => write!(f, "plugin `{name}` is quarantined"),
            PluginError::NoSuchPlugin(name) => write!(f, "no plugin named `{name}`"),
            PluginError::Admission {
                func,
                bound,
                value,
                limit,
            } => write!(
                f,
                "admission: export `{func}` static {bound} bound {value} exceeds policy limit {limit}"
            ),
        }
    }
}

impl std::error::Error for PluginError {}

impl From<Trap> for PluginError {
    fn from(t: Trap) -> Self {
        PluginError::Trap(t)
    }
}

/// A process-wide cache of decoded, validated modules keyed by bytecode.
///
/// Installing the same `.wasm` bytes into many slots (one xApp pushed to
/// every cell, a hot swap back to a previous version, a restart after
/// quarantine) repeats decode + validate and — because compiled flat IR is
/// cached per [`Module`] — re-lowers every function body. Routing loads
/// through the cache makes all such installs share one `Arc<Module>`, so
/// the second and later installs skip all three and reuse the already
/// compiled IR.
///
/// Keys are FNV-1a hashes of the bytecode; every hit is verified by byte
/// equality, so a hash collision can never alias two different plugins.
///
/// The mutex guards only the `HashMap` itself. Lookups clone the bucket's
/// `Arc`s under the lock (a few pointer bumps) and run the byte-equality
/// verification *after* unlocking, so concurrent workers taking cache
/// hits on multi-KiB modules never serialize on the comparison.
pub struct ModuleCache {
    entries: Mutex<HashMap<u64, CacheBucket>>,
}

/// All cached modules whose bytecode shares one FNV-1a hash, kept with the
/// original bytes so hits can be verified by equality.
type CacheBucket = Vec<(Arc<[u8]>, Arc<Module>)>;

impl ModuleCache {
    /// An empty cache.
    pub fn new() -> Self {
        ModuleCache {
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The process-wide cache used by [`Plugin::new_cached`].
    pub fn global() -> &'static ModuleCache {
        static GLOBAL: OnceLock<ModuleCache> = OnceLock::new();
        GLOBAL.get_or_init(ModuleCache::new)
    }

    /// Decode + validate `bytes`, or return the cached module for them.
    /// A first load also pre-compiles every function body to flat IR, so
    /// worker threads instantiating from the shared module never contend
    /// on first-call lowering.
    pub fn load(&self, bytes: &[u8]) -> Result<Arc<Module>, LoadError> {
        let key = fnv1a(bytes);
        if let Some(module) = self.lookup(key, bytes) {
            return Ok(module);
        }
        // Decode + validate + pre-compile outside the lock: these are the
        // expensive paths and concurrent installs must not serialize.
        let module = waran_wasm::load_module(bytes)?;
        module.precompile();
        let module = Arc::new(module);
        let mut entries = self.entries.lock().expect("module cache poisoned");
        let bucket = entries.entry(key).or_default();
        // A racing install may have added it between unlock and relock.
        // (Comparing under the lock is fine here: this is the cold path.)
        for (stored, cached) in bucket.iter() {
            if stored.as_ref() == bytes {
                return Ok(Arc::clone(cached));
            }
        }
        bucket.push((Arc::from(bytes), Arc::clone(&module)));
        Ok(module)
    }

    /// Hit path: snapshot the bucket under the lock, verify byte equality
    /// after releasing it.
    fn lookup(&self, key: u64, bytes: &[u8]) -> Option<Arc<Module>> {
        let bucket: CacheBucket = {
            let entries = self.entries.lock().expect("module cache poisoned");
            entries.get(&key)?.clone()
        };
        bucket
            .iter()
            .find(|(stored, _)| stored.as_ref() == bytes)
            .map(|(_, module)| Arc::clone(module))
    }

    /// Number of distinct modules cached.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("module cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached module (live `Arc<Module>`s stay valid).
    pub fn clear(&self) {
        self.entries.lock().expect("module cache poisoned").clear();
    }
}

impl Default for ModuleCache {
    fn default() -> Self {
        ModuleCache::new()
    }
}

/// 64-bit FNV-1a over the module bytecode — the content hash used by
/// [`ModuleCache`], [`crate::linker::TemplateCache`] and rollback logs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A loaded, instantiated plugin with host state `T`.
/// An ABI entry point resolved once at instantiation. The byte-buffer ABI
/// calls `wrn_alloc`/`entry`/`wrn_reset` every slot; resolving the export
/// by name each time is a linear string scan on the hot path.
#[derive(Debug, Clone, Copy)]
enum AbiFn {
    /// Export present with the expected signature: call by index.
    Ok(u32),
    /// Absent or wrongly typed: fall back to the name-based `invoke`,
    /// which reports the precise binding error.
    Dynamic,
}

/// The byte-buffer ABI entry points, pre-resolved against a module.
///
/// Resolution is a property of the *module*, not of any one instance, so a
/// [`crate::linker::PluginPre`] resolves this table once at template build
/// and every stamped-out [`Plugin`] copies it — the same table the one-shot
/// construction path uses, so the uncached and pooled paths cannot drift.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AbiTable {
    /// `wrn_alloc(len) -> ptr`.
    alloc: AbiFn,
    /// `wrn_reset()`; `None` when the module doesn't export it.
    reset: Option<AbiFn>,
}

impl AbiTable {
    /// Resolve the fixed ABI exports from `module`.
    pub(crate) fn resolve(module: &Module) -> AbiTable {
        AbiTable {
            alloc: resolve_export(module, "wrn_alloc", &[ValType::I32]),
            reset: if module.exported_func("wrn_reset").is_some() {
                Some(resolve_export(module, "wrn_reset", &[]))
            } else {
                None
            },
        }
    }
}

/// Resolve an exported function whose parameters must be exactly `params`.
/// Anything else stays [`AbiFn::Dynamic`] so the per-call binding error
/// matches the name-based path.
fn resolve_export(module: &Module, name: &str, params: &[ValType]) -> AbiFn {
    match module
        .exported_func(name)
        .and_then(|idx| module.func_type(idx).map(|ty| (idx, ty)))
    {
        Some((idx, ty)) if ty.params == params => AbiFn::Ok(idx),
        _ => AbiFn::Dynamic,
    }
}

pub struct Plugin<T> {
    instance: Instance<T>,
    policy: SandboxPolicy,
    /// Wall-clock time of the most recent call (incl. ABI copies), stamped
    /// on success *and* on fault — trapping calls are precisely the slow
    /// ones, and fault accounting must see their cost.
    last_call: Option<Duration>,
    /// Calls attempted over this plugin's lifetime (both arms). Lets the
    /// host tell "the closure ran a plugin call" from "it failed before
    /// reaching one", so stale durations are never re-recorded.
    call_seq: u64,
    /// FNV-1a hash of the module bytecode when the plugin came out of a
    /// content-addressed template ([`crate::linker::TemplateCache`]);
    /// `None` for instances built straight from a `Module`.
    content_hash: Option<u64>,
    /// `wrn_alloc(len) -> ptr`, pre-resolved.
    alloc_fn: AbiFn,
    /// `wrn_reset()`, pre-resolved; `None` when the module doesn't export it.
    reset_fn: Option<AbiFn>,
    /// Most recent `(entry name, resolved index)` pair.
    entry_cache: Option<(String, u32)>,
    /// Reusable request-encoding buffer for [`Self::call_sched`].
    scratch: Vec<u8>,
}

impl<T> Plugin<T> {
    /// Load a binary module, validate it, and instantiate it under `policy`.
    pub fn new(
        bytes: &[u8],
        linker: &Linker<T>,
        data: T,
        policy: SandboxPolicy,
    ) -> Result<Plugin<T>, PluginError> {
        let module = waran_wasm::load_module(bytes).map_err(PluginError::Load)?;
        Self::from_module(Arc::new(module), linker, data, policy)
    }

    /// Like [`Self::new`], but routed through the global [`ModuleCache`]:
    /// repeated installs of identical bytecode share one validated module
    /// and its compiled flat IR.
    pub fn new_cached(
        bytes: &[u8],
        linker: &Linker<T>,
        data: T,
        policy: SandboxPolicy,
    ) -> Result<Plugin<T>, PluginError> {
        let module = ModuleCache::global()
            .load(bytes)
            .map_err(PluginError::Load)?;
        Self::from_module(module, linker, data, policy)
    }

    /// Instantiate an already-validated module.
    ///
    /// One-shot construction rides the same [`PluginPre`] template path the
    /// fleet pools use — import resolution, sandbox-limit derivation and ABI
    /// pre-resolution exist exactly once — just without a snapshot, since
    /// state built for a single instance would be copied zero times.
    pub fn from_module(
        module: Arc<Module>,
        linker: &Linker<T>,
        data: T,
        policy: SandboxPolicy,
    ) -> Result<Plugin<T>, PluginError> {
        PluginPre::with_snapshot(module, linker, policy, false)?.instantiate(data)
    }

    /// Wire an already-stamped instance to its policy and pre-resolved ABI
    /// table (the [`PluginPre::instantiate`] back half).
    pub(crate) fn from_parts(
        instance: Instance<T>,
        policy: SandboxPolicy,
        abi: AbiTable,
        content_hash: Option<u64>,
    ) -> Self {
        Plugin {
            instance,
            policy,
            last_call: None,
            call_seq: 0,
            content_hash,
            alloc_fn: abi.alloc,
            reset_fn: abi.reset,
            entry_cache: None,
            scratch: Vec::new(),
        }
    }

    /// The sandbox policy in force.
    pub fn policy(&self) -> SandboxPolicy {
        self.policy
    }

    /// Wall-clock duration of the most recent [`Self::call`] or
    /// [`Self::call_sched`], whether it succeeded or faulted.
    pub fn last_call_duration(&self) -> Option<Duration> {
        self.last_call
    }

    /// Calls attempted over this plugin's lifetime, success or fault.
    pub fn call_seq(&self) -> u64 {
        self.call_seq
    }

    /// FNV-1a content hash of the module bytecode, when the plugin was
    /// stamped from a content-addressed template.
    pub fn content_hash(&self) -> Option<u64> {
        self.content_hash
    }

    /// Borrow the underlying instance (host-function state, stats, memory).
    pub fn instance(&self) -> &Instance<T> {
        &self.instance
    }

    /// Mutably borrow the underlying instance.
    pub fn instance_mut(&mut self) -> &mut Instance<T> {
        &mut self.instance
    }

    /// True when the plugin exports `name`.
    pub fn has_export(&self, name: &str) -> bool {
        self.instance.has_export(name)
    }

    /// Call `entry(input) -> output` through the byte-buffer ABI:
    ///
    /// 1. `wrn_alloc(len)` reserves guest memory,
    /// 2. the input bytes are copied in,
    /// 3. `entry(ptr, len)` runs and returns a packed `(ptr << 32) | len`,
    /// 4. the output bytes are copied out,
    /// 5. `wrn_reset()` (if exported) recycles the guest bump heap.
    ///
    /// Fuel is re-armed per call when the policy meters it. The measured
    /// duration (including both copies) is available via
    /// [`Self::last_call_duration`] and is stamped on faults too — a call
    /// that burns its whole fuel or deadline budget before trapping must
    /// not vanish from the latency record.
    pub fn call(&mut self, entry: &str, input: &[u8]) -> Result<Vec<u8>, PluginError> {
        let start = Instant::now();
        self.call_seq = self.call_seq.wrapping_add(1);
        let result = self.call_abi(entry, input);
        self.last_call = Some(start.elapsed());
        result
    }

    /// The ABI dance of [`Self::call`], minus timing bookkeeping.
    fn call_abi(&mut self, entry: &str, input: &[u8]) -> Result<Vec<u8>, PluginError> {
        let (out_ptr, out_len) = self.call_raw(entry, input)?;
        let output = self
            .instance
            .memory()
            .read_bytes(out_ptr, out_len)
            .map_err(|_| PluginError::Abi("plugin returned an out-of-bounds buffer".into()))?
            .to_vec();
        self.finish_call()?;
        Ok(output)
    }

    /// Steps 1-3 of the ABI dance: fuel re-arm, input copy-in, entry run,
    /// response-length policy check. Returns the guest-memory span of the
    /// output; the caller copies or decodes it, then runs
    /// [`Self::finish_call`].
    fn call_raw(&mut self, entry: &str, input: &[u8]) -> Result<(u32, u32), PluginError> {
        if let Some(fuel) = self.policy.fuel_per_call {
            self.instance.set_fuel(Some(fuel));
        }

        // 1-2: move the input into the sandbox.
        let len = u32::try_from(input.len())
            .map_err(|_| PluginError::Abi("input exceeds 4 GiB".into()))?;
        let in_ptr = if input.is_empty() {
            0
        } else {
            let ptr = match self.alloc_fn {
                AbiFn::Ok(f) => self.instance.call_func(f, &[Value::I32(len as i32)])?,
                AbiFn::Dynamic => self
                    .instance
                    .invoke("wrn_alloc", &[Value::I32(len as i32)])?,
            }
            .ok_or_else(|| PluginError::Abi("wrn_alloc returned nothing".into()))?;
            let Value::I32(ptr) = ptr else {
                return Err(PluginError::Abi("wrn_alloc returned a non-i32".into()));
            };
            self.instance
                .memory_mut()
                .write_bytes(ptr as u32, input)
                .map_err(|_| {
                    PluginError::Abi("wrn_alloc returned an out-of-bounds buffer".into())
                })?;
            ptr as u32
        };

        // 3: run the entry point.
        let args = [Value::I32(in_ptr as i32), Value::I32(len as i32)];
        let result = match &self.entry_cache {
            Some((name, f)) if name == entry => self.instance.call_func(*f, &args)?,
            _ => match resolve_export(self.instance.module(), entry, &[ValType::I32, ValType::I32])
            {
                AbiFn::Ok(f) => {
                    self.entry_cache = Some((entry.to_string(), f));
                    self.instance.call_func(f, &args)?
                }
                AbiFn::Dynamic => self.instance.invoke(entry, &args)?,
            },
        };
        let Some(Value::I64(packed)) = result else {
            return Err(PluginError::Abi(format!(
                "entry `{entry}` must return a packed i64, got {result:?}"
            )));
        };

        let out_ptr = (packed as u64 >> 32) as u32;
        let out_len = (packed as u64 & 0xffff_ffff) as u32;
        if out_len > self.policy.max_response_bytes {
            return Err(PluginError::Abi(format!(
                "response of {out_len} bytes exceeds policy limit {}",
                self.policy.max_response_bytes
            )));
        }
        Ok((out_ptr, out_len))
    }

    /// Step 5: recycle the guest heap for the next slot. (The call
    /// duration is stamped by the `call`/`call_sched` wrappers so it lands
    /// on the fault arm too.)
    fn finish_call(&mut self) -> Result<(), PluginError> {
        match self.reset_fn {
            Some(AbiFn::Ok(f)) => {
                self.instance.call_func(f, &[])?;
            }
            Some(AbiFn::Dynamic) => {
                self.instance.invoke("wrn_reset", &[])?;
            }
            None => {}
        }
        Ok(())
    }

    /// Typed scheduler call: encode the request, run `schedule`, decode and
    /// bound the response (at most one allocation per UE plus slack for
    /// padding records).
    ///
    /// Unlike [`Self::call`] this reuses the plugin's scratch buffer for the
    /// request bytes and decodes the response straight out of guest memory —
    /// zero host-side allocations beyond the decoded allocation list.
    pub fn call_sched(&mut self, req: &SchedRequest) -> Result<SchedResponse, PluginError> {
        let start = Instant::now();
        self.call_seq = self.call_seq.wrapping_add(1);
        let result = self.call_sched_abi(req);
        self.last_call = Some(start.elapsed());
        result
    }

    /// The ABI dance of [`Self::call_sched`], minus timing bookkeeping.
    fn call_sched_abi(&mut self, req: &SchedRequest) -> Result<SchedResponse, PluginError> {
        let mut input = std::mem::take(&mut self.scratch);
        input.clear();
        req.encode_into(&mut input);
        let raw = self.call_raw("schedule", &input);
        self.scratch = input;
        let (out_ptr, out_len) = raw?;
        let decoded = {
            let bytes = self
                .instance
                .memory()
                .read_bytes(out_ptr, out_len)
                .map_err(|_| PluginError::Abi("plugin returned an out-of-bounds buffer".into()))?;
            SchedResponse::decode(bytes, req.ues.len() + 8)
        };
        self.finish_call()?;
        decoded.map_err(PluginError::Codec)
    }

    /// Current guest memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.instance.memory().size_bytes()
    }

    /// High-water mark of guest memory, bytes.
    pub fn peak_memory_bytes(&self) -> usize {
        self.instance.memory().peak_pages() as usize * waran_wasm::types::PAGE_SIZE
    }
}

impl<T> std::fmt::Debug for Plugin<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plugin")
            .field("memory_bytes", &self.memory_bytes())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_bytes(body: &str) -> Vec<u8> {
        waran_wasm::wat::assemble(body).unwrap()
    }

    #[test]
    fn cache_shares_identical_bytecode() {
        let cache = ModuleCache::new();
        let a = module_bytes(r#"(module (func (export "f") (result i32) i32.const 1))"#);
        let b = module_bytes(r#"(module (func (export "f") (result i32) i32.const 2))"#);

        let m1 = cache.load(&a).unwrap();
        let m2 = cache.load(&a).unwrap();
        let m3 = cache.load(&b).unwrap();
        assert!(
            Arc::ptr_eq(&m1, &m2),
            "identical bytes must share one module"
        );
        assert!(!Arc::ptr_eq(&m1, &m3), "different bytes must not alias");
        assert_eq!(cache.len(), 2);

        cache.clear();
        assert!(cache.is_empty());
        // Cached entries dropped, but live modules stay usable.
        let inst = Instance::new(m1, &Linker::<()>::new(), ()).unwrap();
        drop(inst);
    }

    #[test]
    fn cache_rejects_and_does_not_cache_invalid_modules() {
        let cache = ModuleCache::new();
        assert!(cache.load(b"not wasm").is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_plugins_run_independently() {
        // Two plugins from one cached module must not share mutable state.
        let wasm = module_bytes(
            r#"(module
                 (global $g (mut i32) (i32.const 0))
                 (func (export "bump") (result i32)
                   global.get $g
                   i32.const 1
                   i32.add
                   global.set $g
                   global.get $g))"#,
        );
        let mk = || {
            Plugin::new_cached(&wasm, &Linker::<()>::new(), (), SandboxPolicy::default()).unwrap()
        };
        let mut p1 = mk();
        let mut p2 = mk();
        assert_eq!(
            p1.instance_mut().invoke("bump", &[]).unwrap(),
            Some(Value::I32(1))
        );
        assert_eq!(
            p1.instance_mut().invoke("bump", &[]).unwrap(),
            Some(Value::I32(2))
        );
        // p2 has its own globals despite the shared module.
        assert_eq!(
            p2.instance_mut().invoke("bump", &[]).unwrap(),
            Some(Value::I32(1))
        );
    }
}
