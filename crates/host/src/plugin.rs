//! A single hosted plugin: compiled module + live instance + sandbox policy.

use std::sync::Arc;
use std::time::{Duration, Instant};

use waran_abi::sched::{SchedRequest, SchedResponse};
use waran_abi::CodecError;
use waran_wasm::instance::{ExecLimits, Instance, InstantiateError, Linker};
use waran_wasm::interp::Value;
use waran_wasm::{LoadError, Module, Trap};

/// Per-plugin sandbox policy.
///
/// Defaults are sized for the paper's setting: a scheduler plugin that must
/// finish well inside a 1 ms slot with a few MiB of state.
#[derive(Debug, Clone, Copy)]
pub struct SandboxPolicy {
    /// Hard cap on linear-memory pages (layered under the module's own
    /// declared maximum). 64 pages = 4 MiB.
    pub max_memory_pages: u32,
    /// Deterministic instruction budget per call (`None` = unmetered).
    pub fuel_per_call: Option<u64>,
    /// Wall-clock budget per call (`None` = no deadline).
    pub deadline: Option<Duration>,
    /// Maximum nested call depth inside the plugin.
    pub max_call_depth: usize,
    /// Upper bound on the byte length a plugin may return through the ABI.
    pub max_response_bytes: u32,
    /// Consecutive faults before the host quarantines the plugin.
    pub quarantine_after: u32,
}

impl Default for SandboxPolicy {
    fn default() -> Self {
        SandboxPolicy {
            max_memory_pages: 64,
            fuel_per_call: Some(50_000_000),
            deadline: Some(Duration::from_millis(10)),
            max_call_depth: 512,
            max_response_bytes: 1 << 20,
            quarantine_after: 3,
        }
    }
}

impl SandboxPolicy {
    /// A policy tuned to the 5G slot budget used in the paper's evaluation
    /// (1 ms slots): deadline at one slot, modest fuel.
    pub fn slot_budget() -> Self {
        SandboxPolicy {
            deadline: Some(Duration::from_millis(1)),
            fuel_per_call: Some(5_000_000),
            ..SandboxPolicy::default()
        }
    }

    /// Disable fuel and deadline (benchmarking the raw interpreter).
    pub fn unmetered() -> Self {
        SandboxPolicy { fuel_per_call: None, deadline: None, ..SandboxPolicy::default() }
    }
}

/// Everything that can go wrong hosting a plugin.
#[derive(Debug, Clone, PartialEq)]
pub enum PluginError {
    /// The byte stream failed decode/validation.
    Load(LoadError),
    /// Imports unresolved, segments out of bounds, start trapped.
    Instantiate(InstantiateError),
    /// Guest execution trapped.
    Trap(Trap),
    /// The plugin violated the byte-buffer ABI (missing exports, bogus
    /// pointers, oversized responses).
    Abi(String),
    /// Typed payload decode failure (a *semantic* plugin fault).
    Codec(CodecError),
    /// The plugin exceeded its fault budget and is quarantined.
    Quarantined {
        /// Plugin name.
        name: String,
    },
    /// Unknown plugin name.
    NoSuchPlugin(String),
}

impl std::fmt::Display for PluginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PluginError::Load(e) => write!(f, "load: {e}"),
            PluginError::Instantiate(e) => write!(f, "instantiate: {e}"),
            PluginError::Trap(t) => write!(f, "trap: {t}"),
            PluginError::Abi(m) => write!(f, "ABI violation: {m}"),
            PluginError::Codec(e) => write!(f, "payload: {e}"),
            PluginError::Quarantined { name } => write!(f, "plugin `{name}` is quarantined"),
            PluginError::NoSuchPlugin(name) => write!(f, "no plugin named `{name}`"),
        }
    }
}

impl std::error::Error for PluginError {}

impl From<Trap> for PluginError {
    fn from(t: Trap) -> Self {
        PluginError::Trap(t)
    }
}

/// A loaded, instantiated plugin with host state `T`.
pub struct Plugin<T> {
    instance: Instance<T>,
    policy: SandboxPolicy,
    /// Wall-clock time of the most recent call (incl. ABI copies).
    last_call: Option<Duration>,
}

impl<T> Plugin<T> {
    /// Load a binary module, validate it, and instantiate it under `policy`.
    pub fn new(
        bytes: &[u8],
        linker: &Linker<T>,
        data: T,
        policy: SandboxPolicy,
    ) -> Result<Plugin<T>, PluginError> {
        let module = waran_wasm::load_module(bytes).map_err(PluginError::Load)?;
        Self::from_module(Arc::new(module), linker, data, policy)
    }

    /// Instantiate an already-validated module.
    pub fn from_module(
        module: Arc<Module>,
        linker: &Linker<T>,
        data: T,
        policy: SandboxPolicy,
    ) -> Result<Plugin<T>, PluginError> {
        let limits = ExecLimits {
            max_call_depth: policy.max_call_depth,
            max_memory_pages: policy.max_memory_pages,
            ..ExecLimits::default()
        };
        let mut instance =
            Instance::with_limits(module, linker, data, limits).map_err(PluginError::Instantiate)?;
        instance.set_deadline(policy.deadline);
        Ok(Plugin { instance, policy, last_call: None })
    }

    /// The sandbox policy in force.
    pub fn policy(&self) -> SandboxPolicy {
        self.policy
    }

    /// Wall-clock duration of the most recent [`Self::call`].
    pub fn last_call_duration(&self) -> Option<Duration> {
        self.last_call
    }

    /// Borrow the underlying instance (host-function state, stats, memory).
    pub fn instance(&self) -> &Instance<T> {
        &self.instance
    }

    /// Mutably borrow the underlying instance.
    pub fn instance_mut(&mut self) -> &mut Instance<T> {
        &mut self.instance
    }

    /// True when the plugin exports `name`.
    pub fn has_export(&self, name: &str) -> bool {
        self.instance.has_export(name)
    }

    /// Call `entry(input) -> output` through the byte-buffer ABI:
    ///
    /// 1. `wrn_alloc(len)` reserves guest memory,
    /// 2. the input bytes are copied in,
    /// 3. `entry(ptr, len)` runs and returns a packed `(ptr << 32) | len`,
    /// 4. the output bytes are copied out,
    /// 5. `wrn_reset()` (if exported) recycles the guest bump heap.
    ///
    /// Fuel is re-armed per call when the policy meters it. The measured
    /// duration (including both copies) is available via
    /// [`Self::last_call_duration`].
    pub fn call(&mut self, entry: &str, input: &[u8]) -> Result<Vec<u8>, PluginError> {
        let start = Instant::now();
        if let Some(fuel) = self.policy.fuel_per_call {
            self.instance.set_fuel(Some(fuel));
        }

        // 1-2: move the input into the sandbox.
        let len = u32::try_from(input.len())
            .map_err(|_| PluginError::Abi("input exceeds 4 GiB".into()))?;
        let in_ptr = if input.is_empty() {
            0
        } else {
            let ptr = self
                .instance
                .invoke("wrn_alloc", &[Value::I32(len as i32)])?
                .ok_or_else(|| PluginError::Abi("wrn_alloc returned nothing".into()))?;
            let Value::I32(ptr) = ptr else {
                return Err(PluginError::Abi("wrn_alloc returned a non-i32".into()));
            };
            self.instance
                .memory_mut()
                .write_bytes(ptr as u32, input)
                .map_err(|_| PluginError::Abi("wrn_alloc returned an out-of-bounds buffer".into()))?;
            ptr as u32
        };

        // 3: run the entry point.
        let result =
            self.instance.invoke(entry, &[Value::I32(in_ptr as i32), Value::I32(len as i32)])?;
        let Some(Value::I64(packed)) = result else {
            return Err(PluginError::Abi(format!(
                "entry `{entry}` must return a packed i64, got {result:?}"
            )));
        };

        // 4: copy the output out.
        let out_ptr = (packed as u64 >> 32) as u32;
        let out_len = (packed as u64 & 0xffff_ffff) as u32;
        if out_len > self.policy.max_response_bytes {
            return Err(PluginError::Abi(format!(
                "response of {out_len} bytes exceeds policy limit {}",
                self.policy.max_response_bytes
            )));
        }
        let output = self
            .instance
            .memory()
            .read_bytes(out_ptr, out_len)
            .map_err(|_| PluginError::Abi("plugin returned an out-of-bounds buffer".into()))?
            .to_vec();

        // 5: recycle the guest heap for the next slot.
        if self.instance.has_export("wrn_reset") {
            self.instance.invoke("wrn_reset", &[])?;
        }

        self.last_call = Some(start.elapsed());
        Ok(output)
    }

    /// Typed scheduler call: encode the request, run `schedule`, decode and
    /// bound the response (at most one allocation per UE plus slack for
    /// padding records).
    pub fn call_sched(&mut self, req: &SchedRequest) -> Result<SchedResponse, PluginError> {
        let input = req.encode();
        let output = self.call("schedule", &input)?;
        SchedResponse::decode(&output, req.ues.len() + 8).map_err(PluginError::Codec)
    }

    /// Current guest memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.instance.memory().size_bytes()
    }

    /// High-water mark of guest memory, bytes.
    pub fn peak_memory_bytes(&self) -> usize {
        self.instance.memory().peak_pages() as usize * waran_wasm::types::PAGE_SIZE
    }
}

impl<T> std::fmt::Debug for Plugin<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plugin")
            .field("memory_bytes", &self.memory_bytes())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}
