//! PlugC lexer.

use crate::CompileError;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl Pos {
    pub(crate) fn err(self, msg: impl Into<String>) -> CompileError {
        CompileError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Keywords.
    Fn,
    Export,
    Extern,
    Global,
    Const,
    Var,
    If,
    Else,
    While,
    Return,
    Break,
    Continue,
    As,
    // Types.
    TyI32,
    TyI64,
    TyF32,
    TyF64,
    // Literals & identifiers.
    Int(i64, IntWidth),
    Float(f64, FloatWidth),
    Ident(String),
    // Punctuation & operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Arrow, // ->
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Not,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Integer literal width suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntWidth {
    /// No suffix or `i32`.
    W32,
    /// `i64` suffix.
    W64,
}

/// Float literal width suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloatWidth {
    /// `f32` suffix.
    W32,
    /// No suffix or `f64`.
    W64,
}

/// A token with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenize PlugC source.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = pos!();
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(start.err("unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let begin = i;
                let hex = c == '0' && bytes.get(i + 1).is_some_and(|b| *b == b'x' || *b == b'X');
                if hex {
                    i += 2;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                } else {
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_digit()
                            || bytes[i] == b'.'
                            || bytes[i] == b'e'
                            || bytes[i] == b'E'
                            || ((bytes[i] == b'+' || bytes[i] == b'-')
                                && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                    {
                        i += 1;
                    }
                }
                let mut text = &src[begin..i];
                // Width suffix.
                let mut int_width = IntWidth::W32;
                let mut float_width = FloatWidth::W64;
                let mut forced_float = false;
                if src[i..].starts_with("i64") {
                    int_width = IntWidth::W64;
                    i += 3;
                } else if src[i..].starts_with("i32") {
                    i += 3;
                } else if src[i..].starts_with("f32") {
                    float_width = FloatWidth::W32;
                    forced_float = true;
                    i += 3;
                } else if src[i..].starts_with("f64") {
                    forced_float = true;
                    i += 3;
                }
                let consumed = i - begin;
                col += consumed;
                if !hex
                    && (text.contains('.')
                        || text.contains('e')
                        || text.contains('E')
                        || forced_float)
                {
                    if text.ends_with('.') {
                        text = &text[..text.len() - 1];
                    }
                    let v: f64 = text
                        .parse()
                        .map_err(|_| start.err(format!("bad float literal '{text}'")))?;
                    out.push(Token {
                        tok: Tok::Float(v, float_width),
                        pos: start,
                    });
                } else {
                    let v = if hex {
                        u64::from_str_radix(&text[2..], 16)
                            .map(|v| v as i64)
                            .map_err(|_| start.err(format!("bad hex literal '{text}'")))?
                    } else {
                        text.parse::<i64>()
                            .map_err(|_| start.err(format!("bad integer literal '{text}'")))?
                    };
                    out.push(Token {
                        tok: Tok::Int(v, int_width),
                        pos: start,
                    });
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let begin = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[begin..i];
                col += word.len();
                let tok = match word {
                    "fn" => Tok::Fn,
                    "export" => Tok::Export,
                    "extern" => Tok::Extern,
                    "global" => Tok::Global,
                    "const" => Tok::Const,
                    "var" => Tok::Var,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "as" => Tok::As,
                    "i32" => Tok::TyI32,
                    "i64" => Tok::TyI64,
                    "f32" => Tok::TyF32,
                    "f64" => Tok::TyF64,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Token { tok, pos: start });
            }
            c if (c as u32) >= 0x80 => {
                // Multi-byte UTF-8: not part of PlugC. Decode the real
                // character for the diagnostic instead of slicing bytes.
                let ch = src[i..].chars().next().expect("in-bounds char");
                return Err(start.err(format!("unexpected character '{ch}'")));
            }
            _ => {
                // Two-character operators, compared byte-wise (the byte
                // after an ASCII char may start a multi-byte sequence, so
                // str slicing would be unsound here).
                let next = bytes.get(i + 1).copied();
                let (tok, len) = match (c, next) {
                    ('-', Some(b'>')) => (Tok::Arrow, 2),
                    ('<', Some(b'<')) => (Tok::Shl, 2),
                    ('>', Some(b'>')) => (Tok::Shr, 2),
                    ('&', Some(b'&')) => (Tok::AndAnd, 2),
                    ('|', Some(b'|')) => (Tok::OrOr, 2),
                    ('=', Some(b'=')) => (Tok::Eq, 2),
                    ('!', Some(b'=')) => (Tok::Ne, 2),
                    ('<', Some(b'=')) => (Tok::Le, 2),
                    ('>', Some(b'=')) => (Tok::Ge, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        ',' => (Tok::Comma, 1),
                        ';' => (Tok::Semi, 1),
                        ':' => (Tok::Colon, 1),
                        '=' => (Tok::Assign, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '&' => (Tok::Amp, 1),
                        '|' => (Tok::Pipe, 1),
                        '^' => (Tok::Caret, 1),
                        '!' => (Tok::Not, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        other => return Err(start.err(format!("unexpected character '{other}'"))),
                    },
                };
                out.push(Token { tok, pos: start });
                i += len;
                col += len;
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fn foo export"),
            vec![Tok::Fn, Tok::Ident("foo".into()), Tok::Export]
        );
    }

    #[test]
    fn integer_literals() {
        assert_eq!(toks("42"), vec![Tok::Int(42, IntWidth::W32)]);
        assert_eq!(toks("42i64"), vec![Tok::Int(42, IntWidth::W64)]);
        assert_eq!(toks("0xff"), vec![Tok::Int(255, IntWidth::W32)]);
        assert_eq!(toks("0xffi64"), vec![Tok::Int(255, IntWidth::W64)]);
    }

    #[test]
    fn float_literals() {
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5, FloatWidth::W64)]);
        assert_eq!(toks("2.0f32"), vec![Tok::Float(2.0, FloatWidth::W32)]);
        assert_eq!(toks("3f64"), vec![Tok::Float(3.0, FloatWidth::W64)]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0, FloatWidth::W64)]);
        assert_eq!(toks("2.5e-2"), vec![Tok::Float(0.025, FloatWidth::W64)]);
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("<= << < -> - ="),
            vec![
                Tok::Le,
                Tok::Shl,
                Tok::Lt,
                Tok::Arrow,
                Tok::Minus,
                Tok::Assign
            ]
        );
        assert_eq!(toks("&& &"), vec![Tok::AndAnd, Tok::Amp]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("1 // comment\n2"),
            vec![Tok::Int(1, IntWidth::W32), Tok::Int(2, IntWidth::W32)]
        );
        assert_eq!(
            toks("1 /* multi\nline */ 2"),
            vec![Tok::Int(1, IntWidth::W32), Tok::Int(2, IntWidth::W32)]
        );
    }

    #[test]
    fn positions_tracked() {
        let tokens = lex("fn\n  foo").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_character_reported() {
        let err = lex("fn @").unwrap_err();
        assert!(err.msg.contains('@'));
    }

    #[test]
    fn unterminated_block_comment() {
        assert!(lex("/* never closed").is_err());
    }
}
