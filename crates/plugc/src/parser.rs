//! PlugC recursive-descent parser with C operator precedence.

use crate::ast::*;
use crate::lexer::{FloatWidth, IntWidth, Pos, Tok, Token};
use crate::CompileError;

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn here(&self) -> Pos {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.pos)
            .unwrap_or(Pos { line: 1, col: 1 })
    }

    fn advance(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Pos, CompileError> {
        let pos = self.here();
        if self.eat(tok) {
            Ok(pos)
        } else {
            Err(pos.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), CompileError> {
        let pos = self.here();
        match self.advance().map(|t| &t.tok) {
            Some(Tok::Ident(name)) => Ok((name.clone(), pos)),
            other => Err(pos.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        let pos = self.here();
        match self.advance().map(|t| &t.tok) {
            Some(Tok::TyI32) => Ok(Type::I32),
            Some(Tok::TyI64) => Ok(Type::I64),
            Some(Tok::TyF32) => Ok(Type::F32),
            Some(Tok::TyF64) => Ok(Type::F64),
            other => Err(pos.err(format!("expected a type, found {other:?}"))),
        }
    }

    // -- items ----------------------------------------------------------

    fn item(&mut self) -> Result<Item, CompileError> {
        let pos = self.here();
        match self.peek() {
            Some(Tok::Extern) => {
                self.advance();
                self.expect(&Tok::Fn, "'fn' after 'extern'")?;
                let sig = self.fn_sig(pos)?;
                self.expect(&Tok::Semi, "';' after extern declaration")?;
                Ok(Item::ExternFn(sig))
            }
            Some(Tok::Export) => {
                self.advance();
                self.expect(&Tok::Fn, "'fn' after 'export'")?;
                let sig = self.fn_sig(pos)?;
                let body = self.block()?;
                Ok(Item::Fn(FnDecl {
                    sig,
                    exported: true,
                    body,
                }))
            }
            Some(Tok::Fn) => {
                self.advance();
                let sig = self.fn_sig(pos)?;
                let body = self.block()?;
                Ok(Item::Fn(FnDecl {
                    sig,
                    exported: false,
                    body,
                }))
            }
            Some(Tok::Global) | Some(Tok::Const) => {
                let mutable = matches!(self.peek(), Some(Tok::Global));
                self.advance();
                let (name, _) = self.ident("global name")?;
                self.expect(&Tok::Colon, "':' after global name")?;
                let ty = self.ty()?;
                self.expect(&Tok::Assign, "'=' in global declaration")?;
                let init = self.literal(ty)?;
                self.expect(&Tok::Semi, "';' after global declaration")?;
                Ok(Item::Global(GlobalDecl {
                    name,
                    ty,
                    mutable,
                    init,
                    pos,
                }))
            }
            other => Err(pos.err(format!(
                "expected an item (fn/extern/global), found {other:?}"
            ))),
        }
    }

    fn fn_sig(&mut self, pos: Pos) -> Result<FnSig, CompileError> {
        let (name, _) = self.ident("function name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let (pname, _) = self.ident("parameter name")?;
                self.expect(&Tok::Colon, "':' after parameter name")?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "',' between parameters")?;
            }
        }
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        Ok(FnSig {
            name,
            params,
            ret,
            pos,
        })
    }

    /// A literal, possibly negated, coerced to the expected type.
    fn literal(&mut self, expect: Type) -> Result<Literal, CompileError> {
        let pos = self.here();
        let neg = self.eat(&Tok::Minus);
        match self.advance().map(|t| &t.tok) {
            Some(Tok::Int(v, w)) => {
                let v = if neg { -*v } else { *v };
                match (expect, w) {
                    (Type::I32, _) => i32::try_from(v)
                        .map(Literal::I32)
                        .map_err(|_| pos.err(format!("integer {v} does not fit in i32"))),
                    (Type::I64, _) => Ok(Literal::I64(v)),
                    (Type::F32, IntWidth::W32) => Ok(Literal::F32(v as f32)),
                    (Type::F64, IntWidth::W32) => Ok(Literal::F64(v as f64)),
                    _ => Err(pos.err(format!("expected a {expect} literal"))),
                }
            }
            Some(Tok::Float(v, _)) => {
                let v = if neg { -*v } else { *v };
                match expect {
                    Type::F32 => Ok(Literal::F32(v as f32)),
                    Type::F64 => Ok(Literal::F64(v)),
                    _ => Err(pos.err(format!("expected a {expect} literal, found float"))),
                }
            }
            other => Err(pos.err(format!("expected a literal, found {other:?}"))),
        }
    }

    // -- statements -------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at_end() {
                return Err(self.here().err("unexpected end of input inside block"));
            }
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        match self.peek() {
            Some(Tok::Var) => {
                self.advance();
                let (name, _) = self.ident("variable name")?;
                self.expect(&Tok::Colon, "':' after variable name")?;
                let ty = self.ty()?;
                self.expect(&Tok::Assign, "'=' in var declaration")?;
                let init = self.expr()?;
                self.expect(&Tok::Semi, "';' after var declaration")?;
                Ok(Stmt::Var {
                    name,
                    ty,
                    init,
                    pos,
                })
            }
            Some(Tok::If) => {
                self.advance();
                self.expect(&Tok::LParen, "'(' after 'if'")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "')' after condition")?;
                let then_body = self.block()?;
                let else_body = if self.eat(&Tok::Else) {
                    if self.peek() == Some(&Tok::If) {
                        vec![self.stmt()?] // else if
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            Some(Tok::While) => {
                self.advance();
                self.expect(&Tok::LParen, "'(' after 'while'")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "')' after condition")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            Some(Tok::Return) => {
                self.advance();
                let value = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, "';' after return")?;
                Ok(Stmt::Return { value, pos })
            }
            Some(Tok::Break) => {
                self.advance();
                self.expect(&Tok::Semi, "';' after break")?;
                Ok(Stmt::Break { pos })
            }
            Some(Tok::Continue) => {
                self.advance();
                self.expect(&Tok::Semi, "';' after continue")?;
                Ok(Stmt::Continue { pos })
            }
            Some(Tok::LBrace) => {
                let body = self.block()?;
                Ok(Stmt::Block { body, pos })
            }
            // Assignment or expression statement: disambiguate by lookahead.
            Some(Tok::Ident(_))
                if self.tokens.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::Assign) =>
            {
                let (name, _) = self.ident("assignment target")?;
                self.advance(); // '='
                let value = self.expr()?;
                self.expect(&Tok::Semi, "';' after assignment")?;
                Ok(Stmt::Assign { name, value, pos })
            }
            _ => {
                let expr = self.expr()?;
                self.expect(&Tok::Semi, "';' after expression")?;
                Ok(Stmt::Expr { expr, pos })
            }
        }
    }

    // -- expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.logical_or()
    }

    fn logical_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.logical_and()?;
        loop {
            let pos = self.here();
            if self.eat(&Tok::OrOr) {
                let rhs = self.logical_and()?;
                lhs = Expr::Bin {
                    op: BinOp::LogicalOr,
                    lhs: lhs.into(),
                    rhs: rhs.into(),
                    pos,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn logical_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_or()?;
        loop {
            let pos = self.here();
            if self.eat(&Tok::AndAnd) {
                let rhs = self.bit_or()?;
                lhs = Expr::Bin {
                    op: BinOp::LogicalAnd,
                    lhs: lhs.into(),
                    rhs: rhs.into(),
                    pos,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_xor()?;
        loop {
            let pos = self.here();
            if self.eat(&Tok::Pipe) {
                let rhs = self.bit_xor()?;
                lhs = Expr::Bin {
                    op: BinOp::Or,
                    lhs: lhs.into(),
                    rhs: rhs.into(),
                    pos,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_and()?;
        loop {
            let pos = self.here();
            if self.eat(&Tok::Caret) {
                let rhs = self.bit_and()?;
                lhs = Expr::Bin {
                    op: BinOp::Xor,
                    lhs: lhs.into(),
                    rhs: rhs.into(),
                    pos,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.equality()?;
        loop {
            let pos = self.here();
            if self.eat(&Tok::Amp) {
                let rhs = self.equality()?;
                lhs = Expr::Bin {
                    op: BinOp::And,
                    lhs: lhs.into(),
                    rhs: rhs.into(),
                    pos,
                };
            } else {
                return Ok(lhs);
            }
        }
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.relational()?;
        loop {
            let pos = self.here();
            let op = match self.peek() {
                Some(Tok::Eq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.relational()?;
            lhs = Expr::Bin {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
                pos,
            };
        }
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.shift()?;
        loop {
            let pos = self.here();
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.shift()?;
            lhs = Expr::Bin {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
                pos,
            };
        }
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            let pos = self.here();
            let op = match self.peek() {
                Some(Tok::Shl) => BinOp::Shl,
                Some(Tok::Shr) => BinOp::Shr,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.additive()?;
            lhs = Expr::Bin {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
                pos,
            };
        }
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let pos = self.here();
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
                pos,
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.cast()?;
        loop {
            let pos = self.here();
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.cast()?;
            lhs = Expr::Bin {
                op,
                lhs: lhs.into(),
                rhs: rhs.into(),
                pos,
            };
        }
    }

    fn cast(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.unary()?;
        loop {
            let pos = self.here();
            if self.eat(&Tok::As) {
                let ty = self.ty()?;
                e = Expr::Cast {
                    expr: e.into(),
                    ty,
                    pos,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        if self.eat(&Tok::Minus) {
            let operand = self.unary()?;
            Ok(Expr::Un {
                op: UnOp::Neg,
                operand: operand.into(),
                pos,
            })
        } else if self.eat(&Tok::Not) {
            let operand = self.unary()?;
            Ok(Expr::Un {
                op: UnOp::Not,
                operand: operand.into(),
                pos,
            })
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        match self.advance().map(|t| &t.tok) {
            Some(Tok::Int(v, IntWidth::W32)) => {
                let v = i32::try_from(*v).map_err(|_| {
                    pos.err(format!("integer {v} does not fit in i32 (use i64 suffix)"))
                })?;
                Ok(Expr::Lit(Literal::I32(v), pos))
            }
            Some(Tok::Int(v, IntWidth::W64)) => Ok(Expr::Lit(Literal::I64(*v), pos)),
            Some(Tok::Float(v, FloatWidth::W32)) => Ok(Expr::Lit(Literal::F32(*v as f32), pos)),
            Some(Tok::Float(v, FloatWidth::W64)) => Ok(Expr::Lit(Literal::F64(*v), pos)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma, "',' between arguments")?;
                        }
                    }
                    Ok(Expr::Call {
                        name: name.clone(),
                        args,
                        pos,
                    })
                } else {
                    Ok(Expr::Ident(name.clone(), pos))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            other => Err(pos.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_with_params() {
        let p = parse_src("export fn f(a: i32, b: f64) -> i64 { return 1i64; }");
        let Item::Fn(f) = &p.items[0] else {
            panic!("expected fn")
        };
        assert!(f.exported);
        assert_eq!(f.sig.params.len(), 2);
        assert_eq!(f.sig.ret, Some(Type::I64));
    }

    #[test]
    fn parses_extern_and_globals() {
        let p = parse_src("extern fn log(x: i32);\nglobal g: f64 = -1.5;\nconst C: i32 = 7;");
        assert!(matches!(p.items[0], Item::ExternFn(_)));
        let Item::Global(g) = &p.items[1] else {
            panic!()
        };
        assert!(g.mutable);
        assert_eq!(g.init, Literal::F64(-1.5));
        let Item::Global(c) = &p.items[2] else {
            panic!()
        };
        assert!(!c.mutable);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("fn f() -> i32 { return 1 + 2 * 3; }");
        let Item::Fn(f) = &p.items[0] else { panic!() };
        let Stmt::Return {
            value: Some(Expr::Bin { op, lhs, .. }),
            ..
        } = &f.body[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**lhs, Expr::Lit(Literal::I32(1), _)));
    }

    #[test]
    fn precedence_comparison_below_arith() {
        let p = parse_src("fn f() -> i32 { return 1 + 2 < 3 * 4; }");
        let Item::Fn(f) = &p.items[0] else { panic!() };
        let Stmt::Return {
            value: Some(Expr::Bin { op, .. }),
            ..
        } = &f.body[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinOp::Lt);
    }

    #[test]
    fn else_if_chains() {
        let p = parse_src(
            "fn f(x: i32) -> i32 { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }",
        );
        let Item::Fn(f) = &p.items[0] else { panic!() };
        let Stmt::If { else_body, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn casts_bind_tighter_than_mul() {
        let p = parse_src("fn f(x: i32) -> i64 { return x as i64 * 2i64; }");
        let Item::Fn(f) = &p.items[0] else { panic!() };
        let Stmt::Return {
            value:
                Some(Expr::Bin {
                    op: BinOp::Mul,
                    lhs,
                    ..
                }),
            ..
        } = &f.body[0]
        else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Cast { .. }));
    }

    #[test]
    fn error_on_missing_semi() {
        let toks = lex("fn f() { return 1 }").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn while_with_break_continue() {
        let p = parse_src("fn f() { while (1) { break; continue; } }");
        let Item::Fn(f) = &p.items[0] else { panic!() };
        let Stmt::While { body, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(body[0], Stmt::Break { .. }));
        assert!(matches!(body[1], Stmt::Continue { .. }));
    }
}
