//! Wasm code generation from the typed IR.
//!
//! Lowering is direct: expressions emit stack code, statements emit
//! structured control. `while` becomes `block { loop { !cond br_if 1; body;
//! br 0 } }` so `break` branches to the block and `continue` to the loop;
//! the generator tracks the current control nesting to compute relative
//! branch depths. Value-returning functions end with `unreachable`, so a
//! body that falls off the end traps instead of returning garbage.

use waran_wasm::builder::{CodeEmitter, ModuleBuilder};
use waran_wasm::module::{ConstExpr, Module};
use waran_wasm::types::{BlockType, Mutability};

use crate::ast::{BinOp, Literal, Program, Type};
use crate::typeck::{TExpr, TExprKind, TProgram, TStmt};
use crate::{CompileError, Options};

/// Generate a Wasm module from a checked program.
pub fn generate(
    _program: &Program,
    typed: &TProgram,
    opts: &Options,
) -> Result<Module, CompileError> {
    let mut mb = ModuleBuilder::new();
    mb.memory(opts.memory_min_pages, opts.memory_max_pages);
    mb.export_memory("memory");

    for imp in &typed.imports {
        let params: Vec<_> = imp.params.iter().map(|t| t.to_wasm()).collect();
        let results: Vec<_> = imp.ret.iter().map(|t| t.to_wasm()).collect();
        let sig = mb.func_type(&params, &results);
        mb.import_func("env", &imp.name, sig)
            .map_err(|e| CompileError {
                line: 0,
                col: 0,
                msg: format!("internal: {e}"),
            })?;
    }

    for g in &typed.globals {
        let init = match g.init {
            Literal::I32(v) => ConstExpr::I32(v),
            Literal::I64(v) => ConstExpr::I64(v),
            Literal::F32(v) => ConstExpr::F32(v),
            Literal::F64(v) => ConstExpr::F64(v),
        };
        let mutability = if g.mutable {
            Mutability::Var
        } else {
            Mutability::Const
        };
        mb.global(g.ty.to_wasm(), mutability, init);
    }

    for func in &typed.funcs {
        let params: Vec<_> = func.params.iter().map(|t| t.to_wasm()).collect();
        let results: Vec<_> = func.ret.iter().map(|t| t.to_wasm()).collect();
        let sig = mb.func_type(&params, &results);
        let idx = mb.begin_func(sig);
        for local in &func.locals {
            mb.local(local.to_wasm());
        }
        let mut gen = FuncGen { ctrl: Vec::new() };
        gen.stmts(mb.code(), &func.body);
        if func.ret.is_some() {
            // Falling off the end of a value-returning function traps.
            mb.code().unreachable();
        }
        mb.end_func().map_err(|e| CompileError {
            line: 0,
            col: 0,
            msg: format!("internal codegen structure error in `{}`: {e}", func.name),
        })?;
        if func.exported {
            mb.export_func(&func.name, idx);
        }
    }

    mb.finish().map_err(|e| CompileError {
        line: 0,
        col: 0,
        msg: format!("internal: {e}"),
    })
}

/// What kind of control frame the generator has open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctrl {
    /// The `block` wrapping a while loop (break target).
    LoopExit,
    /// The `loop` of a while loop (continue target).
    LoopHeader,
    /// An `if`/`else` arm.
    IfArm,
}

struct FuncGen {
    ctrl: Vec<Ctrl>,
}

impl FuncGen {
    fn stmts(&mut self, code: &mut CodeEmitter, body: &[TStmt]) {
        for stmt in body {
            self.stmt(code, stmt);
        }
    }

    fn stmt(&mut self, code: &mut CodeEmitter, stmt: &TStmt) {
        match stmt {
            TStmt::SetLocal { idx, value } => {
                self.expr(code, value);
                code.local_set(*idx);
            }
            TStmt::SetGlobal { idx, value } => {
                self.expr(code, value);
                code.global_set(*idx);
            }
            TStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.expr(code, cond);
                code.if_(BlockType::Empty);
                self.ctrl.push(Ctrl::IfArm);
                self.stmts(code, then_body);
                if !else_body.is_empty() {
                    code.else_();
                    self.stmts(code, else_body);
                }
                self.ctrl.pop();
                code.end();
            }
            TStmt::While { cond, body } => {
                // block $exit { loop $top { cond eqz br_if $exit; body; br $top } }
                code.block(BlockType::Empty);
                self.ctrl.push(Ctrl::LoopExit);
                code.loop_(BlockType::Empty);
                self.ctrl.push(Ctrl::LoopHeader);
                self.expr(code, cond);
                code.i32_eqz();
                code.br_if(1);
                self.stmts(code, body);
                code.br(0);
                self.ctrl.pop();
                code.end();
                self.ctrl.pop();
                code.end();
            }
            TStmt::Return { value } => {
                if let Some(v) = value {
                    self.expr(code, v);
                }
                code.return_();
            }
            TStmt::Break => {
                let depth = self.depth_to(Ctrl::LoopExit);
                code.br(depth);
            }
            TStmt::Continue => {
                let depth = self.depth_to(Ctrl::LoopHeader);
                code.br(depth);
            }
            TStmt::Expr { expr, has_value } => {
                self.expr(code, expr);
                if *has_value {
                    code.drop();
                }
            }
        }
    }

    /// Branch depth from the current nesting to the innermost frame of
    /// `kind`. The type checker guarantees one exists.
    fn depth_to(&self, kind: Ctrl) -> u32 {
        let idx = self
            .ctrl
            .iter()
            .rposition(|c| *c == kind)
            .expect("type checker rejects break/continue outside loops");
        (self.ctrl.len() - 1 - idx) as u32
    }

    fn expr(&mut self, code: &mut CodeEmitter, e: &TExpr) {
        match &e.kind {
            TExprKind::Lit(lit) => {
                match lit {
                    Literal::I32(v) => code.i32_const(*v),
                    Literal::I64(v) => code.i64_const(*v),
                    Literal::F32(v) => code.f32_const(*v),
                    Literal::F64(v) => code.f64_const(*v),
                };
            }
            TExprKind::LocalGet(idx) => {
                code.local_get(*idx);
            }
            TExprKind::GlobalGet(idx) => {
                code.global_get(*idx);
            }
            TExprKind::Neg(inner) => {
                let ty = inner.ty.expect("typed");
                match ty {
                    Type::I32 => {
                        code.i32_const(0);
                        self.expr(code, inner);
                        code.i32_sub();
                    }
                    Type::I64 => {
                        code.i64_const(0);
                        self.expr(code, inner);
                        code.i64_sub();
                    }
                    Type::F32 => {
                        self.expr(code, inner);
                        code.f32_neg();
                    }
                    Type::F64 => {
                        self.expr(code, inner);
                        code.f64_neg();
                    }
                }
            }
            TExprKind::Not(inner) => {
                self.expr(code, inner);
                match inner.ty.expect("typed") {
                    Type::I32 => code.i32_eqz(),
                    Type::I64 => code.i64_eqz(),
                    _ => unreachable!("type checker rejects float `!`"),
                };
            }
            TExprKind::Cast { to, expr } => {
                self.expr(code, expr);
                let from = expr.ty.expect("typed");
                emit_cast(code, from, *to);
            }
            TExprKind::Call { index, args } => {
                for a in args {
                    self.expr(code, a);
                }
                code.call(*index);
            }
            TExprKind::Intrinsic { name, args } => self.intrinsic(code, name, args),
            TExprKind::Bin {
                op,
                operand_ty,
                lhs,
                rhs,
            } => {
                // Short-circuit logicals get custom control flow.
                match op {
                    BinOp::LogicalAnd => {
                        self.expr(code, lhs);
                        code.if_(BlockType::Value(waran_wasm::types::ValType::I32));
                        self.ctrl.push(Ctrl::IfArm);
                        self.expr(code, rhs);
                        code.i32_const(0).i32_ne();
                        code.else_();
                        code.i32_const(0);
                        self.ctrl.pop();
                        code.end();
                        return;
                    }
                    BinOp::LogicalOr => {
                        self.expr(code, lhs);
                        code.if_(BlockType::Value(waran_wasm::types::ValType::I32));
                        self.ctrl.push(Ctrl::IfArm);
                        code.i32_const(1);
                        code.else_();
                        self.expr(code, rhs);
                        code.i32_const(0).i32_ne();
                        self.ctrl.pop();
                        code.end();
                        return;
                    }
                    _ => {}
                }
                self.expr(code, lhs);
                self.expr(code, rhs);
                emit_binop(code, *op, *operand_ty);
            }
        }
    }

    fn intrinsic(&mut self, code: &mut CodeEmitter, name: &str, args: &[TExpr]) {
        if name == "pack" {
            // (ptr as u64) << 32 | (len as u64), emitted inline.
            self.expr(code, &args[0]);
            code.i64_extend_i32_u().i64_const(32).i64_shl();
            self.expr(code, &args[1]);
            code.i64_extend_i32_u().i64_or();
            return;
        }
        for a in args {
            self.expr(code, a);
        }
        match name {
            "load_u8" => code.i32_load8_u(0),
            "load_i32" => code.i32_load(0),
            "load_i64" => code.i64_load(0),
            "load_f32" => code.f32_load(0),
            "load_f64" => code.f64_load(0),
            "store_u8" => code.i32_store8(0),
            "store_i32" => code.i32_store(0),
            "store_i64" => code.i64_store(0),
            "store_f32" => code.f32_store(0),
            "store_f64" => code.f64_store(0),
            "memory_size" => code.memory_size(),
            "memory_grow" => code.memory_grow(),
            "sqrt" => code.f64_sqrt(),
            "floor" => code.f64_floor(),
            "ceil" => code.f64_ceil(),
            "abs" => code.f64_abs(),
            "min" => code.f64_min(),
            "max" => code.f64_max(),
            "trap" => code.unreachable(),
            other => unreachable!("unknown intrinsic {other}"),
        };
    }
}

fn emit_cast(code: &mut CodeEmitter, from: Type, to: Type) {
    use Type::*;
    match (from, to) {
        (a, b) if a == b => {}
        (I32, I64) => {
            code.i64_extend_i32_s();
        }
        (I64, I32) => {
            code.i32_wrap_i64();
        }
        (I32, F32) => {
            code.f32_convert_i32_s();
        }
        (I32, F64) => {
            code.f64_convert_i32_s();
        }
        (I64, F32) => {
            code.f32_convert_i64_s();
        }
        (I64, F64) => {
            code.f64_convert_i64_s();
        }
        // Float→int casts saturate (never trap), matching Rust `as`.
        (F32, I32) => {
            code.i32_trunc_sat_f32_s();
        }
        (F32, I64) => {
            code.i64_trunc_sat_f32_s();
        }
        (F64, I32) => {
            code.i32_trunc_sat_f64_s();
        }
        (F64, I64) => {
            code.i64_trunc_sat_f64_s();
        }
        (F32, F64) => {
            code.f64_promote_f32();
        }
        (F64, F32) => {
            code.f32_demote_f64();
        }
        _ => unreachable!("all numeric cast pairs covered"),
    }
}

fn emit_binop(code: &mut CodeEmitter, op: BinOp, ty: Type) {
    use BinOp::*;
    use Type::*;
    match (op, ty) {
        (Add, I32) => code.i32_add(),
        (Sub, I32) => code.i32_sub(),
        (Mul, I32) => code.i32_mul(),
        (Div, I32) => code.i32_div_s(),
        (Rem, I32) => code.i32_rem_s(),
        (And, I32) => code.i32_and(),
        (Or, I32) => code.i32_or(),
        (Xor, I32) => code.i32_xor(),
        (Shl, I32) => code.i32_shl(),
        (Shr, I32) => code.i32_shr_s(),
        (Eq, I32) => code.i32_eq(),
        (Ne, I32) => code.i32_ne(),
        (Lt, I32) => code.i32_lt_s(),
        (Le, I32) => code.i32_le_s(),
        (Gt, I32) => code.i32_gt_s(),
        (Ge, I32) => code.i32_ge_s(),
        (Add, I64) => code.i64_add(),
        (Sub, I64) => code.i64_sub(),
        (Mul, I64) => code.i64_mul(),
        (Div, I64) => code.i64_div_s(),
        (Rem, I64) => code.i64_rem_s(),
        (And, I64) => code.i64_and(),
        (Or, I64) => code.i64_or(),
        (Xor, I64) => code.i64_xor(),
        (Shl, I64) => code.i64_shl(),
        (Shr, I64) => code.i64_shr_s(),
        (Eq, I64) => code.i64_eq(),
        (Ne, I64) => code.i64_ne(),
        (Lt, I64) => code.i64_lt_s(),
        (Le, I64) => code.i64_le_s(),
        (Gt, I64) => code.i64_gt_s(),
        (Ge, I64) => code.i64_ge_s(),
        (Add, F32) => code.f32_add(),
        (Sub, F32) => code.f32_sub(),
        (Mul, F32) => code.f32_mul(),
        (Div, F32) => code.f32_div(),
        (Eq, F32) => code.f32_eq(),
        (Ne, F32) => code.f32_ne(),
        (Lt, F32) => code.f32_lt(),
        (Le, F32) => code.f32_le(),
        (Gt, F32) => code.f32_gt(),
        (Ge, F32) => code.f32_ge(),
        (Add, F64) => code.f64_add(),
        (Sub, F64) => code.f64_sub(),
        (Mul, F64) => code.f64_mul(),
        (Div, F64) => code.f64_div(),
        (Eq, F64) => code.f64_eq(),
        (Ne, F64) => code.f64_ne(),
        (Lt, F64) => code.f64_lt(),
        (Le, F64) => code.f64_le(),
        (Gt, F64) => code.f64_gt(),
        (Ge, F64) => code.f64_ge(),
        (op, ty) => unreachable!("type checker rejects {op:?} on {ty}"),
    };
}
