//! PlugC type checker and lowering to a typed IR.
//!
//! Checking and name resolution happen in one pass that lowers the AST into
//! [`TProgram`], a fully resolved, explicitly typed IR the code generator
//! consumes without further analysis. PlugC is strict: no implicit numeric
//! conversions (use `as`), conditions must be `i32`, and `%`, bitwise and
//! logical operators are integer-only.

use std::collections::HashMap;

use crate::ast::*;
use crate::lexer::Pos;
use crate::CompileError;

/// Typed, resolved program.
#[derive(Debug, Clone, Default)]
pub struct TProgram {
    /// Host imports, in declaration order (= Wasm function indices 0..n).
    pub imports: Vec<TImport>,
    /// Globals (both `global` and `const`), in declaration order.
    pub globals: Vec<TGlobal>,
    /// Defined functions, in declaration order (indices continue after
    /// imports).
    pub funcs: Vec<TFunc>,
}

/// A host import signature.
#[derive(Debug, Clone)]
pub struct TImport {
    /// Import field name (module is always `"env"`).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type, if any.
    pub ret: Option<Type>,
}

/// A resolved module global.
#[derive(Debug, Clone)]
pub struct TGlobal {
    /// Name (for diagnostics only).
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Mutability.
    pub mutable: bool,
    /// Initializer.
    pub init: Literal,
}

/// A resolved function.
#[derive(Debug, Clone)]
pub struct TFunc {
    /// Name, which doubles as the export name when exported.
    pub name: String,
    /// Exported from the module?
    pub exported: bool,
    /// Parameter types (locals 0..params.len()).
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Option<Type>,
    /// Non-parameter locals, in allocation order.
    pub locals: Vec<Type>,
    /// Lowered body.
    pub body: Vec<TStmt>,
}

/// A lowered statement.
#[derive(Debug, Clone)]
pub enum TStmt {
    /// Initialize a local (covers both `var` and assignment to a local).
    SetLocal { idx: u32, value: TExpr },
    /// Assign a module global.
    SetGlobal { idx: u32, value: TExpr },
    /// Two-armed conditional.
    If {
        cond: TExpr,
        then_body: Vec<TStmt>,
        else_body: Vec<TStmt>,
    },
    /// Pre-tested loop.
    While { cond: TExpr, body: Vec<TStmt> },
    /// Return.
    Return { value: Option<TExpr> },
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// Evaluate for effect; `has_value` means a Drop must follow.
    Expr { expr: TExpr, has_value: bool },
}

/// A lowered, typed expression.
#[derive(Debug, Clone)]
pub struct TExpr {
    /// Result type (`None` only for void calls in statement position).
    pub ty: Option<Type>,
    /// Node.
    pub kind: TExprKind,
}

/// Lowered expression node.
#[derive(Debug, Clone)]
pub enum TExprKind {
    /// Constant.
    Lit(Literal),
    /// Read a local by index.
    LocalGet(u32),
    /// Read a global by index.
    GlobalGet(u32),
    /// Binary operation on operands of `operand_ty`.
    Bin {
        op: BinOp,
        operand_ty: Type,
        lhs: Box<TExpr>,
        rhs: Box<TExpr>,
    },
    /// Arithmetic negation.
    Neg(Box<TExpr>),
    /// Logical not (integer operand, i32 result).
    Not(Box<TExpr>),
    /// Numeric cast.
    Cast { to: Type, expr: Box<TExpr> },
    /// Call a program function by Wasm function index (imports first).
    Call { index: u32, args: Vec<TExpr> },
    /// Call a compiler intrinsic.
    Intrinsic {
        name: &'static str,
        args: Vec<TExpr>,
    },
}

/// Type-check and lower a parsed program.
pub fn check(program: &Program) -> Result<TProgram, CompileError> {
    let mut ck = Checker::default();

    // Pass 1: collect signatures and globals so order doesn't matter for
    // calls, and imports take the first function indices.
    for item in &program.items {
        if let Item::ExternFn(sig) = item {
            ck.declare_fn(sig, true)?;
        }
    }
    for item in &program.items {
        match item {
            Item::ExternFn(_) => {}
            Item::Fn(decl) => ck.declare_fn(&decl.sig, false)?,
            Item::Global(g) => ck.declare_global(g)?,
        }
    }

    // Pass 2: check bodies.
    let mut out = TProgram {
        imports: ck.imports.clone(),
        globals: ck.globals.clone(),
        funcs: Vec::new(),
    };
    for item in &program.items {
        if let Item::Fn(decl) = item {
            out.funcs.push(ck.check_fn(decl)?);
        }
    }
    Ok(out)
}

#[derive(Debug, Clone)]
struct FnEntry {
    index: u32,
    params: Vec<Type>,
    ret: Option<Type>,
}

#[derive(Default)]
struct Checker {
    imports: Vec<TImport>,
    globals: Vec<TGlobal>,
    fn_table: HashMap<String, FnEntry>,
    global_table: HashMap<String, (u32, Type, bool)>,
    n_funcs: u32,
}

struct FnCtx {
    ret: Option<Type>,
    /// All locals: params first, then vars.
    locals: Vec<Type>,
    n_params: usize,
    /// Lexical scopes of name → local index.
    scopes: Vec<HashMap<String, u32>>,
    loop_depth: usize,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<u32> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }
}

impl Checker {
    fn declare_fn(&mut self, sig: &FnSig, is_import: bool) -> Result<(), CompileError> {
        if self.fn_table.contains_key(&sig.name) {
            return Err(sig.pos.err(format!("duplicate function `{}`", sig.name)));
        }
        if intrinsic(&sig.name).is_some() {
            return Err(sig
                .pos
                .err(format!("`{}` shadows a builtin intrinsic", sig.name)));
        }
        let params: Vec<Type> = sig.params.iter().map(|(_, t)| *t).collect();
        self.fn_table.insert(
            sig.name.clone(),
            FnEntry {
                index: self.n_funcs,
                params: params.clone(),
                ret: sig.ret,
            },
        );
        self.n_funcs += 1;
        if is_import {
            self.imports.push(TImport {
                name: sig.name.clone(),
                params,
                ret: sig.ret,
            });
        }
        Ok(())
    }

    fn declare_global(&mut self, g: &GlobalDecl) -> Result<(), CompileError> {
        if self.global_table.contains_key(&g.name) {
            return Err(g.pos.err(format!("duplicate global `{}`", g.name)));
        }
        if g.init.ty() != g.ty {
            return Err(g.pos.err(format!(
                "global `{}` declared {} but initialized with {}",
                g.name,
                g.ty,
                g.init.ty()
            )));
        }
        let idx = self.globals.len() as u32;
        self.global_table
            .insert(g.name.clone(), (idx, g.ty, g.mutable));
        self.globals.push(TGlobal {
            name: g.name.clone(),
            ty: g.ty,
            mutable: g.mutable,
            init: g.init,
        });
        Ok(())
    }

    fn check_fn(&mut self, decl: &FnDecl) -> Result<TFunc, CompileError> {
        let mut ctx = FnCtx {
            ret: decl.sig.ret,
            locals: decl.sig.params.iter().map(|(_, t)| *t).collect(),
            n_params: decl.sig.params.len(),
            scopes: vec![HashMap::new()],
            loop_depth: 0,
        };
        for (i, (name, _)) in decl.sig.params.iter().enumerate() {
            if ctx.scopes[0].insert(name.clone(), i as u32).is_some() {
                return Err(decl.sig.pos.err(format!("duplicate parameter `{name}`")));
            }
        }
        let body = self.check_block(&decl.body, &mut ctx)?;
        Ok(TFunc {
            name: decl.sig.name.clone(),
            exported: decl.exported,
            params: decl.sig.params.iter().map(|(_, t)| *t).collect(),
            ret: decl.sig.ret,
            locals: ctx.locals[ctx.n_params..].to_vec(),
            body,
        })
    }

    fn check_block(&self, stmts: &[Stmt], ctx: &mut FnCtx) -> Result<Vec<TStmt>, CompileError> {
        ctx.scopes.push(HashMap::new());
        let result = stmts.iter().map(|s| self.check_stmt(s, ctx)).collect();
        ctx.scopes.pop();
        result
    }

    fn check_stmt(&self, stmt: &Stmt, ctx: &mut FnCtx) -> Result<TStmt, CompileError> {
        match stmt {
            Stmt::Var {
                name,
                ty,
                init,
                pos,
            } => {
                let value = self.check_expr(init, ctx)?;
                expect_ty(&value, *ty, *pos)?;
                let idx = ctx.locals.len() as u32;
                ctx.locals.push(*ty);
                let scope = ctx.scopes.last_mut().expect("scope stack non-empty");
                if scope.insert(name.clone(), idx).is_some() {
                    return Err(pos.err(format!("duplicate variable `{name}` in this scope")));
                }
                Ok(TStmt::SetLocal { idx, value })
            }
            Stmt::Assign { name, value, pos } => {
                let value = self.check_expr(value, ctx)?;
                if let Some(idx) = ctx.lookup(name) {
                    expect_ty(&value, ctx.locals[idx as usize], *pos)?;
                    Ok(TStmt::SetLocal { idx, value })
                } else if let Some(&(idx, ty, mutable)) = self.global_table.get(name) {
                    if !mutable {
                        return Err(pos.err(format!("cannot assign to const `{name}`")));
                    }
                    expect_ty(&value, ty, *pos)?;
                    Ok(TStmt::SetGlobal { idx, value })
                } else {
                    Err(pos.err(format!("unknown variable `{name}`")))
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                pos,
            } => {
                let cond = self.check_expr(cond, ctx)?;
                expect_ty(&cond, Type::I32, *pos)?;
                Ok(TStmt::If {
                    cond,
                    then_body: self.check_block(then_body, ctx)?,
                    else_body: self.check_block(else_body, ctx)?,
                })
            }
            Stmt::While { cond, body, pos } => {
                let cond = self.check_expr(cond, ctx)?;
                expect_ty(&cond, Type::I32, *pos)?;
                ctx.loop_depth += 1;
                let body = self.check_block(body, ctx)?;
                ctx.loop_depth -= 1;
                Ok(TStmt::While { cond, body })
            }
            Stmt::Return { value, pos } => match (value, ctx.ret) {
                (Some(e), Some(rt)) => {
                    let value = self.check_expr(e, ctx)?;
                    expect_ty(&value, rt, *pos)?;
                    Ok(TStmt::Return { value: Some(value) })
                }
                (None, None) => Ok(TStmt::Return { value: None }),
                (Some(_), None) => Err(pos.err("return with a value in a void function")),
                (None, Some(rt)) => Err(pos.err(format!("return without a value; expected {rt}"))),
            },
            Stmt::Break { pos } => {
                if ctx.loop_depth == 0 {
                    return Err(pos.err("`break` outside a loop"));
                }
                Ok(TStmt::Break)
            }
            Stmt::Continue { pos } => {
                if ctx.loop_depth == 0 {
                    return Err(pos.err("`continue` outside a loop"));
                }
                Ok(TStmt::Continue)
            }
            Stmt::Expr { expr, pos: _ } => {
                let texpr = self.check_expr_allow_void(expr, ctx)?;
                let has_value = texpr.ty.is_some();
                Ok(TStmt::Expr {
                    expr: texpr,
                    has_value,
                })
            }
            Stmt::Block { body, pos: _ } => {
                // Lower a bare block to an always-true if (no dedicated IR).
                let body = self.check_block(body, ctx)?;
                Ok(TStmt::If {
                    cond: TExpr {
                        ty: Some(Type::I32),
                        kind: TExprKind::Lit(Literal::I32(1)),
                    },
                    then_body: body,
                    else_body: Vec::new(),
                })
            }
        }
    }

    /// Check an expression that must produce a value.
    fn check_expr(&self, expr: &Expr, ctx: &FnCtx) -> Result<TExpr, CompileError> {
        let e = self.check_expr_allow_void(expr, ctx)?;
        if e.ty.is_none() {
            return Err(expr.pos().err("void call used where a value is required"));
        }
        Ok(e)
    }

    fn check_expr_allow_void(&self, expr: &Expr, ctx: &FnCtx) -> Result<TExpr, CompileError> {
        match expr {
            Expr::Lit(lit, _) => Ok(TExpr {
                ty: Some(lit.ty()),
                kind: TExprKind::Lit(*lit),
            }),
            Expr::Ident(name, pos) => {
                if let Some(idx) = ctx.lookup(name) {
                    Ok(TExpr {
                        ty: Some(ctx.locals[idx as usize]),
                        kind: TExprKind::LocalGet(idx),
                    })
                } else if let Some(&(idx, ty, _)) = self.global_table.get(name) {
                    Ok(TExpr {
                        ty: Some(ty),
                        kind: TExprKind::GlobalGet(idx),
                    })
                } else {
                    Err(pos.err(format!("unknown variable `{name}`")))
                }
            }
            Expr::Bin { op, lhs, rhs, pos } => {
                let l = self.check_expr(lhs, ctx)?;
                let r = self.check_expr(rhs, ctx)?;
                let lt = l.ty.expect("checked");
                let rt = r.ty.expect("checked");
                if lt != rt {
                    return Err(pos.err(format!(
                        "operand type mismatch: {lt} {op:?} {rt} (insert an `as` cast)"
                    )));
                }
                if op.int_only() && !lt.is_int() {
                    return Err(pos.err(format!("{op:?} requires integer operands, got {lt}")));
                }
                if matches!(op, BinOp::LogicalAnd | BinOp::LogicalOr) && lt != Type::I32 {
                    return Err(pos.err(format!("{op:?} requires i32 operands, got {lt}")));
                }
                let result =
                    if op.is_comparison() || matches!(op, BinOp::LogicalAnd | BinOp::LogicalOr) {
                        Type::I32
                    } else {
                        lt
                    };
                Ok(TExpr {
                    ty: Some(result),
                    kind: TExprKind::Bin {
                        op: *op,
                        operand_ty: lt,
                        lhs: l.into(),
                        rhs: r.into(),
                    },
                })
            }
            Expr::Un { op, operand, pos } => {
                let e = self.check_expr(operand, ctx)?;
                let ty = e.ty.expect("checked");
                match op {
                    UnOp::Neg => Ok(TExpr {
                        ty: Some(ty),
                        kind: TExprKind::Neg(e.into()),
                    }),
                    UnOp::Not => {
                        if !ty.is_int() {
                            return Err(
                                pos.err(format!("`!` requires an integer operand, got {ty}"))
                            );
                        }
                        Ok(TExpr {
                            ty: Some(Type::I32),
                            kind: TExprKind::Not(e.into()),
                        })
                    }
                }
            }
            Expr::Cast { expr, ty, pos: _ } => {
                let e = self.check_expr(expr, ctx)?;
                Ok(TExpr {
                    ty: Some(*ty),
                    kind: TExprKind::Cast {
                        to: *ty,
                        expr: e.into(),
                    },
                })
            }
            Expr::Call { name, args, pos } => {
                let targs: Vec<TExpr> = args
                    .iter()
                    .map(|a| self.check_expr(a, ctx))
                    .collect::<Result<_, _>>()?;
                if let Some((iname, params, ret)) = intrinsic(name) {
                    if targs.len() != params.len() {
                        return Err(pos.err(format!(
                            "intrinsic `{name}` takes {} arguments, got {}",
                            params.len(),
                            targs.len()
                        )));
                    }
                    for (a, p) in targs.iter().zip(params.iter()) {
                        expect_ty(a, *p, *pos)?;
                    }
                    return Ok(TExpr {
                        ty: *ret,
                        kind: TExprKind::Intrinsic {
                            name: iname,
                            args: targs,
                        },
                    });
                }
                let entry = self
                    .fn_table
                    .get(name)
                    .ok_or_else(|| pos.err(format!("unknown function `{name}`")))?;
                if targs.len() != entry.params.len() {
                    return Err(pos.err(format!(
                        "`{name}` takes {} arguments, got {}",
                        entry.params.len(),
                        targs.len()
                    )));
                }
                for (a, p) in targs.iter().zip(entry.params.iter()) {
                    expect_ty(a, *p, *pos)?;
                }
                Ok(TExpr {
                    ty: entry.ret,
                    kind: TExprKind::Call {
                        index: entry.index,
                        args: targs,
                    },
                })
            }
        }
    }
}

fn expect_ty(e: &TExpr, expected: Type, pos: Pos) -> Result<(), CompileError> {
    match e.ty {
        Some(t) if t == expected => Ok(()),
        Some(t) => Err(pos.err(format!("type mismatch: expected {expected}, found {t}"))),
        None => Err(pos.err(format!("type mismatch: expected {expected}, found void"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TProgram, CompileError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn resolves_params_and_locals() {
        let p = check_src("fn f(a: i32) -> i32 { var b: i32 = a + 1; return b; }").unwrap();
        assert_eq!(p.funcs[0].params, vec![Type::I32]);
        assert_eq!(p.funcs[0].locals, vec![Type::I32]);
    }

    #[test]
    fn rejects_type_mismatch() {
        let e = check_src("fn f(a: i32, b: f64) -> i32 { return a + b; }").unwrap_err();
        assert!(e.msg.contains("mismatch"));
    }

    #[test]
    fn rejects_float_modulo() {
        let e = check_src("fn f(a: f64) -> f64 { return a % a; }").unwrap_err();
        assert!(e.msg.contains("integer"));
    }

    #[test]
    fn rejects_unknown_variable() {
        assert!(check_src("fn f() -> i32 { return nope; }").is_err());
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(check_src("fn f() { break; }").is_err());
    }

    #[test]
    fn rejects_const_assignment() {
        let e = check_src("const C: i32 = 1; fn f() { C = 2; }").unwrap_err();
        assert!(e.msg.contains("const"));
    }

    #[test]
    fn rejects_void_in_value_position() {
        let e = check_src("fn g() {} fn f() -> i32 { return g() + 1; }").unwrap_err();
        assert!(e.msg.contains("void"));
    }

    #[test]
    fn scoping_allows_shadowing_in_nested_blocks() {
        let p = check_src("fn f() -> i32 { var x: i32 = 1; { var x: i32 = 2; x = 3; } return x; }")
            .unwrap();
        // Two distinct locals allocated.
        assert_eq!(p.funcs[0].locals.len(), 2);
    }

    #[test]
    fn rejects_duplicate_in_same_scope() {
        assert!(check_src("fn f() { var x: i32 = 1; var x: i32 = 2; }").is_err());
    }

    #[test]
    fn intrinsics_typed() {
        let p = check_src("fn f(p: i32) -> f64 { return load_f64(p) + sqrt(4.0); }").unwrap();
        assert_eq!(p.funcs[0].ret, Some(Type::F64));
        assert!(check_src("fn f(p: i32) -> f64 { return sqrt(4); }").is_err());
    }

    #[test]
    fn extern_fns_take_first_indices() {
        let p = check_src("extern fn h(x: i32);\nfn f() { h(1); }").unwrap();
        assert_eq!(p.imports.len(), 1);
        let TStmt::Expr { expr, has_value } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(!has_value);
        let TExprKind::Call { index, .. } = &expr.kind else {
            panic!()
        };
        assert_eq!(*index, 0);
    }

    #[test]
    fn logical_ops_require_i32() {
        assert!(check_src("fn f(a: i64) -> i32 { return a && a; }").is_err());
        assert!(check_src("fn f(a: i32) -> i32 { return a && a; }").is_ok());
    }

    #[test]
    fn comparisons_yield_i32() {
        let e = check_src("fn f(a: f64) -> f64 { return a < a; }").unwrap_err();
        assert!(e.msg.contains("mismatch"));
        assert!(check_src("fn f(a: f64) -> i32 { return a < a; }").is_ok());
    }
}
