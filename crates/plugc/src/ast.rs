//! PlugC abstract syntax tree.

use crate::lexer::Pos;

/// A PlugC value type (maps 1:1 onto Wasm value types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl Type {
    /// True for i32/i64.
    pub fn is_int(self) -> bool {
        matches!(self, Type::I32 | Type::I64)
    }

    /// True for f32/f64.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// The corresponding Wasm value type.
    pub fn to_wasm(self) -> waran_wasm::types::ValType {
        use waran_wasm::types::ValType;
        match self {
            Type::I32 => ValType::I32,
            Type::I64 => ValType::I64,
            Type::F32 => ValType::F32,
            Type::F64 => ValType::F64,
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F32 => "f32",
            Type::F64 => "f64",
        };
        write!(f, "{s}")
    }
}

/// A whole program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `extern fn name(params) -> ret;` — a host import from "env".
    ExternFn(FnSig),
    /// `export? fn name(params) -> ret { body }`.
    Fn(FnDecl),
    /// `global name: ty = literal;` (mutable) or `const …` (immutable).
    Global(GlobalDecl),
}

/// A function signature.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Return type, if any.
    pub ret: Option<Type>,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Signature.
    pub sig: FnSig,
    /// True when the function is exported from the module.
    pub exported: bool,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A module-level variable.
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// True for `global`, false for `const`.
    pub mutable: bool,
    /// Literal initializer.
    pub init: Literal,
    /// Source position.
    pub pos: Pos,
}

/// A literal value (the only legal global initializer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
}

impl Literal {
    /// The literal's type.
    pub fn ty(self) -> Type {
        match self {
            Literal::I32(_) => Type::I32,
            Literal::I64(_) => Type::I64,
            Literal::F32(_) => Type::F32,
            Literal::F64(_) => Type::F64,
        }
    }
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `var name: ty = expr;`
    Var {
        name: String,
        ty: Type,
        init: Expr,
        pos: Pos,
    },
    /// `name = expr;`
    Assign { name: String, value: Expr, pos: Pos },
    /// `if (cond) { then } else { els }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        pos: Pos,
    },
    /// `while (cond) { body }`
    While {
        cond: Expr,
        body: Vec<Stmt>,
        pos: Pos,
    },
    /// `return expr?;`
    Return { value: Option<Expr>, pos: Pos },
    /// `break;`
    Break { pos: Pos },
    /// `continue;`
    Continue { pos: Pos },
    /// `expr;` (value, if any, is dropped)
    Expr { expr: Expr, pos: Pos },
    /// `{ … }`
    Block { body: Vec<Stmt>, pos: Pos },
}

impl Stmt {
    /// Source position.
    pub fn pos(&self) -> Pos {
        match self {
            Stmt::Var { pos, .. }
            | Stmt::Assign { pos, .. }
            | Stmt::If { pos, .. }
            | Stmt::While { pos, .. }
            | Stmt::Return { pos, .. }
            | Stmt::Break { pos }
            | Stmt::Continue { pos }
            | Stmt::Expr { pos, .. }
            | Stmt::Block { pos, .. } => *pos,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogicalAnd,
    LogicalOr,
}

impl BinOp {
    /// True for comparison operators (result is i32).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for operators defined only on integers.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Shl
                | BinOp::Shr
                | BinOp::LogicalAnd
                | BinOp::LogicalOr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x`, integers only, yields i32 0/1).
    Not,
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Literal.
    Lit(Literal, Pos),
    /// Variable (local, param, global or const).
    Ident(String, Pos),
    /// Binary operation.
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// Unary operation.
    Un {
        op: UnOp,
        operand: Box<Expr>,
        pos: Pos,
    },
    /// `expr as ty`.
    Cast { expr: Box<Expr>, ty: Type, pos: Pos },
    /// Function or intrinsic call.
    Call {
        name: String,
        args: Vec<Expr>,
        pos: Pos,
    },
}

impl Expr {
    /// Source position.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Lit(_, pos)
            | Expr::Ident(_, pos)
            | Expr::Bin { pos, .. }
            | Expr::Un { pos, .. }
            | Expr::Cast { pos, .. }
            | Expr::Call { pos, .. } => *pos,
        }
    }
}

/// The intrinsic functions every PlugC module can call without declaring.
///
/// `(name, param types, return type)` — `None` params marks polymorphic
/// intrinsics handled specially by the type checker.
pub const INTRINSICS: &[(&str, &[Type], Option<Type>)] = &[
    ("load_u8", &[Type::I32], Some(Type::I32)),
    ("load_i32", &[Type::I32], Some(Type::I32)),
    ("load_i64", &[Type::I32], Some(Type::I64)),
    ("load_f32", &[Type::I32], Some(Type::F32)),
    ("load_f64", &[Type::I32], Some(Type::F64)),
    ("store_u8", &[Type::I32, Type::I32], None),
    ("store_i32", &[Type::I32, Type::I32], None),
    ("store_i64", &[Type::I32, Type::I64], None),
    ("store_f32", &[Type::I32, Type::F32], None),
    ("store_f64", &[Type::I32, Type::F64], None),
    ("memory_size", &[], Some(Type::I32)),
    ("memory_grow", &[Type::I32], Some(Type::I32)),
    ("sqrt", &[Type::F64], Some(Type::F64)),
    ("floor", &[Type::F64], Some(Type::F64)),
    ("ceil", &[Type::F64], Some(Type::F64)),
    ("abs", &[Type::F64], Some(Type::F64)),
    ("min", &[Type::F64, Type::F64], Some(Type::F64)),
    ("max", &[Type::F64, Type::F64], Some(Type::F64)),
    // pack(ptr, len) -> i64: the ABI's (ptr << 32) | len return convention.
    ("pack", &[Type::I32, Type::I32], Some(Type::I64)),
    ("trap", &[], None),
];

/// Look up an intrinsic by name.
pub fn intrinsic(name: &str) -> Option<&'static (&'static str, &'static [Type], Option<Type>)> {
    INTRINSICS.iter().find(|(n, _, _)| *n == name)
}
